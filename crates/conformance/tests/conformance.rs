//! The conformance suite: ≥200 seeded random designs through all four
//! differential oracles, corpus replay, generation determinism, and
//! monotone synthesis families.
//!
//! A failing design is shrunk to a few lines and persisted under
//! `tests/corpus/pending/` before the test panics, so the reproducer
//! survives the failing CI run.

use std::sync::{Arc, OnceLock};

use sns_conformance::corpus;
use sns_conformance::generator::{generate, DesignSpec, GenConfig};
use sns_conformance::oracle::{
    check_sim_vs_gates, check_vsynth_invariants, IncrementalHarness, PredictorHarness,
    ServeHarness,
};
use sns_conformance::shrink::shrink;
use sns_netlist::{design_hashes, parse_and_elaborate, parse_source};
use sns_rt::pool::par_map;
use sns_vsynth::{SynthOptions, VirtualSynthesizer};

/// Designs the smoke test sweeps (tier-1 acceptance floor: 200).
const SMOKE_DESIGNS: u64 = 200;
/// Every how-many designs the (expensive) model-level oracles run.
const MODEL_STRIDE: u64 = 10;
/// Stimulus cycles per design: enough to move every register and memory.
const SIM_CYCLES: usize = 5;
const STIM_SEED_SALT: u64 = 0x5EED_5717;

/// One tiny model shared by every test in this binary (training dominates
/// runtime). Tests must leave its cache unbounded and may clear it.
fn harness() -> &'static PredictorHarness {
    static HARNESS: OnceLock<PredictorHarness> = OnceLock::new();
    HARNESS.get_or_init(PredictorHarness::train)
}

/// Shrinks `spec` against `oracle`, persists the minimized reproducer,
/// and panics with a pointer to it.
fn fail_with_repro(
    spec: &DesignSpec,
    label: &str,
    detail: &str,
    oracle: &mut dyn FnMut(&DesignSpec) -> bool,
) -> ! {
    let min = shrink(spec, oracle, 600);
    let hint = match corpus::write_pending(&min, label) {
        Ok(path) => format!("minimized reproducer written to {}", path.display()),
        Err(e) => format!("could not persist reproducer ({e}); minimized source:\n{}", min.verilog()),
    };
    panic!("conformance failure [{label}]: {detail}\n{hint}");
}

#[test]
fn smoke_all_oracles_over_200_seeded_designs() {
    let cfg = GenConfig::default();
    let harness = harness();
    let serve = ServeHarness::start(Arc::clone(harness.model()), None).unwrap();
    for seed in 1..=SMOKE_DESIGNS {
        let spec = generate(seed, &cfg);
        let stim_seed = seed ^ STIM_SEED_SALT;
        if let Err(e) = check_sim_vs_gates(&spec, stim_seed, SIM_CYCLES) {
            fail_with_repro(&spec, &format!("sim_vs_gates_{seed}"), &e, &mut |s| {
                check_sim_vs_gates(s, stim_seed, SIM_CYCLES).is_err()
            });
        }
        if let Err(e) = check_vsynth_invariants(&spec) {
            fail_with_repro(&spec, &format!("vsynth_invariants_{seed}"), &e, &mut |s| {
                check_vsynth_invariants(s).is_err()
            });
        }
        // The model-level oracles cost several full predictions each, so
        // they sample the stream instead of running on every design.
        if seed % MODEL_STRIDE == 0 {
            if let Err(e) = harness.check(&spec) {
                fail_with_repro(&spec, &format!("predictor_determinism_{seed}"), &e, &mut |s| {
                    harness.check(s).is_err()
                });
            }
            if let Err(e) = serve.check(&spec) {
                fail_with_repro(&spec, &format!("serve_identity_{seed}"), &e, &mut |s| {
                    serve.check(s).is_err()
                });
            }
        }
    }
    serve.shutdown();
}

/// Designs the incremental-oracle smoke sweeps (the full ≥500-design run
/// lives in the `eco_soak` binary).
const INCREMENTAL_SMOKE_DESIGNS: u64 = 25;
/// Module edits per design in the smoke.
const INCREMENTAL_SMOKE_EDITS: usize = 3;

#[test]
fn incremental_oracle_smoke() {
    // Oracle 5 over seeded designs: K random module edits per design,
    // each step's incremental re-prediction bit-identical to from-scratch.
    let cfg = GenConfig::default();
    let inc = IncrementalHarness::from_model(Arc::clone(harness().model()));
    let mut reelaborated = 0usize;
    let mut design_modules = 0usize;
    for seed in 1..=INCREMENTAL_SMOKE_DESIGNS {
        let spec = generate(seed, &cfg);
        match inc.check(&spec, seed ^ STIM_SEED_SALT, INCREMENTAL_SMOKE_EDITS) {
            Ok(stats) => {
                assert_eq!(stats.edits, INCREMENTAL_SMOKE_EDITS);
                reelaborated += stats.reelaborated_modules;
                design_modules += stats.design_modules;
            }
            Err(e) => {
                let salt = seed ^ STIM_SEED_SALT;
                fail_with_repro(&spec, &format!("incremental_{seed}"), &e, &mut |s| {
                    inc.check(s, salt, INCREMENTAL_SMOKE_EDITS).is_err()
                });
            }
        }
    }
    // The point of the tentpole: edits must not re-elaborate everything.
    assert!(
        reelaborated <= design_modules,
        "re-elaborated {reelaborated} of {design_modules} module slots"
    );
}

#[test]
fn content_hashes_ignore_whitespace_and_comments() {
    let a = parse_source(
        "module m (input [3:0] a, output [3:0] y);\n    assign y = a + 4'd1;\nendmodule\n",
    )
    .unwrap();
    let b = parse_source(
        "// a comment\nmodule  m ( input [3:0] a ,\n            output [3:0] y );\n\
         /* block\n   comment */\n    assign   y = a + 4'd1 ; // trailing\nendmodule\n",
    )
    .unwrap();
    let ha = design_hashes(&a);
    let hb = design_hashes(&b);
    assert_eq!(ha["m"], hb["m"], "whitespace/comment reformatting must not change the hash");

    // ... while a real change does.
    let c = parse_source(
        "module m (input [3:0] a, output [3:0] y);\n    assign y = a + 4'd2;\nendmodule\n",
    )
    .unwrap();
    assert_ne!(ha["m"].own, design_hashes(&c)["m"].own);
}

#[test]
fn content_hashes_are_parameter_binding_sensitive() {
    let src = |w: u32| {
        format!(
            "module sub #(parameter W = 4) (input [W-1:0] a, output [W-1:0] y);\n\
                 assign y = a + 1'd1;\n\
             endmodule\n\
             module top (input [7:0] i0, output [7:0] o0);\n\
                 wire [7:0] t;\n\
                 sub #(.W({w})) u (.a(i0[{0}:0]), .y(t[{0}:0]));\n\
                 assign o0 = t;\n\
             endmodule\n",
            w - 1
        )
    };
    let a = parse_source(&src(4)).unwrap();
    let b = parse_source(&src(8)).unwrap();
    let (ha, hb) = (design_hashes(&a), design_hashes(&b));
    // The sub definition is untouched; the parent carries the binding.
    assert_eq!(ha["sub"], hb["sub"]);
    assert_ne!(ha["top"].own, hb["top"].own, "a parameter binding is content");
    assert_ne!(ha["top"].trans, hb["top"].trans);
}

#[test]
fn content_hashes_do_not_collide_over_catalog_and_generated_designs() {
    // Same own-hash must mean same module source text, across the full
    // design catalog plus 1000 generated specs. Identical text appearing
    // in many designs (the shared helper modules, catalog building
    // blocks) is expected and fine.
    let mut seen: std::collections::HashMap<[u64; 2], String> = std::collections::HashMap::new();
    let mut check = |name: &str, hash: [u64; 2], text: String, origin: &str| {
        match seen.get(&hash) {
            Some(prev) if *prev != text => panic!(
                "hash collision on module `{name}` from {origin}: two distinct sources share \
                 {hash:?}:\n--- first ---\n{prev}\n--- second ---\n{text}"
            ),
            Some(_) => {}
            None => {
                seen.insert(hash, text);
            }
        }
    };
    // Module texts keyed by re-printing the parsed AST is unavailable, so
    // compare the normalized token stream instead: strip whitespace runs.
    let normalize = |src: &str| src.split_whitespace().collect::<Vec<_>>().join(" ");
    let mut split = |verilog: &str, origin: &str| {
        let design = parse_source(verilog).unwrap();
        let hashes = design_hashes(&design);
        let mut pos = 0;
        while let Some(off) = verilog[pos..].find("module ") {
            let start = pos + off;
            let end = start
                + verilog[start..].find("endmodule").map(|e| e + "endmodule".len()).unwrap();
            let name = verilog[start + 7..].split_whitespace().next().unwrap().to_string();
            if let Some(h) = hashes.get(&name) {
                check(&name, h.own, normalize(&verilog[start..end]), origin);
            }
            pos = end;
        }
    };
    for design in sns_designs::catalog() {
        split(&design.verilog, &design.name);
    }
    let cfg = GenConfig::default();
    for seed in 0..1000u64 {
        split(&generate(seed, &cfg).verilog(), &format!("generated seed {seed}"));
    }
    assert!(seen.len() > 1000, "expected a large hash population, got {}", seen.len());
}

#[test]
fn generation_is_identical_on_any_thread_count() {
    let cfg = GenConfig::default();
    let seeds: Vec<u64> = (1..=64).collect();
    let serial: Vec<String> = seeds.iter().map(|&s| generate(s, &cfg).verilog()).collect();
    for threads in [2, 8] {
        let parallel = par_map(&seeds, threads, |&s| generate(s, &cfg).verilog());
        assert_eq!(serial, parallel, "generation diverged at {threads} threads");
    }
}

#[test]
fn corpus_cases_replay_bit_identically() {
    let dir = corpus::corpus_dir();
    if corpus::blessing() {
        // SNS_BLESS=1: (re-)pin every sidecar to current behavior. New
        // cases without a sidecar get the default stimulus parameters.
        let mut files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().and_then(|s| s.to_str()) == Some("v"))
            .collect();
        files.sort();
        let blessed = files.len();
        for vpath in files {
            let (top, stim_seed, cycles) = match corpus::load_case(&vpath) {
                Ok(c) => (c.top, c.stim_seed, c.cycles),
                Err(_) => ("top".to_string(), corpus::DEFAULT_STIM_SEED, corpus::DEFAULT_CYCLES),
            };
            corpus::bless(&vpath, &top, stim_seed, cycles).unwrap();
        }
        eprintln!("blessed {blessed} corpus sidecars");
        return;
    }
    let cases = corpus::load_corpus(&dir).unwrap();
    assert!(
        cases.len() >= 5,
        "the corpus should hold the checked-in regression cases, found {}",
        cases.len()
    );
    for case in &cases {
        corpus::replay(case).unwrap();
    }
}

#[test]
fn synthesis_labels_grow_monotonically_with_width() {
    // Dedicated families with the sizing loop pinned off: the sizing
    // iterations trade area for timing nonmonotonically by design, but
    // at zero iterations a wider datapath must never get cheaper.
    let options = || SynthOptions { sizing_iterations: 0, ..SynthOptions::default() };
    type Family = (&'static str, fn(u32) -> String);
    let families: &[Family] = &[
        ("adder", |w| {
            format!(
                "module top (input [{0}:0] a, b, output [{1}:0] y); assign y = a + b; endmodule",
                w - 1,
                w
            )
        }),
        ("multiplier", |w| {
            format!(
                "module top (input [{0}:0] a, b, output [{1}:0] y); assign y = a * b; endmodule",
                w - 1,
                2 * w - 1
            )
        }),
        ("comparator", |w| {
            format!(
                "module top (input [{0}:0] a, b, output y); assign y = a < b; endmodule",
                w - 1
            )
        }),
        ("accumulator", |w| {
            format!(
                "module top (input clk, input [{0}:0] a, output [{0}:0] y);\n\
                     reg [{0}:0] acc;\n\
                     always @(posedge clk) acc <= acc + a;\n\
                     assign y = acc;\n\
                 endmodule",
                w - 1
            )
        }),
    ];
    for (name, src) in families {
        let mut prev: Option<(f64, u64)> = None;
        for w in [4u32, 8, 12, 16] {
            let nl = parse_and_elaborate(&src(w), "top").unwrap();
            let r = VirtualSynthesizer::new(options()).synthesize(&nl);
            if let Some((area, gates)) = prev {
                assert!(
                    r.area_um2 >= area,
                    "{name}: area shrank when widening to {w} bits ({area} -> {})",
                    r.area_um2
                );
                assert!(
                    r.gate_count >= gates,
                    "{name}: gate count shrank when widening to {w} bits ({gates} -> {})",
                    r.gate_count
                );
            }
            prev = Some((r.area_um2, r.gate_count));
        }
    }
}

#[test]
fn random_designs_never_shrink_under_widening() {
    // The generator's own widening transform, gate-count only (the default
    // sizing loop runs here, which is exactly what the soak exercises).
    let cfg = GenConfig::default();
    for seed in 300..320 {
        let spec = generate(seed, &cfg);
        let count = |s: &DesignSpec| {
            let nl = parse_and_elaborate(&s.verilog(), s.top()).unwrap();
            let gl = VirtualSynthesizer::new(SynthOptions::default()).elaborate_gates(&nl);
            gl.graph.len()
        };
        let base = count(&spec);
        let wide = count(&spec.widened());
        assert!(
            wide >= base,
            "seed {seed}: widening shrank the gate graph ({base} -> {wide})"
        );
    }
}

#[test]
fn serve_metrics_reconcile_under_cache_pressure() {
    // A deliberately tiny cache so predictions evict each other; the
    // /metrics counters must reconcile exactly: every cached entry is a
    // miss that has not been evicted. Trains its own model — the shared
    // harness model's cache is being exercised concurrently by the smoke
    // test, which would make the counter assertions racy.
    let cfg = GenConfig::default();
    let own = PredictorHarness::train();
    let model = Arc::clone(own.model());
    let cap = 16usize;
    let serve = ServeHarness::start(Arc::clone(&model), Some(cap)).unwrap();

    let check = |tag: &str| {
        let m = serve.metrics().unwrap();
        let cache = m.get("cache").unwrap();
        let entries = cache.get("entries").and_then(|v| v.as_u64()).unwrap();
        let capacity = cache.get("capacity").and_then(|v| v.as_u64()).unwrap();
        let hits = cache.get("hits").and_then(|v| v.as_u64()).unwrap();
        let misses = cache.get("misses").and_then(|v| v.as_u64()).unwrap();
        let evictions = cache.get("evictions").and_then(|v| v.as_u64()).unwrap();
        let hit_rate = cache.get("hit_rate").and_then(|v| v.as_f64()).unwrap();
        assert_eq!(capacity, cap as u64, "{tag}");
        assert!(entries <= cap as u64, "{tag}: {entries} entries over capacity {cap}");
        assert_eq!(
            entries,
            misses - evictions,
            "{tag}: entries must equal misses - evictions (hits={hits} misses={misses})"
        );
        assert!((0.0..=1.0).contains(&hit_rate), "{tag}: hit_rate {hit_rate}");
        (hits, misses, evictions)
    };

    // Counters are lifetime, and training itself fills the cache through
    // the counted paths — so assert deltas from a baseline, not zeros.
    let (h0, m0, e0) = check("baseline");
    // Distinct designs force misses and (cumulatively) evictions ...
    for seed in [901u64, 902, 903] {
        let spec = generate(seed, &cfg);
        serve.check(&spec).unwrap();
    }
    let (_, m1, _) = check("after distinct designs");
    assert!(m1 > m0, "distinct designs must miss");
    // ... and an immediate repeat of the last design hits what it just
    // filled (FIFO eviction: its own sequences are the newest entries).
    let spec = generate(903, &cfg);
    serve.check(&spec).unwrap();
    let (h2, _, e2) = check("after repeat");
    assert!(h2 > h0, "an immediate repeat must hit the cache");
    assert!(e2 > e0, "distinct designs through a {cap}-entry cache must evict");

    serve.shutdown();
}

#[test]
fn int8_mode_is_deterministic_and_within_tolerance_of_f32() {
    // The quantized path's contract, on real vsynth-labeled designs:
    // deterministic (oracle 3's bit-identity sweep must still pass in
    // int8 mode — across threads, batch sizes, and cache evictions) and
    // close to the f32 labels (the tolerance oracle). Trains its own
    // model: the shared harness must stay f32 for every other test.
    use sns_conformance::oracle::tiny_train_config;
    use sns_core::{train_sns, DesignPrediction, QuantMode};

    let cfg = GenConfig::default();
    let designs =
        vec![sns_designs::vector::simd_alu(2, 8), sns_designs::nonlinear::piecewise(4, 8)];
    let (mut model, _) = train_sns(&designs, &tiny_train_config());
    assert_eq!(model.quant_mode(), QuantMode::F32);

    let specs: Vec<DesignSpec> = (1..=6).map(|i| generate(i * 37 + 5, &cfg)).collect();
    let f32_refs: Vec<DesignPrediction> = specs
        .iter()
        .map(|s| model.predict_verilog(&s.verilog(), s.top()).unwrap())
        .collect();

    model.set_quant_mode(QuantMode::Int8);
    assert_eq!(model.quant_mode(), QuantMode::Int8);
    let int8 = PredictorHarness::from_model(Arc::new(model));

    // Labels drift (quantization), provenance must not. The bound is
    // loose — int8 is an accuracy/speed trade, not a bit-identity one —
    // but tight enough to catch a broken dequant scale or a clamped
    // activation path, which throw labels off by orders of magnitude.
    for (spec, reference) in specs.iter().zip(&f32_refs) {
        int8.check_labels_close(spec, reference, 0.5).unwrap();
        // Determinism sweep: int8 is per-row quantized, so thread count,
        // batch size, and eviction-forced recomputes must not change a
        // single bit of the quantized prediction either.
        int8.check(spec).unwrap();
    }
}
