//! Minimization of failing design specs.
//!
//! Given a spec and a predicate "does this design still fail?", the
//! shrinker greedily applies structure-preserving reductions — dropping
//! unreferenced items and inputs, demoting items to simpler kinds,
//! replacing expressions by their operands or by constants, halving
//! widths — re-checking the predicate after every candidate. Each
//! accepted candidate is well-formed by construction (combinational items
//! never gain self-references, select bounds stay in range), so the
//! minimized spec elaborates just like the original.
//!
//! The result is what lands in `tests/corpus/`: a failing design of a few
//! lines instead of a few hundred.

use crate::generator::{DesignSpec, GenExpr, GenItem, RegBody};

/// Shrinks `spec` while `still_fails` keeps returning `true`, spending at
/// most `max_checks` predicate evaluations. Returns the smallest failing
/// spec found (the input itself if nothing smaller fails).
pub fn shrink(
    spec: &DesignSpec,
    still_fails: &mut dyn FnMut(&DesignSpec) -> bool,
    max_checks: usize,
) -> DesignSpec {
    let mut cur = spec.clone();
    let mut checks = 0usize;
    loop {
        let mut progressed = false;

        // Pass 1: drop items nothing else references, last first (later
        // items are the most likely to be unreferenced).
        let mut k = cur.items.len();
        while k > 0 {
            k -= 1;
            if checks >= max_checks {
                return cur;
            }
            if let Some(cand) = remove_item(&cur, k) {
                checks += 1;
                if still_fails(&cand) {
                    cur = cand;
                    progressed = true;
                }
            }
        }

        // Pass 2: per-item structural simplification to a fixpoint.
        for k in 0..cur.items.len() {
            loop {
                let mut improved = false;
                for cand_item in item_candidates(&cur.items[k]) {
                    if checks >= max_checks {
                        return cur;
                    }
                    if cand_item == cur.items[k] {
                        continue;
                    }
                    let mut cand = cur.clone();
                    cand.items[k] = cand_item;
                    checks += 1;
                    if still_fails(&cand) {
                        cur = cand;
                        improved = true;
                        break;
                    }
                }
                if !improved {
                    break;
                }
                progressed = true;
            }
        }

        // Pass 3: drop unreferenced inputs (keep at least one).
        let mut j = cur.input_widths.len();
        while j > 0 && cur.input_widths.len() > 1 {
            j -= 1;
            if checks >= max_checks {
                return cur;
            }
            if let Some(cand) = remove_input(&cur, j) {
                checks += 1;
                if still_fails(&cand) {
                    cur = cand;
                    progressed = true;
                }
            }
        }

        // Pass 4: halve every width (when all select bounds survive).
        if let Some(cand) = halve_widths(&cur) {
            if checks >= max_checks {
                return cur;
            }
            checks += 1;
            if still_fails(&cand) {
                cur = cand;
                progressed = true;
            }
        }

        if !progressed {
            return cur;
        }
    }
}

/// All signal indices an expression references.
fn expr_refs(e: &GenExpr, out: &mut Vec<usize>) {
    match e {
        GenExpr::Ref(s) | GenExpr::Bit { sig: s, .. } | GenExpr::Part { sig: s, .. } => {
            out.push(*s)
        }
        GenExpr::Const { .. } => {}
        GenExpr::Un(_, a) => expr_refs(a, out),
        GenExpr::Bin(_, a, b) => {
            expr_refs(a, out);
            expr_refs(b, out);
        }
        GenExpr::Mux(c, a, b) => {
            expr_refs(c, out);
            expr_refs(a, out);
            expr_refs(b, out);
        }
        GenExpr::Cat(sigs) => out.extend_from_slice(sigs),
        GenExpr::Rep { sig, .. } => out.push(*sig),
    }
}

/// All signal indices an item references (not the one it defines).
fn item_refs(item: &GenItem) -> Vec<usize> {
    let mut out = Vec::new();
    for_each_expr(item, &mut |e| expr_refs(e, &mut out));
    if let GenItem::Mem { raddr_sig, .. } = item {
        out.push(*raddr_sig);
    }
    if let GenItem::Inst { a, b, .. } = item {
        out.push(*a);
        out.push(*b);
    }
    out
}

/// Visits every expression slot of an item.
fn for_each_expr(item: &GenItem, f: &mut dyn FnMut(&GenExpr)) {
    match item {
        GenItem::Wire { expr, .. } => f(expr),
        GenItem::Reg { body, .. } => match body {
            RegBody::Simple(e) => f(e),
            RegBody::IfElse(c, a, b) => {
                f(c);
                f(a);
                f(b);
            }
            RegBody::Nested { outer, inner, a, b, c } => {
                f(outer);
                f(inner);
                f(a);
                f(b);
                f(c);
            }
        },
        GenItem::CombCase { subject, default, arms, .. } => {
            f(subject);
            f(default);
            for a in arms {
                f(a);
            }
        }
        GenItem::Mem { wen, waddr, wdata, .. } => {
            f(wen);
            f(waddr);
            f(wdata);
        }
        GenItem::Inst { .. } => {}
    }
}

fn map_expr(e: &GenExpr, f: &dyn Fn(usize) -> usize) -> GenExpr {
    match e {
        GenExpr::Ref(s) => GenExpr::Ref(f(*s)),
        GenExpr::Const { value, width } => GenExpr::Const { value: *value, width: *width },
        GenExpr::Un(op, a) => GenExpr::Un(*op, Box::new(map_expr(a, f))),
        GenExpr::Bin(op, a, b) => {
            GenExpr::Bin(*op, Box::new(map_expr(a, f)), Box::new(map_expr(b, f)))
        }
        GenExpr::Mux(c, a, b) => GenExpr::Mux(
            Box::new(map_expr(c, f)),
            Box::new(map_expr(a, f)),
            Box::new(map_expr(b, f)),
        ),
        GenExpr::Bit { sig, bit } => GenExpr::Bit { sig: f(*sig), bit: *bit },
        GenExpr::Part { sig, msb, lsb } => GenExpr::Part { sig: f(*sig), msb: *msb, lsb: *lsb },
        GenExpr::Cat(sigs) => GenExpr::Cat(sigs.iter().map(|&s| f(s)).collect()),
        GenExpr::Rep { n, sig } => GenExpr::Rep { n: *n, sig: f(*sig) },
    }
}

fn map_item(item: &GenItem, f: &dyn Fn(usize) -> usize) -> GenItem {
    match item {
        GenItem::Wire { width, expr } => GenItem::Wire { width: *width, expr: map_expr(expr, f) },
        GenItem::Reg { width, body } => GenItem::Reg {
            width: *width,
            body: match body {
                RegBody::Simple(e) => RegBody::Simple(map_expr(e, f)),
                RegBody::IfElse(c, a, b) => {
                    RegBody::IfElse(map_expr(c, f), map_expr(a, f), map_expr(b, f))
                }
                RegBody::Nested { outer, inner, a, b, c } => RegBody::Nested {
                    outer: map_expr(outer, f),
                    inner: map_expr(inner, f),
                    a: map_expr(a, f),
                    b: map_expr(b, f),
                    c: map_expr(c, f),
                },
            },
        },
        GenItem::CombCase { width, subject, default, arms } => GenItem::CombCase {
            width: *width,
            subject: map_expr(subject, f),
            default: map_expr(default, f),
            arms: arms.iter().map(|a| map_expr(a, f)).collect(),
        },
        GenItem::Mem { width, depth, wen, waddr, wdata, raddr_sig } => GenItem::Mem {
            width: *width,
            depth: *depth,
            wen: map_expr(wen, f),
            waddr: map_expr(waddr, f),
            wdata: map_expr(wdata, f),
            raddr_sig: f(*raddr_sig),
        },
        GenItem::Inst { width, a, b, deep } => {
            GenItem::Inst { width: *width, a: f(*a), b: f(*b), deep: *deep }
        }
    }
}

/// Removes item `k` if no *other* item references its signal.
fn remove_item(spec: &DesignSpec, k: usize) -> Option<DesignSpec> {
    let idx = spec.input_widths.len() + k;
    for (j, item) in spec.items.iter().enumerate() {
        if j != k && item_refs(item).contains(&idx) {
            return None;
        }
    }
    let remap = move |s: usize| if s > idx { s - 1 } else { s };
    let items = spec
        .items
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != k)
        .map(|(_, item)| map_item(item, &remap))
        .collect();
    Some(DesignSpec { seed: spec.seed, input_widths: spec.input_widths.clone(), items })
}

/// Removes input `j` if no item references it.
fn remove_input(spec: &DesignSpec, j: usize) -> Option<DesignSpec> {
    if spec.items.iter().any(|item| item_refs(item).contains(&j)) {
        return None;
    }
    let remap = move |s: usize| if s > j { s - 1 } else { s };
    let mut input_widths = spec.input_widths.clone();
    input_widths.remove(j);
    let items = spec.items.iter().map(|item| map_item(item, &remap)).collect();
    Some(DesignSpec { seed: spec.seed, input_widths, items })
}

/// Halves every signal width, if all select bounds stay valid.
fn halve_widths(spec: &DesignSpec) -> Option<DesignSpec> {
    let mut cand = spec.clone();
    for w in &mut cand.input_widths {
        *w = (*w / 2).max(1);
    }
    for item in &mut cand.items {
        match item {
            GenItem::Wire { width, .. }
            | GenItem::Reg { width, .. }
            | GenItem::CombCase { width, .. }
            | GenItem::Mem { width, .. }
            | GenItem::Inst { width, .. } => *width = (*width / 2).max(1),
        }
    }
    if cand == *spec {
        return None;
    }
    // Validity: every select bound (at any expression depth) must fit the
    // halved widths.
    let mut ok = true;
    for item in &cand.items {
        for_each_expr(item, &mut |top| {
            for_each_subexpr(top, &mut |e| {
                let (sig, hi) = match e {
                    GenExpr::Bit { sig, bit } => (*sig, *bit),
                    GenExpr::Part { sig, msb, .. } => (*sig, *msb),
                    _ => return,
                };
                if sig < cand.signal_count() && hi >= cand.width_of(sig) {
                    ok = false;
                }
            });
        });
    }
    if ok {
        Some(cand)
    } else {
        None
    }
}

/// Visits `e` and every expression nested inside it.
fn for_each_subexpr(e: &GenExpr, f: &mut dyn FnMut(&GenExpr)) {
    f(e);
    match e {
        GenExpr::Un(_, a) => for_each_subexpr(a, f),
        GenExpr::Bin(_, a, b) => {
            for_each_subexpr(a, f);
            for_each_subexpr(b, f);
        }
        GenExpr::Mux(c, a, b) => {
            for_each_subexpr(c, f);
            for_each_subexpr(a, f);
            for_each_subexpr(b, f);
        }
        _ => {}
    }
}

/// Candidate expressions strictly simpler than `e` (plus the zero
/// constant).
fn expr_candidates(e: &GenExpr) -> Vec<GenExpr> {
    let zero = GenExpr::Const { value: 0, width: 1 };
    let mut out = Vec::new();
    match e {
        GenExpr::Ref(_) => {}
        GenExpr::Const { value, .. } => {
            if *value != 0 {
                out.push(zero.clone());
            }
            return out;
        }
        GenExpr::Un(op, a) => {
            out.push((**a).clone());
            for c in expr_candidates(a) {
                out.push(GenExpr::Un(*op, Box::new(c)));
            }
        }
        GenExpr::Bin(op, a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
            // In-place operand simplification, so a failing operator can
            // keep failing while its operands shrink to constants.
            for c in expr_candidates(a) {
                out.push(GenExpr::Bin(*op, Box::new(c), b.clone()));
            }
            for c in expr_candidates(b) {
                out.push(GenExpr::Bin(*op, a.clone(), Box::new(c)));
            }
        }
        GenExpr::Mux(c, a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
            out.push((**c).clone());
            for s in expr_candidates(c) {
                out.push(GenExpr::Mux(Box::new(s), a.clone(), b.clone()));
            }
            for s in expr_candidates(a) {
                out.push(GenExpr::Mux(c.clone(), Box::new(s), b.clone()));
            }
            for s in expr_candidates(b) {
                out.push(GenExpr::Mux(c.clone(), a.clone(), Box::new(s)));
            }
        }
        GenExpr::Bit { sig, .. } | GenExpr::Part { sig, .. } | GenExpr::Rep { sig, .. } => {
            out.push(GenExpr::Ref(*sig))
        }
        GenExpr::Cat(sigs) => out.extend(sigs.iter().map(|&s| GenExpr::Ref(s))),
    }
    out.push(zero);
    out
}

/// Simpler variants of one item. Kind-preserving candidates first (they
/// keep clocked expressions clocked, so self-references stay legal); the
/// kind-demoting `Wire(0)` candidate references nothing and is therefore
/// always well-formed.
fn item_candidates(item: &GenItem) -> Vec<GenItem> {
    let w = item.width();
    let zero_wire = GenItem::Wire { width: w, expr: GenExpr::Const { value: 0, width: w } };
    let mut out = Vec::new();
    match item {
        GenItem::Wire { width, expr } => {
            for cand in expr_candidates(expr) {
                out.push(GenItem::Wire { width: *width, expr: cand });
            }
        }
        GenItem::Reg { width, body } => {
            let mk = |b: RegBody| GenItem::Reg { width: *width, body: b };
            match body {
                RegBody::Simple(e) => {
                    for cand in expr_candidates(e) {
                        out.push(mk(RegBody::Simple(cand)));
                    }
                }
                RegBody::IfElse(c, a, b) => {
                    out.push(mk(RegBody::Simple(a.clone())));
                    out.push(mk(RegBody::Simple(b.clone())));
                    for cand in expr_candidates(c) {
                        out.push(mk(RegBody::IfElse(cand, a.clone(), b.clone())));
                    }
                    for cand in expr_candidates(a) {
                        out.push(mk(RegBody::IfElse(c.clone(), cand, b.clone())));
                    }
                    for cand in expr_candidates(b) {
                        out.push(mk(RegBody::IfElse(c.clone(), a.clone(), cand)));
                    }
                }
                RegBody::Nested { outer, inner, a, b, c } => {
                    out.push(mk(RegBody::IfElse(outer.clone(), a.clone(), c.clone())));
                    out.push(mk(RegBody::IfElse(inner.clone(), a.clone(), b.clone())));
                    out.push(mk(RegBody::Simple(c.clone())));
                    out.push(mk(RegBody::Simple(a.clone())));
                }
            }
        }
        GenItem::CombCase { width, subject, default, arms } => {
            // Demote to a plain wire of the default or of any arm — all
            // combinational expressions over earlier signals.
            out.push(GenItem::Wire { width: *width, expr: default.clone() });
            for arm in arms {
                out.push(GenItem::Wire { width: *width, expr: arm.clone() });
            }
            for (i, arm) in arms.iter().enumerate() {
                for cand in expr_candidates(arm) {
                    let mut new_arms = arms.clone();
                    new_arms[i] = cand;
                    out.push(GenItem::CombCase {
                        width: *width,
                        subject: subject.clone(),
                        default: default.clone(),
                        arms: new_arms,
                    });
                }
            }
        }
        GenItem::Mem { width, depth, wen, waddr, wdata, raddr_sig } => {
            let mk = |wen: GenExpr, waddr: GenExpr, wdata: GenExpr| GenItem::Mem {
                width: *width,
                depth: *depth,
                wen,
                waddr,
                wdata,
                raddr_sig: *raddr_sig,
            };
            for cand in expr_candidates(wen) {
                out.push(mk(cand, waddr.clone(), wdata.clone()));
            }
            for cand in expr_candidates(waddr) {
                out.push(mk(wen.clone(), cand, wdata.clone()));
            }
            for cand in expr_candidates(wdata) {
                out.push(mk(wen.clone(), waddr.clone(), cand));
            }
        }
        GenItem::Inst { width, a, b, deep } => {
            if *deep {
                // Flatten the hierarchy first: a shallow instance keeps
                // the "submodule instance" shape with one less level.
                out.push(GenItem::Inst { width: *width, a: *a, b: *b, deep: false });
            }
            out.push(GenItem::Wire { width: *width, expr: GenExpr::Ref(*a) });
            out.push(GenItem::Wire { width: *width, expr: GenExpr::Ref(*b) });
        }
    }
    out.push(zero_wire);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GenConfig};

    #[test]
    fn shrunk_specs_stay_elaboratable() {
        // Shrink against an always-true predicate: the shrinker then walks
        // its full reduction lattice, and every intermediate acceptance
        // must still be a well-formed design.
        let cfg = GenConfig::default();
        for seed in 0..20 {
            let spec = generate(seed, &cfg);
            let min = shrink(
                &spec,
                &mut |s| {
                    let src = s.verilog();
                    sns_netlist::parse_and_elaborate(&src, s.top())
                        .unwrap_or_else(|e| panic!("shrink candidate must elaborate: {e}\n{src}"));
                    true
                },
                2_000,
            );
            // Everything is removable under an always-failing oracle.
            assert!(min.items.len() <= 1, "seed {seed}: {} items left", min.items.len());
        }
    }

    #[test]
    fn shrink_isolates_the_failing_construct() {
        // Plant a "bug": the design fails whenever it contains a division.
        let cfg = GenConfig { max_items: 14, ..GenConfig::default() };
        let mut found = 0;
        for seed in 0..200 {
            let spec = generate(seed, &cfg);
            if !spec.verilog().contains('/') {
                continue;
            }
            found += 1;
            let min = shrink(&spec, &mut |s| s.verilog().contains('/'), 2_000);
            assert!(min.verilog().contains('/'), "seed {seed} lost the failing construct");
            assert!(
                min.items.len() <= 2,
                "seed {seed}: expected a tiny repro, got {} items:\n{}",
                min.items.len(),
                min.verilog()
            );
            if found >= 10 {
                break;
            }
        }
        assert!(found >= 5, "the generator should produce divisions regularly");
    }
}
