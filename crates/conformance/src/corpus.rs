//! The regression corpus: minimized failing designs, replayed forever.
//!
//! Every disagreement the conformance harness finds is shrunk (see
//! [`crate::shrink`]) and checked in under `tests/corpus/` as a small
//! `.v` file with a `.json` sidecar pinning the expected behavior:
//!
//! ```json
//! {
//!   "top": "top",
//!   "stim_seed": 3405691582,
//!   "cycles": 6,
//!   "trace_hash": "0x8c5f4e21aa770b13",
//!   "synth": { "area_um2": ..., "timing_ps": ..., "power_mw": ..., "gate_count": ... }
//! }
//! ```
//!
//! [`replay`] re-runs each case through the sim-vs-gates differential
//! oracle, re-hashes its output trace, and re-synthesizes it, demanding
//! bit-identical agreement with the sidecar (the workspace JSON printer is
//! shortest-round-trip, so `f64` comparisons are exact). Intentional
//! behavior changes are blessed with `SNS_BLESS=1`, which rewrites the
//! sidecars in place; the diff is then reviewed and committed.
//!
//! Fresh failures found at test time land under `tests/corpus/pending/`
//! (Verilog only) for a human to promote.

use std::fs;
use std::path::{Path, PathBuf};

use sns_netlist::parse_and_elaborate;
use sns_rt::json::{parse as parse_json, Json};
use sns_vsynth::{SynthOptions, SynthReport, VirtualSynthesizer};

use crate::generator::DesignSpec;
use crate::oracle::{diff_sim_netlist, trace_hash};

/// Stimulus cycles a corpus case replays by default.
pub const DEFAULT_CYCLES: usize = 6;
/// Stimulus seed new corpus cases are blessed with.
pub const DEFAULT_STIM_SEED: u64 = 0xCAFE_F00D;

/// The synthesis-label signature pinned by a sidecar.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSignature {
    pub area_um2: f64,
    pub timing_ps: f64,
    pub power_mw: f64,
    pub gate_count: u64,
}

impl SynthSignature {
    fn of(report: &SynthReport) -> SynthSignature {
        SynthSignature {
            area_um2: report.area_um2,
            timing_ps: report.timing_ps,
            power_mw: report.power_mw,
            gate_count: report.gate_count,
        }
    }
}

/// One replayable corpus case (a `.v` file plus its parsed sidecar).
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// File stem, e.g. `div_by_zero`.
    pub name: String,
    pub verilog: String,
    pub top: String,
    pub stim_seed: u64,
    pub cycles: usize,
    pub trace_hash: u64,
    pub synth: SynthSignature,
}

/// The checked-in corpus directory (`tests/corpus/` at the repo root).
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// Loads every `.v` + `.json` case in `dir`, sorted by name.
///
/// # Errors
///
/// Returns an error when a `.v` file has no sidecar (run with `SNS_BLESS=1`
/// to create it) or a sidecar fails to parse.
pub fn load_corpus(dir: &Path) -> Result<Vec<CorpusCase>, String> {
    let mut cases = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read corpus dir {dir:?}: {e}"))?;
    let mut verilog_files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|s| s.to_str()) == Some("v"))
        .collect();
    verilog_files.sort();
    for vpath in verilog_files {
        cases.push(load_case(&vpath)?);
    }
    Ok(cases)
}

/// Loads one case from its `.v` path.
pub fn load_case(vpath: &Path) -> Result<CorpusCase, String> {
    let name = vpath
        .file_stem()
        .and_then(|s| s.to_str())
        .ok_or_else(|| format!("bad corpus file name: {vpath:?}"))?
        .to_string();
    let verilog =
        fs::read_to_string(vpath).map_err(|e| format!("cannot read {vpath:?}: {e}"))?;
    let spath = vpath.with_extension("json");
    let sidecar = fs::read_to_string(&spath).map_err(|e| {
        format!("corpus case `{name}` has no sidecar (bless it with SNS_BLESS=1): {e}")
    })?;
    let json = parse_json(&sidecar).map_err(|e| format!("bad sidecar {spath:?}: {e}"))?;
    let field = |k: &str| json.get(k).map_err(|e| format!("sidecar {spath:?}: {e}"));
    let synth = field("synth")?;
    let sfield = |k: &str| -> Result<f64, String> {
        synth.get(k).and_then(|v| v.as_f64()).map_err(|e| format!("sidecar {spath:?}: {e}"))
    };
    let hash_text = field("trace_hash")?.as_str().map_err(|e| format!("{spath:?}: {e}"))?;
    let trace_hash = hash_text
        .strip_prefix("0x")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| format!("sidecar {spath:?}: trace_hash is not 0x-hex: {hash_text}"))?;
    Ok(CorpusCase {
        name,
        verilog,
        top: field("top")?.as_str().map_err(|e| format!("{spath:?}: {e}"))?.to_string(),
        stim_seed: field("stim_seed")?.as_u64().map_err(|e| format!("{spath:?}: {e}"))?,
        cycles: field("cycles")?.as_usize().map_err(|e| format!("{spath:?}: {e}"))?,
        trace_hash,
        synth: SynthSignature {
            area_um2: sfield("area_um2")?,
            timing_ps: sfield("timing_ps")?,
            power_mw: sfield("power_mw")?,
            gate_count: synth
                .get("gate_count")
                .and_then(|v| v.as_u64())
                .map_err(|e| format!("sidecar {spath:?}: {e}"))?,
        },
    })
}

/// Replays one case: the sim-vs-gates differential oracle must pass, the
/// output trace hash must match the sidecar exactly, and re-synthesis
/// must reproduce the pinned labels bit-for-bit.
pub fn replay(case: &CorpusCase) -> Result<(), String> {
    let err = |msg: String| format!("corpus case `{}`: {msg}", case.name);
    let nl = parse_and_elaborate(&case.verilog, &case.top)
        .map_err(|e| err(format!("no longer elaborates: {e}")))?;
    diff_sim_netlist(&nl, case.stim_seed, case.cycles).map_err(&err)?;
    let h = trace_hash(&nl, case.stim_seed, case.cycles).map_err(&err)?;
    if h != case.trace_hash {
        return Err(err(format!(
            "output trace drifted: expected {:#018x}, got {h:#018x} \
             (intentional change? re-bless with SNS_BLESS=1)",
            case.trace_hash
        )));
    }
    let report = VirtualSynthesizer::new(SynthOptions::default()).synthesize(&nl);
    let now = SynthSignature::of(&report);
    for (name, want, got) in [
        ("area_um2", case.synth.area_um2, now.area_um2),
        ("timing_ps", case.synth.timing_ps, now.timing_ps),
        ("power_mw", case.synth.power_mw, now.power_mw),
    ] {
        if want.to_bits() != got.to_bits() {
            return Err(err(format!(
                "synthesis label {name} drifted: expected {want}, got {got} \
                 (intentional change? re-bless with SNS_BLESS=1)"
            )));
        }
    }
    if now.gate_count != case.synth.gate_count {
        return Err(err(format!(
            "gate_count drifted: expected {}, got {} \
             (intentional change? re-bless with SNS_BLESS=1)",
            case.synth.gate_count, now.gate_count
        )));
    }
    Ok(())
}

/// Computes and writes the sidecar for `vpath`, pinning current behavior.
/// Returns the blessed case.
pub fn bless(vpath: &Path, top: &str, stim_seed: u64, cycles: usize) -> Result<CorpusCase, String> {
    let verilog =
        fs::read_to_string(vpath).map_err(|e| format!("cannot read {vpath:?}: {e}"))?;
    let nl = parse_and_elaborate(&verilog, top)
        .map_err(|e| format!("{vpath:?} does not elaborate: {e}"))?;
    // A blessed case must at minimum pass the differential oracle — a
    // sidecar that pins divergent behavior would be self-contradictory.
    diff_sim_netlist(&nl, stim_seed, cycles)
        .map_err(|e| format!("{vpath:?} fails sim-vs-gates, refusing to bless: {e}"))?;
    let hash = trace_hash(&nl, stim_seed, cycles)?;
    let report = VirtualSynthesizer::new(SynthOptions::default()).synthesize(&nl);
    let synth = SynthSignature::of(&report);
    let sidecar = Json::obj(vec![
        ("top", Json::Str(top.to_string())),
        ("stim_seed", Json::Num(stim_seed as f64)),
        ("cycles", Json::Num(cycles as f64)),
        ("trace_hash", Json::Str(format!("{hash:#018x}"))),
        (
            "synth",
            Json::obj(vec![
                ("area_um2", Json::Num(synth.area_um2)),
                ("timing_ps", Json::Num(synth.timing_ps)),
                ("power_mw", Json::Num(synth.power_mw)),
                ("gate_count", Json::Num(synth.gate_count as f64)),
            ]),
        ),
    ]);
    let spath = vpath.with_extension("json");
    fs::write(&spath, sidecar.pretty() + "\n").map_err(|e| format!("cannot write {spath:?}: {e}"))?;
    load_case(vpath)
}

/// `true` when the `SNS_BLESS=1` environment knob asks sidecars to be
/// regenerated instead of checked.
pub fn blessing() -> bool {
    std::env::var("SNS_BLESS").map(|v| v == "1").unwrap_or(false)
}

/// Persists a freshly-found failing design under `tests/corpus/pending/`
/// so a human can inspect it, name it, and bless it into the corpus.
/// Returns the written path.
pub fn write_pending(spec: &DesignSpec, label: &str) -> Result<PathBuf, String> {
    let dir = corpus_dir().join("pending");
    fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
    let path = dir.join(format!("{label}.v"));
    let header = format!(
        "// Minimized failing design (generator seed {}).\n\
         // Promote: move next to tests/corpus/*.v and run the corpus test with SNS_BLESS=1.\n",
        spec.seed
    );
    fs::write(&path, header + &spec.verilog()).map_err(|e| format!("cannot write {path:?}: {e}"))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sns-corpus-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn bless_then_replay_round_trips() {
        let dir = scratch_dir("roundtrip");
        let vpath = dir.join("counter.v");
        fs::write(
            &vpath,
            "module top (input clk, input [3:0] i0, output [3:0] o0);\n\
                 reg [3:0] s0;\n\
                 always @(posedge clk) s0 <= s0 + i0;\n\
                 assign o0 = s0;\n\
             endmodule\n",
        )
        .unwrap();
        let case = bless(&vpath, "top", DEFAULT_STIM_SEED, DEFAULT_CYCLES).unwrap();
        assert_eq!(case.name, "counter");
        assert_eq!(case.cycles, DEFAULT_CYCLES);
        replay(&case).unwrap();
        // And through the directory loader too.
        let loaded = load_corpus(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        replay(&loaded[0]).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_detects_trace_drift() {
        let dir = scratch_dir("drift");
        let vpath = dir.join("xor.v");
        fs::write(
            &vpath,
            "module top (input [3:0] i0, output [3:0] o0);\n\
                 assign o0 = i0 ^ 4'd5;\n\
             endmodule\n",
        )
        .unwrap();
        let mut case = bless(&vpath, "top", 7, 4).unwrap();
        case.trace_hash ^= 1; // simulate a behavior change
        let e = replay(&case).unwrap_err();
        assert!(e.contains("trace drifted"), "unexpected error: {e}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_sidecar_is_a_clear_error() {
        let dir = scratch_dir("nosidecar");
        fs::write(dir.join("orphan.v"), "module top (output o0); assign o0 = 1'd0; endmodule\n")
            .unwrap();
        let e = load_corpus(&dir).unwrap_err();
        assert!(e.contains("SNS_BLESS"), "unexpected error: {e}");
        let _ = fs::remove_dir_all(&dir);
    }
}
