//! The differential oracles.
//!
//! Each oracle takes a generated [`DesignSpec`] and checks one cross-layer
//! agreement the rest of the workspace silently depends on:
//!
//! 1. [`check_sim_vs_gates`] — the coarse-cell netlist simulator and the
//!    gate-level evaluation of the virtual synthesizer's expanded graph
//!    must produce bit-identical output traces under random stimulus.
//!    This is the oracle that pins the semantics of every expander in
//!    `sns_vsynth::expand` to the elaborator's.
//! 2. [`check_vsynth_invariants`] — synthesis labels are finite, positive,
//!    deterministic (bit-identical across repeated runs), and monotone:
//!    widening every signal of a design never shrinks its gate count.
//! 3. [`PredictorHarness::check`] — a trained `SnsModel` must predict
//!    bit-identically across thread-count × batch-size × cache-capacity
//!    configurations (the explicit-argument priming API, so the sweep
//!    needs no environment variables). Its tolerance mode,
//!    [`PredictorHarness::check_labels_close`], bounds the *relative*
//!    label error against a reference prediction instead — the contract
//!    for quantized (`SNS_INT8=1`) inference, which is deterministic but
//!    deliberately not bit-equal to f32.
//! 4. [`ServeHarness::check`] — `POST /predict` against a live `sns-serve`
//!    instance must return exactly the numbers the in-process model
//!    produces (the daemon's shortest-round-trip JSON printer makes f64
//!    equality exact, not approximate).
//! 5. [`IncrementalHarness::check`] — the hierarchy-first incremental
//!    pipeline must be invisible: after each of K random module edits,
//!    the incremental re-prediction (`predict_patch` over a live
//!    session) must match a from-scratch `predict_session` of the merged
//!    source bit-for-bit — same token, same prediction, same per-terminal
//!    token sequences — and `elaborate_incremental` through a persistent
//!    [`ModuleElabCache`] must reproduce the flat `elaborate` netlist
//!    exactly (netlist equality is strictly stronger than label equality,
//!    since oracle 2 pins synthesis determinism on equal netlists).
//!
//! All oracles return `Err(description)` on disagreement so callers can
//! shrink the offending spec (see [`crate::shrink`]) and persist it to the
//! corpus (see [`crate::corpus`]).

use std::collections::{BTreeMap, HashMap};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sns_circuitformer::{CircuitformerConfig, TrainConfig};
use sns_core::aggmlp::MlpTrainConfig;
use sns_core::dataset::AugmentConfig;
use sns_core::{train_sns, DesignPrediction, SessionStore, SnsModel, SnsTrainConfig};
use sns_graphir::GraphIr;
use sns_netlist::{
    elaborate_incremental, parse_and_elaborate, parse_source, ModuleElabCache, Netlist, PortDir,
    Simulator,
};
use sns_rt::json::{parse as parse_json, Json};
use sns_rt::StdRng;
use sns_sampler::{PathSampler, SampleConfig};
use sns_serve::{ServeConfig, Server};
use sns_vsynth::{GateSim, SynthOptions, SynthReport, VirtualSynthesizer};

use crate::generator::{DesignSpec, GenConfig};

/// Which oracle a disagreement came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleKind {
    /// Netlist simulation vs gate-level evaluation.
    SimVsGates,
    /// Virtual-synthesizer label invariants.
    VsynthInvariants,
    /// Fast (parallel/sparse/memoized) vs reference synthesis identity.
    VsynthReference,
    /// Thread/batch/cache-capacity prediction identity.
    PredictorDeterminism,
    /// HTTP-vs-direct prediction identity.
    ServeIdentity,
    /// Incremental-vs-from-scratch identity under module edits.
    Incremental,
}

impl OracleKind {
    /// A stable snake_case name (used in benchmark breakdowns).
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::SimVsGates => "sim_vs_gates",
            OracleKind::VsynthInvariants => "vsynth_invariants",
            OracleKind::VsynthReference => "vsynth_reference",
            OracleKind::PredictorDeterminism => "predictor_determinism",
            OracleKind::ServeIdentity => "serve_identity",
            OracleKind::Incremental => "incremental",
        }
    }
}

/// A cross-layer disagreement found by an oracle.
#[derive(Debug, Clone)]
pub struct Disagreement {
    pub oracle: OracleKind,
    pub seed: u64,
    pub detail: String,
}

impl std::fmt::Display for Disagreement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] seed {}: {}", self.oracle.name(), self.seed, self.detail)
    }
}

/// Elaborates a spec (a generated spec must always elaborate; an error
/// here is itself a front-end bug worth a corpus case).
pub fn elaborate(spec: &DesignSpec) -> Result<Netlist, String> {
    parse_and_elaborate(&spec.verilog(), spec.top())
        .map_err(|e| format!("generated design failed to elaborate: {e}"))
}

/// The netlist's port interface: input `(name, width)` pairs and output
/// names, in declaration order. The stimulus and trace schemes below
/// depend only on this order, so a corpus replay from raw Verilog drives
/// the exact same trace as the generated spec did.
fn io_ports(nl: &Netlist) -> (Vec<(String, u32)>, Vec<String>) {
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    for p in nl.ports() {
        match p.dir {
            PortDir::Input => inputs.push((p.name.clone(), nl.net(p.net).width)),
            PortDir::Output => outputs.push(p.name.clone()),
        }
    }
    (inputs, outputs)
}

fn mask_to_width(raw: u128, w: u32) -> u128 {
    if w as usize >= 128 {
        raw
    } else {
        raw & ((1u128 << w) - 1)
    }
}

/// Oracle 1: drives `cycles` cycles of seeded random stimulus through the
/// netlist simulator and the expanded gate graph, comparing every output
/// both combinationally (after the inputs settle) and after each clock
/// edge.
pub fn check_sim_vs_gates(spec: &DesignSpec, stim_seed: u64, cycles: usize) -> Result<(), String> {
    diff_sim_netlist(&elaborate(spec)?, stim_seed, cycles)
}

/// The netlist-level half of oracle 1, shared with corpus replay.
pub fn diff_sim_netlist(nl: &Netlist, stim_seed: u64, cycles: usize) -> Result<(), String> {
    let (inputs, outputs) = io_ports(nl);
    let mut nsim = Simulator::new(nl).map_err(|e| format!("netlist sim rejected design: {e}"))?;
    let gl = VirtualSynthesizer::new(SynthOptions::default()).elaborate_gates(nl);
    let mut gsim = GateSim::new(&gl)?;
    let mut rng = StdRng::seed_from_u64(stim_seed);

    for cycle in 0..cycles {
        for (name, w) in &inputs {
            let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            let v = mask_to_width(raw, *w);
            nsim.set_input(name, v).map_err(|e| e.to_string())?;
            gsim.set_input(name, v)?;
        }
        // Compare the settled combinational view first, then the
        // post-edge view — registered outputs only move on the edge.
        nsim.eval().map_err(|e| e.to_string())?;
        gsim.eval();
        compare_outputs(&nsim, &gsim, &outputs, cycle, "eval")?;
        nsim.step().map_err(|e| e.to_string())?;
        gsim.step();
        compare_outputs(&nsim, &gsim, &outputs, cycle, "step")?;
    }
    Ok(())
}

fn compare_outputs(
    nsim: &Simulator,
    gsim: &GateSim,
    outputs: &[String],
    cycle: usize,
    phase: &str,
) -> Result<(), String> {
    for name in outputs {
        let nv = nsim.output(name).map_err(|e| e.to_string())?;
        let gv = gsim.output(name)?;
        if nv != gv {
            return Err(format!(
                "output {name} diverges at cycle {cycle} after {phase}: \
                 netlist sim says {nv:#x}, gate-level eval says {gv:#x}"
            ));
        }
    }
    Ok(())
}

/// A compact trace signature: FNV-1a over every output after every eval
/// and step phase. Corpus sidecars pin this hash so replays detect any
/// behavioral drift, not just sim-vs-gates divergence.
pub fn trace_hash(nl: &Netlist, stim_seed: u64, cycles: usize) -> Result<u64, String> {
    let (inputs, outputs) = io_ports(nl);
    let mut sim = Simulator::new(nl).map_err(|e| format!("netlist sim rejected design: {e}"))?;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let absorb = |h: &mut u64, v: u128| {
        for byte in v.to_le_bytes() {
            *h ^= byte as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let mut rng = StdRng::seed_from_u64(stim_seed);
    for _ in 0..cycles {
        for (name, w) in &inputs {
            let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            sim.set_input(name, mask_to_width(raw, *w)).map_err(|e| e.to_string())?;
        }
        sim.eval().map_err(|e| e.to_string())?;
        for name in &outputs {
            let v = sim.output(name).map_err(|e| e.to_string())?;
            absorb(&mut h, v);
        }
        sim.step().map_err(|e| e.to_string())?;
        for name in &outputs {
            let v = sim.output(name).map_err(|e| e.to_string())?;
            absorb(&mut h, v);
        }
    }
    Ok(h)
}

/// Synthesizes a spec with the default options (full sizing loop).
pub fn synthesize(spec: &DesignSpec) -> Result<SynthReport, String> {
    let nl = elaborate(spec)?;
    Ok(VirtualSynthesizer::new(SynthOptions::default()).synthesize(&nl))
}

/// Oracle 2: synthesis-label invariants.
///
/// * every label is finite and positive,
/// * synthesizing the same netlist twice is bit-identical (everything but
///   the wall-clock runtime),
/// * widening every signal never shrinks the gate count (the area analogue
///   is checked on dedicated families in the test suite, where the sizing
///   loop can be pinned off).
pub fn check_vsynth_invariants(spec: &DesignSpec) -> Result<(), String> {
    let nl = elaborate(spec)?;
    let vs = VirtualSynthesizer::new(SynthOptions::default());
    let a = vs.synthesize(&nl);
    // A design can legitimately synthesize to zero gates (pure wiring,
    // replication, bit-selects) and constant-driven logic legitimately
    // has zero dynamic power — so labels must be finite and non-negative,
    // with positivity required only where the gate graph implies it.
    for (name, v) in [
        ("area_um2", a.area_um2),
        ("timing_ps", a.timing_ps),
        ("power_mw", a.power_mw),
        ("dynamic_mw", a.dynamic_mw),
        ("leakage_mw", a.leakage_mw),
    ] {
        if !v.is_finite() || v < 0.0 {
            return Err(format!("synthesis label {name} is not finite-nonnegative: {v}"));
        }
    }
    if a.timing_ps <= 0.0 {
        return Err(format!("timing_ps must be positive (base delay): {}", a.timing_ps));
    }
    // The generator only emits well-formed designs: every read net is
    // driven and no combinational loop exists, so any broken "cycle" is a
    // front-end or elaboration bug.
    if a.cycles_broken != 0 {
        return Err(format!(
            "well-formed generated design reported {} broken combinational cycles",
            a.cycles_broken
        ));
    }
    if a.gate_count > 0 && (a.area_um2 <= 0.0 || a.leakage_mw <= 0.0 || a.transistor_count == 0) {
        return Err(format!(
            "{} gates but area={} leakage={} transistors={}",
            a.gate_count, a.area_um2, a.leakage_mw, a.transistor_count
        ));
    }
    let b = vs.synthesize(&nl);
    for (name, x, y) in [
        ("area_um2", a.area_um2, b.area_um2),
        ("timing_ps", a.timing_ps, b.timing_ps),
        ("power_mw", a.power_mw, b.power_mw),
        ("dynamic_mw", a.dynamic_mw, b.dynamic_mw),
        ("leakage_mw", a.leakage_mw, b.leakage_mw),
    ] {
        if x.to_bits() != y.to_bits() {
            return Err(format!("synthesis is nondeterministic in {name}: {x} vs {y}"));
        }
    }
    if a.gate_count != b.gate_count {
        return Err(format!(
            "synthesis is nondeterministic in gate_count: {} vs {}",
            a.gate_count, b.gate_count
        ));
    }

    let wide = spec.widened();
    let wnl = elaborate(&wide)?;
    let w = vs.synthesize(&wnl);
    if w.gate_count < a.gate_count {
        return Err(format!(
            "widening shrank the design: {} gates at base widths, {} gates widened",
            a.gate_count, w.gate_count
        ));
    }
    Ok(())
}

/// Oracle 2b: the fast synthesis flow (parallel elaboration, expansion
/// memoization, sparse STA) must be bit-identical to the retained
/// single-threaded dense reference flow — same gate graph node for node,
/// same labels bit for bit — at every thread count.
pub fn check_vsynth_matches_reference(spec: &DesignSpec) -> Result<(), String> {
    let nl = elaborate(spec)?;
    check_vsynth_matches_reference_netlist(&nl)
}

/// Netlist-level body of [`check_vsynth_matches_reference`], exposed so
/// the vsynth soak can replay blessed corpus `.v` cases (which have no
/// [`DesignSpec`]) through the same identity check.
pub fn check_vsynth_matches_reference_netlist(nl: &Netlist) -> Result<(), String> {
    let vs_ref = VirtualSynthesizer::new(SynthOptions::default());
    let gl_ref = vs_ref.elaborate_gates_reference(nl);
    let r_ref = vs_ref.analyze_reference(&gl_ref);

    // Force the parallel path even on small designs by sweeping explicit
    // thread counts; memoization stays on (the default).
    for threads in [1usize, 4] {
        let vs = VirtualSynthesizer::new(SynthOptions {
            threads: Some(threads),
            ..SynthOptions::default()
        });
        let gl = vs.elaborate_gates(nl);
        if gl.graph != gl_ref.graph {
            return Err(format!(
                "fast elaboration diverges from reference at {threads} threads: \
                 {} vs {} nodes, histograms {:?} vs {:?}",
                gl.graph.len(),
                gl_ref.graph.len(),
                gl.graph.kind_histogram(),
                gl_ref.graph.kind_histogram()
            ));
        }
        if gl.regions != gl_ref.regions {
            return Err(format!("region spans diverge from reference at {threads} threads"));
        }
        if gl.cycles_broken != gl_ref.cycles_broken {
            return Err(format!(
                "cycles_broken diverges from reference at {threads} threads: {} vs {}",
                gl.cycles_broken, gl_ref.cycles_broken
            ));
        }
        let r = vs.analyze(&gl);
        for (name, x, y) in [
            ("area_um2", r.area_um2, r_ref.area_um2),
            ("timing_ps", r.timing_ps, r_ref.timing_ps),
            ("power_mw", r.power_mw, r_ref.power_mw),
            ("dynamic_mw", r.dynamic_mw, r_ref.dynamic_mw),
            ("leakage_mw", r.leakage_mw, r_ref.leakage_mw),
        ] {
            if x.to_bits() != y.to_bits() {
                return Err(format!(
                    "fast label {name} diverges from reference at {threads} threads: {x} vs {y}"
                ));
            }
        }
        if (r.gate_count, r.transistor_count, r.cycles_broken)
            != (r_ref.gate_count, r_ref.transistor_count, r_ref.cycles_broken)
        {
            return Err(format!(
                "fast counts diverge from reference at {threads} threads: \
                 gates {} vs {}, transistors {} vs {}, cycles {} vs {}",
                r.gate_count,
                r_ref.gate_count,
                r.transistor_count,
                r_ref.transistor_count,
                r.cycles_broken,
                r_ref.cycles_broken
            ));
        }
    }
    Ok(())
}

// ----------------------------------------------------------- predictor --

/// The tiny-but-real training configuration the prediction oracles share.
/// Dimension 32 keeps training to a few seconds while still exercising
/// the full Circuitformer + aggregation pipeline.
pub fn tiny_train_config() -> SnsTrainConfig {
    let mut c = SnsTrainConfig::fast();
    c.circuitformer =
        CircuitformerConfig { dim: 32, ffn_dim: 64, max_len: 64, ..CircuitformerConfig::fast() };
    c.cf_train = TrainConfig { epochs: 2, batch_size: 32, threads: 1, ..TrainConfig::fast() };
    c.mlp_train = MlpTrainConfig { epochs: 20, ..MlpTrainConfig::fast() };
    c.augment = AugmentConfig::none();
    c.sample = SampleConfig::paper_default().with_max_paths(250);
    c
}

/// Oracle 3's stateful half: one trained model, checked against many
/// generated designs.
pub struct PredictorHarness {
    model: Arc<SnsModel>,
}

impl PredictorHarness {
    /// Trains a fresh tiny model (a few seconds of work — train once and
    /// share the harness across checks).
    pub fn train() -> Self {
        let designs =
            vec![sns_designs::vector::simd_alu(2, 8), sns_designs::nonlinear::piecewise(4, 8)];
        Self::from_model(Arc::new(train_sns(&designs, &tiny_train_config()).0))
    }

    /// Wraps an already-trained model.
    pub fn from_model(model: Arc<SnsModel>) -> Self {
        PredictorHarness { model }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Arc<SnsModel> {
        &self.model
    }

    /// Oracle 3: predictions for `spec` must be bit-identical across a
    /// sweep of thread-count × batch-size × cache-capacity settings,
    /// including a capacity small enough to force evictions mid-predict.
    ///
    /// Leaves the model's shared cache unbounded and empty on return, so a
    /// harness can be shared with other tests.
    pub fn check(&self, spec: &DesignSpec) -> Result<(), String> {
        let nl = elaborate(spec)?;
        let graph = GraphIr::from_netlist(&nl);
        let paths = PathSampler::new(self.model.sample_config().clone()).sample(&graph);
        let seqs = self.model.tokenize_paths(&graph, &paths);
        let result = self.sweep(&graph, &paths, &seqs);
        self.model.cache().set_capacity(None);
        self.model.clear_cache();
        result
    }

    /// Oracle 3's tolerance mode: the wrapped model's prediction for
    /// `spec` must land within `rel_tol` relative error of `reference`
    /// on every label, and the labels must stay finite and positive.
    /// Path provenance (count and critical path) must agree exactly —
    /// quantization perturbs label values, never the sampled paths.
    ///
    /// This is the acceptance contract for the int8 path: wrap the
    /// quantized model here and pass the f32 model's prediction of the
    /// same source as `reference`.
    pub fn check_labels_close(
        &self,
        spec: &DesignSpec,
        reference: &DesignPrediction,
        rel_tol: f64,
    ) -> Result<(), String> {
        let pred = self
            .model
            .predict_verilog(&spec.verilog(), spec.top())
            .map_err(|e| format!("prediction failed: {e}"))?;
        for (name, want, got) in [
            ("timing_ps", reference.timing_ps, pred.timing_ps),
            ("area_um2", reference.area_um2, pred.area_um2),
            ("power_mw", reference.power_mw, pred.power_mw),
        ] {
            if !got.is_finite() || got <= 0.0 {
                return Err(format!("label {name} is not finite-positive: {got}"));
            }
            let rel = (got - want).abs() / want.abs().max(1e-9);
            if rel > rel_tol {
                return Err(format!(
                    "label {name} drifts {rel:.4} relative from the reference \
                     (bound {rel_tol}): {got} vs {want}"
                ));
            }
        }
        if pred.path_count != reference.path_count || pred.critical_path != reference.critical_path
        {
            return Err(format!(
                "path provenance diverges from the reference: {}/{:?} vs {}/{:?}",
                pred.path_count, pred.critical_path, reference.path_count, reference.critical_path
            ));
        }
        Ok(())
    }

    fn sweep(
        &self,
        graph: &GraphIr,
        paths: &[sns_sampler::CircuitPath],
        seqs: &[Vec<usize>],
    ) -> Result<(), String> {
        // A capacity well below the sequence count forces evictions while
        // the prediction is being assembled.
        let tiny_cap = (seqs.len() / 4).max(2);
        let mut baseline: Option<DesignPrediction> = None;
        for &(threads, batch, cap) in
            &[(1usize, 1usize, None), (4, 4, None), (3, 2, Some(tiny_cap))]
        {
            self.model.clear_cache();
            self.model.cache().set_capacity(cap);
            self.model.prime_path_cache(seqs, threads, batch);
            let pred = self.model.predict_primed(graph, paths, seqs, None, Instant::now());
            match &baseline {
                None => baseline = Some(pred),
                Some(base) => {
                    for (name, x, y) in [
                        ("timing_ps", base.timing_ps, pred.timing_ps),
                        ("area_um2", base.area_um2, pred.area_um2),
                        ("power_mw", base.power_mw, pred.power_mw),
                    ] {
                        if x.to_bits() != y.to_bits() {
                            return Err(format!(
                                "prediction {name} differs at threads={threads} batch={batch} \
                                 cap={cap:?}: {x} vs {y}"
                            ));
                        }
                    }
                    if base.path_count != pred.path_count
                        || base.critical_path != pred.critical_path
                    {
                        return Err(format!(
                            "path provenance differs at threads={threads} batch={batch} cap={cap:?}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

// --------------------------------------------------------------- serve --

/// Oracle 4's stateful half: a live `sns-serve` daemon on an ephemeral
/// port, sharing its model with the in-process baseline.
pub struct ServeHarness {
    server: Option<Server>,
    addr: SocketAddr,
    model: Arc<SnsModel>,
}

impl ServeHarness {
    /// Boots a daemon around `model` on `127.0.0.1:0`.
    pub fn start(model: Arc<SnsModel>, cache_cap: Option<usize>) -> Result<Self, String> {
        let config = ServeConfig {
            addr: "127.0.0.1:0".into(),
            cache_cap,
            read_timeout: Duration::from_secs(5),
            ..ServeConfig::default()
        };
        let server = Server::start_shared(Arc::clone(&model), config)
            .map_err(|e| format!("failed to start sns-serve: {e}"))?;
        let addr = server.addr();
        Ok(ServeHarness { server: Some(server), addr, model })
    }

    /// The daemon's ephemeral address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Oracle 4: `POST /predict` must return exactly the numbers the
    /// in-process model computes for the same source. The daemon prints
    /// f64s with a shortest-round-trip formatter, so the comparison is
    /// `to_bits` equality after JSON round-trip, not a tolerance.
    pub fn check(&self, spec: &DesignSpec) -> Result<(), String> {
        let src = spec.verilog();
        let body = Json::obj(vec![
            ("verilog", Json::Str(src.clone())),
            ("top", Json::Str(spec.top().to_string())),
        ])
        .print();
        let (status, json) = self.post("/predict", &body)?;
        if status != 200 {
            return Err(format!("POST /predict returned HTTP {status}: {}", json.print()));
        }
        let direct = self
            .model
            .predict_verilog(&src, spec.top())
            .map_err(|e| format!("direct prediction failed: {e}"))?;
        for (name, local) in [
            ("timing_ps", direct.timing_ps),
            ("area_um2", direct.area_um2),
            ("power_mw", direct.power_mw),
        ] {
            let remote = json
                .get(name)
                .and_then(|v| v.as_f64())
                .map_err(|e| format!("bad /predict response field {name}: {e}"))?;
            if remote.to_bits() != local.to_bits() {
                return Err(format!(
                    "HTTP {name} diverges from direct prediction: {remote} vs {local}"
                ));
            }
        }
        let remote_paths = json
            .get("path_count")
            .and_then(|v| v.as_usize())
            .map_err(|e| format!("bad /predict response field path_count: {e}"))?;
        if remote_paths != direct.path_count {
            return Err(format!(
                "HTTP path_count diverges: {remote_paths} vs {}",
                direct.path_count
            ));
        }
        Ok(())
    }

    /// Fetches `GET /metrics` as JSON.
    pub fn metrics(&self) -> Result<Json, String> {
        let (status, json) = self.get("/metrics")?;
        if status != 200 {
            return Err(format!("GET /metrics returned HTTP {status}"));
        }
        Ok(json)
    }

    fn post(&self, path: &str, body: &str) -> Result<(u16, Json), String> {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nhost: c\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        );
        self.http(raw.as_bytes())
    }

    fn get(&self, path: &str) -> Result<(u16, Json), String> {
        let raw = format!("GET {path} HTTP/1.1\r\nhost: c\r\nconnection: close\r\n\r\n");
        self.http(raw.as_bytes())
    }

    fn http(&self, raw: &[u8]) -> Result<(u16, Json), String> {
        let mut stream = TcpStream::connect(self.addr).map_err(|e| format!("connect: {e}"))?;
        stream.write_all(raw).map_err(|e| format!("send: {e}"))?;
        let mut response = Vec::new();
        stream.read_to_end(&mut response).map_err(|e| format!("read: {e}"))?;
        let text = String::from_utf8(response).map_err(|e| format!("non-UTF-8 response: {e}"))?;
        let (head, body) =
            text.split_once("\r\n\r\n").ok_or("response has no header/body separator")?;
        let status: u16 = head
            .lines()
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .ok_or("malformed status line")?;
        let json = parse_json(body).map_err(|e| format!("response body is not JSON: {e}"))?;
        Ok((status, json))
    }

    /// Shuts the daemon down and joins its threads.
    pub fn shutdown(mut self) {
        if let Some(server) = self.server.take() {
            server.request_shutdown();
            server.join();
        }
    }
}

impl Drop for ServeHarness {
    fn drop(&mut self) {
        if let Some(server) = self.server.take() {
            server.request_shutdown();
            server.join();
        }
    }
}

// --------------------------------------------------------- incremental --

/// Counters accumulated by [`IncrementalHarness::check`], used by the ECO
/// soak to report how much work the incremental pipeline actually skipped.
#[derive(Debug, Clone, Copy, Default)]
pub struct IncrementalStats {
    /// Module edits applied (and verified) after the base prediction.
    pub edits: usize,
    /// Modules re-elaborated across all edits (from `reelaborated`).
    pub reelaborated_modules: usize,
    /// Distinct modules in the design, summed across all edits — the
    /// denominator of the re-elaboration fraction.
    pub design_modules: usize,
    /// Terminals whose cached path sample was reused, summed over edits.
    pub reused_terminals: usize,
    /// Terminals re-sampled, summed over edits.
    pub resampled_terminals: usize,
}

/// Oracle 5's stateful half: one trained model plus the bookkeeping to
/// replay a session's edit history from scratch.
pub struct IncrementalHarness {
    model: Arc<SnsModel>,
}

/// Splits concatenated generator-style Verilog into `(name, text)` module
/// blocks. Total on any generator/`edit` output (each module is a
/// `module <name> ... endmodule` block with no nested `endmodule`).
fn split_modules(src: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut pos = 0;
    while let Some(off) = src[pos..].find("module ") {
        let start = pos + off;
        let end_off = src[start..]
            .find("endmodule")
            .ok_or_else(|| "unterminated module block".to_string())?;
        let end = start + end_off + "endmodule".len();
        let name = src[start + "module ".len()..]
            .split_whitespace()
            .next()
            .ok_or_else(|| "module keyword with no name".to_string())?
            .to_string();
        out.push((name, format!("{}\n", &src[start..end])));
        pos = end;
    }
    if out.is_empty() {
        return Err("no module blocks in source".to_string());
    }
    Ok(out)
}

/// A semantically distinct `cfm_leaf` body for hierarchy-edit steps:
/// patching the shared leaf must transitively invalidate `cfm_mid`,
/// `cfm_deep`, and `top` without touching their sources.
fn leaf_variant(v: u64) -> String {
    format!(
        "module cfm_leaf #(parameter W = 4) (input [W-1:0] a, input [W-1:0] b, output [W-1:0] y);\n    \
         assign y = ((a | b) ^ (a + b)) + 6'd{};\nendmodule\n",
        v % 37 + 1
    )
}

impl IncrementalHarness {
    /// Wraps an already-trained model (share one with the other oracles).
    pub fn from_model(model: Arc<SnsModel>) -> Self {
        IncrementalHarness { model }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Arc<SnsModel> {
        &self.model
    }

    /// Oracle 5: registers `spec` as a session, applies `k_edits` random
    /// module edits through [`SnsModel::predict_patch`], and after every
    /// step demands bit-identity with a from-scratch run of the merged
    /// source: equal tokens, equal predictions, equal per-terminal path
    /// samples (names *and* token sequences), and an incremental netlist
    /// equal to the flat reference netlist.
    ///
    /// Edits alternate between regenerating one item of the `top` module
    /// (via [`crate::generator::edit`]) and, when the design instantiates
    /// the deep helper hierarchy, patching the shared `cfm_leaf` alone —
    /// the latter exercises transitive invalidation across three levels.
    pub fn check(
        &self,
        spec: &DesignSpec,
        edit_seed: u64,
        k_edits: usize,
    ) -> Result<IncrementalStats, String> {
        let cfg = GenConfig::default();
        let store = SessionStore::default();
        // Persistent across steps so stale units must be invalidated, not
        // merely absent.
        let nl_cache = ModuleElabCache::unbounded();
        let mut modules: BTreeMap<String, String> =
            split_modules(&spec.verilog())?.into_iter().collect();
        let merged: String = modules.values().cloned().collect();
        let base = self
            .model
            .predict_session(&store, &merged, spec.top())
            .map_err(|e| format!("base predict_session failed: {e}"))?;
        self.check_netlists(&merged, spec.top(), &nl_cache)?;

        let mut stats = IncrementalStats::default();
        let mut cur_spec = spec.clone();
        let mut token = base.token;
        for step in 0..k_edits {
            let step_seed = edit_seed.wrapping_add(step as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            // Every third step patches the shared leaf when the hierarchy
            // is in play; otherwise regenerate one item of `top`.
            let patch = if step % 3 == 2 && modules.contains_key("cfm_leaf") {
                leaf_variant(step_seed)
            } else {
                cur_spec = crate::generator::edit(&cur_spec, step_seed, &cfg);
                cur_spec.verilog()
            };
            for (name, text) in split_modules(&patch)? {
                modules.insert(name, text);
            }
            let outcome = self
                .model
                .predict_patch(&store, &token, &patch)
                .map_err(|e| format!("edit {step}: predict_patch failed: {e}"))?;

            // From-scratch reference: the merged source on a fresh store.
            let merged: String = modules.values().cloned().collect();
            let fresh = SessionStore::default();
            let scratch = self
                .model
                .predict_session(&fresh, &merged, spec.top())
                .map_err(|e| format!("edit {step}: from-scratch predict failed: {e}"))?;

            if outcome.token != scratch.token {
                return Err(format!(
                    "edit {step}: token diverges: patched {} vs from-scratch {}",
                    outcome.token, scratch.token
                ));
            }
            let (p, s) = (&outcome.prediction, &scratch.prediction);
            for (name, x, y) in [
                ("timing_ps", p.timing_ps, s.timing_ps),
                ("area_um2", p.area_um2, s.area_um2),
                ("power_mw", p.power_mw, s.power_mw),
            ] {
                if x.to_bits() != y.to_bits() {
                    return Err(format!(
                        "edit {step}: prediction {name} diverges: incremental {x} vs scratch {y}"
                    ));
                }
            }
            if p.path_count != s.path_count || p.critical_path != s.critical_path {
                return Err(format!(
                    "edit {step}: path provenance diverges: {}/{:?} vs {}/{:?}",
                    p.path_count, p.critical_path, s.path_count, s.critical_path
                ));
            }
            let a = store
                .get(&outcome.token)
                .ok_or_else(|| format!("edit {step}: patched session not registered"))?;
            let b = fresh
                .get(&scratch.token)
                .ok_or_else(|| format!("edit {step}: scratch session not registered"))?;
            if a.samples() != b.samples() {
                return Err(format!(
                    "edit {step}: per-terminal samples diverge (incremental reuse \
                     returned different names or token sequences)"
                ));
            }
            let report = self.check_netlists(&merged, spec.top(), &nl_cache)?;
            let mut distinct: std::collections::HashSet<&str> =
                report.records.iter().map(|r| r.module.as_str()).collect();
            distinct.insert(spec.top());
            stats.edits += 1;
            stats.reelaborated_modules += outcome.reelaborated.len();
            stats.design_modules += distinct.len();
            stats.reused_terminals += outcome.reused_terminals;
            stats.resampled_terminals += outcome.resampled_terminals;
            token = outcome.token;
        }
        Ok(stats)
    }

    /// Flat-vs-incremental netlist equality on one merged source.
    fn check_netlists(
        &self,
        merged: &str,
        top: &str,
        cache: &ModuleElabCache,
    ) -> Result<sns_netlist::ElabReport, String> {
        let design =
            parse_source(merged).map_err(|e| format!("merged source failed to parse: {e}"))?;
        let flat = sns_netlist::elaborate(&design, top)
            .map_err(|e| format!("flat elaboration failed: {e}"))?;
        let (inc, report) = elaborate_incremental(&design, top, cache)
            .map_err(|e| format!("incremental elaboration failed: {e}"))?;
        if flat != inc {
            return Err(
                "incremental netlist differs from the flat reference netlist".to_string()
            );
        }
        Ok(report)
    }
}

/// Per-register activity map for power-gating spot checks: every register
/// at the given coefficient.
pub fn uniform_activity(nl: &Netlist, coeff: f32) -> HashMap<String, f32> {
    let graph = GraphIr::from_netlist(nl);
    let mut map = HashMap::new();
    for info in graph.vertices() {
        if info.vertex.vtype == sns_graphir::VocabType::Dff {
            map.insert(info.name.clone(), coeff);
        }
    }
    map
}
