//! Long-running conformance soak: many random designs through the full
//! oracle stack, with a throughput report.
//!
//! ```text
//! SNS_SOAK_N=2000 SNS_SOAK_SEED=1 cargo run --release -p sns-conformance --bin conformance_soak
//! ```
//!
//! Oracles 1 (sim ≡ gates) and 2 (synthesis invariants) run on every
//! design; the model-level oracles 3 (thread/batch/cache determinism) and
//! 4 (HTTP ≡ direct) run on an interleaved subset, since each check costs
//! several full predictions. Failures are shrunk, persisted under
//! `tests/corpus/pending/`, and fail the run with a non-zero exit.
//!
//! Writes `BENCH_conformance.json` at the repo root: designs/second plus
//! a per-oracle breakdown.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use sns_conformance::generator::{generate, GenConfig};
use sns_conformance::oracle::{
    check_sim_vs_gates, check_vsynth_invariants, check_vsynth_matches_reference, OracleKind,
    PredictorHarness, ServeHarness,
};
use sns_conformance::{corpus, shrink};
use sns_rt::json::Json;

const STIM_SEED_SALT: u64 = 0x5EED_5717;
const SIM_CYCLES: usize = 6;
/// Every how-many designs the model-level oracles run.
const MODEL_STRIDE: usize = 20;
/// Every how-many designs the fast-vs-reference synthesis identity oracle
/// runs (the reference flow re-propagates the full graph every sizing
/// iteration, so it dominates when run on every design).
const VSYNTH_REF_STRIDE: usize = 10;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct OracleStat {
    kind: OracleKind,
    checked: usize,
    failed: usize,
    seconds: f64,
}

impl OracleStat {
    fn new(kind: OracleKind) -> Self {
        OracleStat { kind, checked: 0, failed: 0, seconds: 0.0 }
    }

    fn run(
        &mut self,
        seed: u64,
        spec: &sns_conformance::DesignSpec,
        check: &mut dyn FnMut(&sns_conformance::DesignSpec) -> Result<(), String>,
    ) {
        let t = Instant::now();
        let result = check(spec);
        self.seconds += t.elapsed().as_secs_f64();
        self.checked += 1;
        if let Err(detail) = result {
            self.failed += 1;
            eprintln!("FAIL [{}] seed {seed}: {detail}", self.kind.name());
            // Shrink against the same oracle and persist the minimized
            // reproducer for promotion into the corpus.
            let min = shrink(spec, &mut |s| check(s).is_err(), 400);
            match corpus::write_pending(&min, &format!("{}_{seed}", self.kind.name())) {
                Ok(path) => eprintln!("  minimized reproducer: {}", path.display()),
                Err(e) => eprintln!("  could not persist reproducer: {e}"),
            }
        }
    }

    fn json(&self) -> (&'static str, Json) {
        (
            self.kind.name(),
            Json::obj(vec![
                ("checked", Json::Num(self.checked as f64)),
                ("failed", Json::Num(self.failed as f64)),
                ("seconds", Json::Num(self.seconds)),
            ]),
        )
    }
}

fn main() {
    let n = env_u64("SNS_SOAK_N", 2000) as usize;
    let seed0 = env_u64("SNS_SOAK_SEED", 1);
    let cfg = GenConfig::default();

    eprintln!("conformance soak: {n} designs, seeds {seed0}..{}", seed0 + n as u64);
    let mut sim = OracleStat::new(OracleKind::SimVsGates);
    let mut vsynth = OracleStat::new(OracleKind::VsynthInvariants);
    let mut vsynth_ref = OracleStat::new(OracleKind::VsynthReference);
    let mut predictor = OracleStat::new(OracleKind::PredictorDeterminism);
    let mut serve = OracleStat::new(OracleKind::ServeIdentity);

    let t_train = Instant::now();
    let harness = PredictorHarness::train();
    let serve_harness = match ServeHarness::start(Arc::clone(harness.model()), None) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot start sns-serve: {e}");
            std::process::exit(1);
        }
    };
    let train_seconds = t_train.elapsed().as_secs_f64();
    eprintln!("model trained + daemon up in {train_seconds:.1}s");

    let t0 = Instant::now();
    for i in 0..n {
        let seed = seed0 + i as u64;
        let spec = generate(seed, &cfg);
        let stim_seed = seed ^ STIM_SEED_SALT;
        sim.run(seed, &spec, &mut |s| check_sim_vs_gates(s, stim_seed, SIM_CYCLES));
        vsynth.run(seed, &spec, &mut check_vsynth_invariants);
        if i % VSYNTH_REF_STRIDE == 0 {
            vsynth_ref.run(seed, &spec, &mut check_vsynth_matches_reference);
        }
        if i % MODEL_STRIDE == 0 {
            predictor.run(seed, &spec, &mut |s| harness.check(s));
            serve.run(seed, &spec, &mut |s| serve_harness.check(s));
        }
        if (i + 1) % 200 == 0 {
            eprintln!(
                "  {}/{n} designs, {:.1} designs/s",
                i + 1,
                (i + 1) as f64 / t0.elapsed().as_secs_f64()
            );
        }
    }
    let seconds = t0.elapsed().as_secs_f64();
    serve_harness.shutdown();

    let failures =
        sim.failed + vsynth.failed + vsynth_ref.failed + predictor.failed + serve.failed;
    let report = Json::obj(vec![
        ("bench", Json::Str("conformance_soak".into())),
        ("designs", Json::Num(n as f64)),
        ("seed0", Json::Num(seed0 as f64)),
        ("seconds", Json::Num(seconds)),
        ("designs_per_sec", Json::Num(n as f64 / seconds.max(1e-9))),
        ("train_seconds", Json::Num(train_seconds)),
        ("failures", Json::Num(failures as f64)),
        (
            "oracles",
            Json::obj(vec![
                sim.json(),
                vsynth.json(),
                vsynth_ref.json(),
                predictor.json(),
                serve.json(),
            ]),
        ),
    ]);
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_conformance.json");
    match std::fs::write(&out, report.pretty() + "\n") {
        Ok(()) => eprintln!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
    println!("{}", report.print());
    if failures > 0 {
        eprintln!("{failures} oracle failure(s)");
        std::process::exit(1);
    }
}
