//! ECO soak: the incremental oracle at scale, plus a catalog speedup
//! measurement.
//!
//! ```text
//! SNS_ECO_N=500 SNS_ECO_EDITS=4 cargo run --release -p sns-conformance --bin eco_soak
//! ```
//!
//! Part 1 runs oracle 5 over `SNS_ECO_N` seeded designs with
//! `SNS_ECO_EDITS` random module edits each: every step's incremental
//! re-prediction (`predict_patch` over a live session) must be
//! bit-identical to a from-scratch run of the merged source — tokens,
//! predictions, per-terminal path samples — and the incremental netlist
//! must equal the flat reference. Failures are shrunk, persisted under
//! `tests/corpus/pending/`, and fail the run.
//!
//! Part 2 measures the point of the whole exercise on a real catalog
//! design: a single-module edit to the `systolic_8x8_16` top (64 shared
//! `pe16` instances stay untouched) re-predicted through a warm session
//! versus from scratch on a cold model. The timing model uses the
//! paper's Table 2 Circuitformer architecture (dim 128, FFN 2304) so
//! that per-path inference — the cost the warm path's caches avoid —
//! carries its production weight; the bit-identity soak of part 1 keeps
//! the tiny fast model. The run fails unless the warm path is at least
//! 5x faster.
//!
//! Writes `BENCH_incremental.json` at the repo root.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use sns_circuitformer::{CircuitformerConfig, TrainConfig};
use sns_conformance::generator::{generate, GenConfig};
use sns_conformance::oracle::{IncrementalHarness, IncrementalStats, PredictorHarness};
use sns_conformance::{corpus, shrink};
use sns_core::aggmlp::MlpTrainConfig;
use sns_core::dataset::AugmentConfig;
use sns_core::{train_sns, SessionStore, SnsModel, SnsTrainConfig};
use sns_rt::json::Json;
use sns_sampler::SampleConfig;

const EDIT_SEED_SALT: u64 = 0xEC0_5EED;
/// The acceptance floor for the catalog warm-vs-cold speedup.
const MIN_SPEEDUP: f64 = 5.0;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// A model with the paper's Table 2 Circuitformer architecture (dim
/// 128, FFN 2304, ≈1.4 M parameters) on a minimal training schedule:
/// the warm-vs-cold measurement times the *pipeline*, not accuracy, but
/// per-path inference must cost what it costs in production — the tiny
/// dim-32 soak model makes inference nearly free and so hides exactly
/// the work the session caches save.
fn timing_model() -> Arc<SnsModel> {
    let mut c = SnsTrainConfig::fast();
    c.circuitformer = CircuitformerConfig::paper();
    c.cf_train = TrainConfig { epochs: 1, batch_size: 32, threads: 1, ..TrainConfig::fast() };
    c.mlp_train = MlpTrainConfig { epochs: 20, ..MlpTrainConfig::fast() };
    c.augment = AugmentConfig::none();
    c.sample = SampleConfig::paper_default();
    let train = vec![sns_designs::vector::simd_alu(2, 8), sns_designs::nonlinear::piecewise(4, 8)];
    Arc::new(train_sns(&train, &c).0)
}

/// Warm-vs-cold ECO timing on the catalog hierarchical Ariane-like
/// core: patch only the branch unit (tighten the taken-branch compare),
/// leaving the frontend, ALU cluster, mul/div and commit units — the
/// bulk of the design's cells and path inference — untouched. Because
/// every unit latches its own operands, the edit's sampling region is
/// confined to the branch module, so the warm pass re-predicts a
/// handful of short paths while the cold pass pays for the whole core.
fn catalog_eco(model: &Arc<SnsModel>) -> Result<(String, f64, f64), String> {
    let design = sns_designs::catalog()
        .into_iter()
        .find(|d| d.name == "ariane_64")
        .ok_or("catalog design ariane_64 not found")?;
    let marker = "    wire take = (br_op == 7'd11) && (br_a >= br_b);";
    if !design.verilog.contains(marker) {
        return Err("ariane branch unit no longer has the expected compare line".into());
    }
    let edited = design
        .verilog
        .replace(marker, "    wire take = (br_op == 7'd11) && (br_a > br_b);");

    // Min over independent trials: single-shot millisecond timings are
    // dominated by scheduler noise on a small box. Every trial starts
    // from a fresh model clone with an empty path cache, so each warm
    // number is a true first-patch against a just-registered base and
    // each cold number a true from-scratch run.
    const TRIALS: usize = 5;
    let (mut warm_seconds, mut cold_seconds) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..TRIALS {
        let warm_model = (**model).clone();
        warm_model.clear_cache();
        let store = SessionStore::default();
        let base = warm_model
            .predict_session(&store, &design.verilog, &design.top)
            .map_err(|e| format!("base catalog prediction failed: {e}"))?;

        let t_warm = Instant::now();
        let warm = warm_model
            .predict_patch(&store, &base.token, &edited)
            .map_err(|e| format!("catalog predict_patch failed: {e}"))?;
        warm_seconds = warm_seconds.min(t_warm.elapsed().as_secs_f64());
        // A branch-unit edit invalidates that unit plus (transitively)
        // the top that instantiates it — and nothing else.
        if warm.reelaborated != vec!["ar_branch64".to_string(), design.top.clone()] {
            return Err(format!(
                "a branch-unit edit should re-elaborate only the branch unit and the top, \
                 got {:?}",
                warm.reelaborated
            ));
        }

        let cold_model = (**model).clone();
        cold_model.clear_cache();
        let t_cold = Instant::now();
        let cold = cold_model
            .predict_session(&SessionStore::default(), &edited, &design.top)
            .map_err(|e| format!("cold catalog prediction failed: {e}"))?;
        cold_seconds = cold_seconds.min(t_cold.elapsed().as_secs_f64());

        if warm.token != cold.token {
            return Err(format!("warm/cold tokens diverge: {} vs {}", warm.token, cold.token));
        }
        let (w, c) = (&warm.prediction, &cold.prediction);
        if w.timing_ps.to_bits() != c.timing_ps.to_bits()
            || w.area_um2.to_bits() != c.area_um2.to_bits()
            || w.power_mw.to_bits() != c.power_mw.to_bits()
            || w.path_count != c.path_count
            || w.critical_path != c.critical_path
        {
            return Err("warm/cold catalog predictions diverge".into());
        }
    }
    Ok((design.name, warm_seconds, cold_seconds))
}

fn main() {
    let n = env_u64("SNS_ECO_N", 500) as usize;
    let k = env_u64("SNS_ECO_EDITS", 4) as usize;
    let seed0 = env_u64("SNS_ECO_SEED", 1);
    let cfg = GenConfig::default();

    eprintln!("eco soak: {n} designs x {k} edits, seeds {seed0}..{}", seed0 + n as u64);
    let t_train = Instant::now();
    let harness = PredictorHarness::train();
    let inc = IncrementalHarness::from_model(Arc::clone(harness.model()));
    let train_seconds = t_train.elapsed().as_secs_f64();
    eprintln!("model trained in {train_seconds:.1}s");

    let mut totals = IncrementalStats::default();
    let mut failures = 0usize;
    let t0 = Instant::now();
    for i in 0..n {
        let seed = seed0 + i as u64;
        let spec = generate(seed, &cfg);
        let edit_seed = seed ^ EDIT_SEED_SALT;
        match inc.check(&spec, edit_seed, k) {
            Ok(stats) => {
                totals.edits += stats.edits;
                totals.reelaborated_modules += stats.reelaborated_modules;
                totals.design_modules += stats.design_modules;
                totals.reused_terminals += stats.reused_terminals;
                totals.resampled_terminals += stats.resampled_terminals;
            }
            Err(detail) => {
                failures += 1;
                eprintln!("FAIL [incremental] seed {seed}: {detail}");
                let min = shrink(&spec, &mut |s| inc.check(s, edit_seed, k).is_err(), 200);
                match corpus::write_pending(&min, &format!("incremental_{seed}")) {
                    Ok(path) => eprintln!("  minimized reproducer: {}", path.display()),
                    Err(e) => eprintln!("  could not persist reproducer: {e}"),
                }
            }
        }
        if (i + 1) % 100 == 0 {
            eprintln!(
                "  {}/{n} designs, {:.1} edits/s",
                i + 1,
                totals.edits as f64 / t0.elapsed().as_secs_f64()
            );
        }
    }
    let seconds = t0.elapsed().as_secs_f64();

    eprintln!("training the paper-architecture timing model...");
    let t_timing = Instant::now();
    let eco_model = timing_model();
    let timing_model_train_seconds = t_timing.elapsed().as_secs_f64();
    eprintln!("timing model trained in {timing_model_train_seconds:.1}s");

    let (eco_design, warm_seconds, cold_seconds) = match catalog_eco(&eco_model) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL [catalog_eco]: {e}");
            failures += 1;
            ("systolic_8x8_16".into(), f64::NAN, f64::NAN)
        }
    };
    let speedup = cold_seconds / warm_seconds.max(1e-12);
    eprintln!(
        "catalog ECO on {eco_design}: warm {warm_seconds:.4}s, cold {cold_seconds:.4}s \
         ({speedup:.1}x)"
    );

    let reelab_fraction =
        totals.reelaborated_modules as f64 / (totals.design_modules as f64).max(1.0);
    let report = Json::obj(vec![
        ("bench", Json::Str("eco_soak".into())),
        ("designs", Json::Num(n as f64)),
        ("edits_per_design", Json::Num(k as f64)),
        ("seed0", Json::Num(seed0 as f64)),
        ("seconds", Json::Num(seconds)),
        ("edits_per_sec", Json::Num(totals.edits as f64 / seconds.max(1e-9))),
        ("train_seconds", Json::Num(train_seconds)),
        ("failures", Json::Num(failures as f64)),
        ("reelab_fraction", Json::Num(reelab_fraction)),
        ("reused_terminals", Json::Num(totals.reused_terminals as f64)),
        ("resampled_terminals", Json::Num(totals.resampled_terminals as f64)),
        (
            "catalog_eco",
            Json::obj(vec![
                ("design", Json::Str(eco_design)),
                ("timing_model_train_seconds", Json::Num(timing_model_train_seconds)),
                ("warm_seconds", Json::Num(warm_seconds)),
                ("cold_seconds", Json::Num(cold_seconds)),
                ("speedup", Json::Num(speedup)),
                ("min_speedup", Json::Num(MIN_SPEEDUP)),
            ]),
        ),
    ]);
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_incremental.json");
    match std::fs::write(&out, report.pretty() + "\n") {
        Ok(()) => eprintln!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
    println!("{}", report.print());
    if failures > 0 {
        eprintln!("{failures} incremental failure(s)");
        std::process::exit(1);
    }
    if speedup < MIN_SPEEDUP || speedup.is_nan() {
        eprintln!("catalog ECO speedup {speedup:.2}x below the {MIN_SPEEDUP}x floor");
        std::process::exit(1);
    }
}
