//! Vsynth identity soak: every blessed corpus case plus thousands of
//! random designs through the fast-vs-reference bit-identity oracle.
//!
//! ```text
//! SNS_VSYNTH_SOAK_N=2000 SNS_VSYNTH_SOAK_SEED=1 \
//!     cargo run --release -p sns-conformance --bin vsynth_soak
//! ```
//!
//! Unlike `conformance_soak` (which runs this oracle on a stride to keep
//! the full stack affordable), the vsynth soak runs it on **every**
//! design: the fast flow — parallel elaboration, expansion memoization,
//! sparse STA — must produce the same gate graph node for node and the
//! same labels bit for bit as the single-threaded dense reference, at
//! 1 and 4 threads. Failing generated designs are shrunk and persisted
//! under `tests/corpus/pending/`; any failure exits non-zero.

use std::time::Instant;

use sns_conformance::generator::{generate, GenConfig};
use sns_conformance::oracle::{
    check_vsynth_matches_reference, check_vsynth_matches_reference_netlist,
};
use sns_conformance::{corpus, shrink};
use sns_netlist::parse_and_elaborate;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let n = env_u64("SNS_VSYNTH_SOAK_N", 2000) as usize;
    let seed0 = env_u64("SNS_VSYNTH_SOAK_SEED", 1);
    let mut failures = 0usize;

    // Blessed corpus first: regressions promoted from past soak failures.
    let cases = match corpus::load_corpus(&corpus::corpus_dir()) {
        Ok(cases) => cases,
        Err(e) => {
            eprintln!("cannot load blessed corpus: {e}");
            std::process::exit(1);
        }
    };
    for case in &cases {
        let result = parse_and_elaborate(&case.verilog, &case.top)
            .map_err(|e| format!("corpus case no longer elaborates: {e}"))
            .and_then(|nl| check_vsynth_matches_reference_netlist(&nl));
        if let Err(detail) = result {
            failures += 1;
            eprintln!("FAIL [vsynth_reference] corpus case {}: {detail}", case.name);
        }
    }
    eprintln!("corpus replay: {} cases, {failures} failure(s)", cases.len());

    let t0 = Instant::now();
    let cfg = GenConfig::default();
    for i in 0..n {
        let seed = seed0 + i as u64;
        let spec = generate(seed, &cfg);
        if let Err(detail) = check_vsynth_matches_reference(&spec) {
            failures += 1;
            eprintln!("FAIL [vsynth_reference] seed {seed}: {detail}");
            let min = shrink(&spec, &mut |s| check_vsynth_matches_reference(s).is_err(), 400);
            match corpus::write_pending(&min, &format!("vsynth_reference_{seed}")) {
                Ok(path) => eprintln!("  minimized reproducer: {}", path.display()),
                Err(e) => eprintln!("  could not persist reproducer: {e}"),
            }
        }
        if (i + 1) % 500 == 0 {
            eprintln!(
                "  {}/{n} designs, {:.1} designs/s",
                i + 1,
                (i + 1) as f64 / t0.elapsed().as_secs_f64()
            );
        }
    }
    let seconds = t0.elapsed().as_secs_f64();
    println!(
        "vsynth soak: {} corpus cases + {n} generated designs in {seconds:.1}s \
         ({:.1} designs/s), {failures} failure(s)",
        cases.len(),
        n as f64 / seconds.max(1e-9)
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
