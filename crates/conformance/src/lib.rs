//! # sns-conformance
//!
//! A differential conformance harness for the whole SNS workspace:
//! seeded random-RTL generation, cross-layer oracles, a shrinker, and a
//! replayed-forever regression corpus.
//!
//! The SNS reproduction has four layers that must agree about what a
//! Verilog design *means*: the elaborator + coarse-cell simulator
//! (`sns-netlist`), the gate-level expansion that prices the labels
//! (`sns-vsynth`), the trained predictor (`sns-core`), and the HTTP
//! daemon (`sns-serve`). Each layer has its own tests; this crate tests
//! the *seams* between them:
//!
//! * [`generator`] — a seeded generator of well-formed, always-
//!   elaboratable Verilog spanning the Table-1 cell vocabulary (nested
//!   always blocks, memories, replication, parameterized instances).
//!   Same seed → same design, on any machine and any thread count.
//! * [`oracle`] — the five differential oracles: netlist-sim ≡ gate-level
//!   eval under random stimulus; synthesis-label invariants (finite,
//!   deterministic, monotone under widening); bit-identical predictions
//!   across thread/batch/cache-capacity sweeps; HTTP ≡ direct prediction
//!   through a live `sns-serve`; incremental ≡ from-scratch prediction
//!   under K random module edits (the ECO session pipeline).
//! * [`shrink`] — minimizes a failing design to a few lines while
//!   preserving the failure.
//! * [`corpus`] — checked-in minimized cases with blessed behavioral
//!   sidecars, replayed by the test suite forever (`SNS_BLESS=1`
//!   re-pins them after intentional changes).
//!
//! The `conformance_soak` binary runs the full oracle stack over many
//! seeds and writes a `BENCH_conformance.json` throughput report; the
//! test suite runs a smaller fixed-seed smoke (see `tests/conformance.rs`
//! at the crate root).

pub mod corpus;
pub mod generator;
pub mod oracle;
pub mod shrink;

pub use corpus::{bless, load_corpus, replay, CorpusCase};
pub use generator::{edit, generate, DesignSpec, GenConfig};
pub use oracle::{
    check_sim_vs_gates, check_vsynth_invariants, Disagreement, IncrementalHarness,
    IncrementalStats, OracleKind, PredictorHarness, ServeHarness,
};
pub use shrink::shrink;
