//! Seeded random generation of well-formed Verilog designs.
//!
//! The generator builds a [`DesignSpec`] — an SSA-style list of typed
//! items, each defining one signal of known width — and prints it as
//! Verilog. Construction rules make every spec elaboratable by design:
//!
//! * combinational items (wires, `@(*)` case blocks, memory read ports,
//!   submodule instances) reference only *earlier* signals, so no
//!   combinational cycle can form;
//! * clocked items (registers, memory write ports) may reference any
//!   existing signal including themselves — feedback through a flip-flop
//!   is legal and exercised deliberately;
//! * bit/part selects carry constant, in-range bounds;
//! * every width is bounded so all nets stay within the 128-bit limit the
//!   two simulators share.
//!
//! Together the items span the coarse-cell vocabulary of the paper's
//! Table 1: the full binary/unary operator set (including division,
//! shifts, comparisons), muxes, concatenation, replication, reductions,
//! registers with nested `if`/`case` control, memories with synchronous
//! write and asynchronous read, and parameterized submodule instances.
//!
//! `generate(seed, cfg)` is a pure function of its arguments — the same
//! seed yields byte-identical Verilog on any platform and any thread
//! count, which the conformance tests assert.

use sns_rt::rng::StdRng;

/// Bounds for random design generation.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Minimum number of items (signals) per design.
    pub min_items: usize,
    /// Maximum number of items per design.
    pub max_items: usize,
    /// Maximum number of data input ports (besides `clk`).
    pub max_inputs: usize,
    /// Maximum signal width in bits.
    pub max_width: u32,
    /// Maximum expression tree depth.
    pub max_depth: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { min_items: 3, max_items: 12, max_inputs: 4, max_width: 12, max_depth: 3 }
    }
}

/// Widths stop doubling here when a spec is widened, keeping concatenated
/// nets comfortably under the simulators' 128-bit limit.
const MAX_WIDENED_WIDTH: u32 = 24;

/// A binary operator the generator may emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GBin {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    And,
    Or,
    Xor,
    Xnor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LAnd,
    LOr,
}

impl GBin {
    const ALL: [GBin; 19] = [
        GBin::Add,
        GBin::Sub,
        GBin::Mul,
        GBin::Div,
        GBin::Mod,
        GBin::And,
        GBin::Or,
        GBin::Xor,
        GBin::Xnor,
        GBin::Shl,
        GBin::Shr,
        GBin::Eq,
        GBin::Ne,
        GBin::Lt,
        GBin::Le,
        GBin::Gt,
        GBin::Ge,
        GBin::LAnd,
        GBin::LOr,
    ];

    fn token(self) -> &'static str {
        match self {
            GBin::Add => "+",
            GBin::Sub => "-",
            GBin::Mul => "*",
            GBin::Div => "/",
            GBin::Mod => "%",
            GBin::And => "&",
            GBin::Or => "|",
            GBin::Xor => "^",
            GBin::Xnor => "~^",
            GBin::Shl => "<<",
            GBin::Shr => ">>",
            GBin::Eq => "==",
            GBin::Ne => "!=",
            GBin::Lt => "<",
            GBin::Le => "<=",
            GBin::Gt => ">",
            GBin::Ge => ">=",
            GBin::LAnd => "&&",
            GBin::LOr => "||",
        }
    }
}

/// A unary operator the generator may emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GUn {
    Not,
    Neg,
    LNot,
    RedAnd,
    RedOr,
    RedXor,
}

impl GUn {
    const ALL: [GUn; 6] = [GUn::Not, GUn::Neg, GUn::LNot, GUn::RedAnd, GUn::RedOr, GUn::RedXor];

    fn token(self) -> &'static str {
        match self {
            GUn::Not => "~",
            GUn::Neg => "-",
            GUn::LNot => "!",
            GUn::RedAnd => "&",
            GUn::RedOr => "|",
            GUn::RedXor => "^",
        }
    }
}

/// A generated expression over the signal pool. Signal references are
/// indices into the design's signal space: inputs first, then items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenExpr {
    /// A whole-signal reference.
    Ref(usize),
    /// A sized constant (`value` already fits `width`).
    Const {
        /// The literal value.
        value: u64,
        /// The declared literal width.
        width: u32,
    },
    /// A unary operator application.
    Un(GUn, Box<GenExpr>),
    /// A binary operator application.
    Bin(GBin, Box<GenExpr>, Box<GenExpr>),
    /// A ternary mux.
    Mux(Box<GenExpr>, Box<GenExpr>, Box<GenExpr>),
    /// A constant bit select `sig[bit]` with `bit < width(sig)`.
    Bit {
        /// The selected signal.
        sig: usize,
        /// The selected bit.
        bit: u32,
    },
    /// A constant part select `sig[msb:lsb]`, bounds in range.
    Part {
        /// The selected signal.
        sig: usize,
        /// The high bound.
        msb: u32,
        /// The low bound.
        lsb: u32,
    },
    /// A concatenation of whole signals, MSB-first as written.
    Cat(Vec<usize>),
    /// A replication `{n{sig}}`.
    Rep {
        /// The replication count.
        n: u32,
        /// The replicated signal.
        sig: usize,
    },
}

/// The body of a clocked register item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegBody {
    /// `s <= expr;`
    Simple(GenExpr),
    /// `if (c) s <= a; else s <= b;`
    IfElse(GenExpr, GenExpr, GenExpr),
    /// Nested control: `if (o) begin if (i) s <= a; else s <= b; end else s <= c;`
    Nested {
        /// Outer condition.
        outer: GenExpr,
        /// Inner condition.
        inner: GenExpr,
        /// Value when both conditions hold.
        a: GenExpr,
        /// Value when only the outer condition holds.
        b: GenExpr,
        /// Value when the outer condition fails.
        c: GenExpr,
    },
}

/// One item of a design; item `k` defines signal `s{k}` (also exported as
/// output port `o{k}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenItem {
    /// `wire [w-1:0] s = expr;`
    Wire {
        /// Signal width.
        width: u32,
        /// The driving expression (earlier signals only).
        expr: GenExpr,
    },
    /// A clocked register with optional nested control flow.
    Reg {
        /// Signal width.
        width: u32,
        /// The always-block body (may reference any signal incl. itself).
        body: RegBody,
    },
    /// A combinational `always @(*)` block: unconditional default
    /// assignment, then a full `case` over a 1- or 2-bit subject.
    CombCase {
        /// Signal width.
        width: u32,
        /// The case subject (a [`GenExpr::Bit`] or [`GenExpr::Part`]).
        subject: GenExpr,
        /// The pre-case default assignment.
        default: GenExpr,
        /// One arm per subject value, in order.
        arms: Vec<GenExpr>,
    },
    /// A memory with synchronous write and asynchronous read; the item's
    /// signal is the read port.
    Mem {
        /// Data width.
        width: u32,
        /// Number of entries (a power of two).
        depth: u32,
        /// Write enable (clocked; any signal).
        wen: GenExpr,
        /// Write address (clocked; any signal).
        waddr: GenExpr,
        /// Write data (clocked; any signal).
        wdata: GenExpr,
        /// Read address: an *earlier* signal (the read is combinational).
        raddr_sig: usize,
    },
    /// An instance of a parameterized helper module, `W` set to the
    /// item width. `deep: false` instantiates the flat `cfm_unit`;
    /// `deep: true` instantiates `cfm_deep`, the root of a three-level
    /// helper hierarchy (`cfm_deep` → `cfm_mid` → `cfm_leaf`, with
    /// `cfm_leaf` shared by both parents) that exercises per-module
    /// elaboration reuse and transitive invalidation.
    Inst {
        /// Signal width (and the `W` parameter override).
        width: u32,
        /// First operand signal (earlier only).
        a: usize,
        /// Second operand signal (earlier only).
        b: usize,
        /// Instantiate the deep helper hierarchy instead of `cfm_unit`.
        deep: bool,
    },
}

impl GenItem {
    /// The width of the signal this item defines.
    pub fn width(&self) -> u32 {
        match self {
            GenItem::Wire { width, .. }
            | GenItem::Reg { width, .. }
            | GenItem::CombCase { width, .. }
            | GenItem::Mem { width, .. }
            | GenItem::Inst { width, .. } => *width,
        }
    }
}

/// A complete generated design: input ports plus an item list. Printable
/// as Verilog with [`DesignSpec::verilog`]; the module name is always
/// `top`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignSpec {
    /// The seed this spec was generated from (0 for hand-built specs).
    pub seed: u64,
    /// Widths of the data inputs `i0..`; `clk` is implicit.
    pub input_widths: Vec<u32>,
    /// The items, each defining signal `s{k}` / output `o{k}`.
    pub items: Vec<GenItem>,
}

/// The flat parameterized helper module instantiated by
/// [`GenItem::Inst`] with `deep: false`.
const HELPER: &str = "module cfm_unit #(parameter W = 4) (input [W-1:0] a, input [W-1:0] b, output [W-1:0] y);
    assign y = (a & b) + (a ^ b);
endmodule
";

/// The shared leaf of the deep helper hierarchy.
const HELPER_LEAF: &str = "module cfm_leaf #(parameter W = 4) (input [W-1:0] a, input [W-1:0] b, output [W-1:0] y);
    assign y = (a | b) ^ (a + b);
endmodule
";

/// The middle tier: two `cfm_leaf` instances in series.
const HELPER_MID: &str = "module cfm_mid #(parameter W = 4) (input [W-1:0] a, input [W-1:0] b, output [W-1:0] y);
    wire [W-1:0] t0;
    wire [W-1:0] t1;
    cfm_leaf #(.W(W)) l0 (.a(a), .b(b), .y(t0));
    cfm_leaf #(.W(W)) l1 (.a(b), .b(t0), .y(t1));
    assign y = t0 ^ t1;
endmodule
";

/// The hierarchy root instantiated by [`GenItem::Inst`] with
/// `deep: true`: one `cfm_mid` (which itself holds two `cfm_leaf`s) plus
/// a direct `cfm_leaf`, so the leaf is shared across two parents and the
/// instance tree under `top` is three modules deep.
const HELPER_DEEP: &str = "module cfm_deep #(parameter W = 4) (input [W-1:0] a, input [W-1:0] b, output [W-1:0] y);
    wire [W-1:0] m;
    wire [W-1:0] l;
    cfm_mid #(.W(W)) md (.a(a), .b(b), .y(m));
    cfm_leaf #(.W(W)) lf (.a(m), .b(a), .y(l));
    assign y = m + l;
endmodule
";

/// Name and source text of every helper module the generator can emit,
/// in dependency order (leaves first). Exposed so oracles that merge
/// patched sources can re-append helpers a patch dropped.
pub const HELPERS: [(&str, &str); 4] = [
    ("cfm_leaf", HELPER_LEAF),
    ("cfm_mid", HELPER_MID),
    ("cfm_deep", HELPER_DEEP),
    ("cfm_unit", HELPER),
];

impl DesignSpec {
    /// The top module name.
    pub fn top(&self) -> &'static str {
        "top"
    }

    /// Packages the spec as a named [`sns_designs::Design`]
    /// (`Family::Other`, base = the name), so generated RTL can flow
    /// through the same dataset/labeling/training paths as catalog
    /// designs — the `sns-train` label factory mints its corpus this way.
    pub fn to_design(&self, name: impl Into<String>) -> sns_designs::Design {
        let name = name.into();
        let base = name.clone();
        sns_designs::Design::new(name, sns_designs::Family::Other, self.top(), base, self.verilog())
    }

    /// The name of signal `idx` (inputs first, then items).
    pub fn sig_name(&self, idx: usize) -> String {
        if idx < self.input_widths.len() {
            format!("i{idx}")
        } else {
            format!("s{}", idx - self.input_widths.len())
        }
    }

    /// The width of signal `idx`.
    pub fn width_of(&self, idx: usize) -> u32 {
        if idx < self.input_widths.len() {
            self.input_widths[idx]
        } else {
            self.items[idx - self.input_widths.len()].width()
        }
    }

    /// Total number of signals (inputs + items).
    pub fn signal_count(&self) -> usize {
        self.input_widths.len() + self.items.len()
    }

    /// Prints the spec as Verilog.
    pub fn verilog(&self) -> String {
        let mut out = String::new();
        if self.items.iter().any(|i| matches!(i, GenItem::Inst { deep: false, .. })) {
            out.push_str(HELPER);
        }
        if self.items.iter().any(|i| matches!(i, GenItem::Inst { deep: true, .. })) {
            out.push_str(HELPER_LEAF);
            out.push_str(HELPER_MID);
            out.push_str(HELPER_DEEP);
        }
        out.push_str("module top (input clk");
        for (i, w) in self.input_widths.iter().enumerate() {
            out.push_str(&format!(", input [{}:0] i{i}", w - 1));
        }
        for (k, item) in self.items.iter().enumerate() {
            out.push_str(&format!(", output [{}:0] o{k}", item.width() - 1));
        }
        out.push_str(");\n");
        for (k, item) in self.items.iter().enumerate() {
            self.emit_item(&mut out, k, item);
        }
        for (k, _) in self.items.iter().enumerate() {
            out.push_str(&format!("    assign o{k} = s{k};\n"));
        }
        out.push_str("endmodule\n");
        out
    }

    fn emit_item(&self, out: &mut String, k: usize, item: &GenItem) {
        match item {
            GenItem::Wire { width, expr } => {
                out.push_str(&format!("    wire [{}:0] s{k};\n", width - 1));
                out.push_str(&format!("    assign s{k} = {};\n", self.expr_str(expr)));
            }
            GenItem::Reg { width, body } => {
                out.push_str(&format!("    reg [{}:0] s{k};\n", width - 1));
                match body {
                    RegBody::Simple(e) => {
                        out.push_str(&format!(
                            "    always @(posedge clk) s{k} <= {};\n",
                            self.expr_str(e)
                        ));
                    }
                    RegBody::IfElse(c, a, b) => {
                        out.push_str("    always @(posedge clk) begin\n");
                        out.push_str(&format!(
                            "        if ({}) s{k} <= {};\n",
                            self.expr_str(c),
                            self.expr_str(a)
                        ));
                        out.push_str(&format!("        else s{k} <= {};\n", self.expr_str(b)));
                        out.push_str("    end\n");
                    }
                    RegBody::Nested { outer, inner, a, b, c } => {
                        out.push_str("    always @(posedge clk) begin\n");
                        out.push_str(&format!("        if ({}) begin\n", self.expr_str(outer)));
                        out.push_str(&format!(
                            "            if ({}) s{k} <= {};\n",
                            self.expr_str(inner),
                            self.expr_str(a)
                        ));
                        out.push_str(&format!(
                            "            else s{k} <= {};\n",
                            self.expr_str(b)
                        ));
                        out.push_str("        end else begin\n");
                        out.push_str(&format!("            s{k} <= {};\n", self.expr_str(c)));
                        out.push_str("        end\n    end\n");
                    }
                }
            }
            GenItem::CombCase { width, subject, default, arms } => {
                let sw = arms.len().trailing_zeros(); // 2 arms -> 1 bit, 4 -> 2
                out.push_str(&format!("    reg [{}:0] s{k};\n", width - 1));
                out.push_str("    always @(*) begin\n");
                out.push_str(&format!("        s{k} = {};\n", self.expr_str(default)));
                out.push_str(&format!("        case ({})\n", self.expr_str(subject)));
                for (v, arm) in arms.iter().enumerate() {
                    out.push_str(&format!(
                        "            {sw}'d{v}: s{k} = {};\n",
                        self.expr_str(arm)
                    ));
                }
                out.push_str("        endcase\n    end\n");
            }
            GenItem::Mem { width, depth, wen, waddr, wdata, raddr_sig } => {
                out.push_str(&format!("    reg [{}:0] m{k} [0:{}];\n", width - 1, depth - 1));
                out.push_str(&format!("    wire [{}:0] s{k};\n", width - 1));
                out.push_str("    always @(posedge clk) begin\n");
                out.push_str(&format!(
                    "        if ({}) m{k}[{}] <= {};\n",
                    self.expr_str(wen),
                    self.expr_str(waddr),
                    self.expr_str(wdata)
                ));
                out.push_str("    end\n");
                out.push_str(&format!(
                    "    assign s{k} = m{k}[{}];\n",
                    self.sig_name(*raddr_sig)
                ));
            }
            GenItem::Inst { width, a, b, deep } => {
                let module = if *deep { "cfm_deep" } else { "cfm_unit" };
                out.push_str(&format!("    wire [{}:0] s{k};\n", width - 1));
                out.push_str(&format!(
                    "    {module} #(.W({width})) u{k} (.a({}), .b({}), .y(s{k}));\n",
                    self.sig_name(*a),
                    self.sig_name(*b)
                ));
            }
        }
    }

    fn expr_str(&self, e: &GenExpr) -> String {
        match e {
            GenExpr::Ref(i) => self.sig_name(*i),
            GenExpr::Const { value, width } => format!("{width}'d{value}"),
            GenExpr::Un(op, a) => format!("({}{})", op.token(), self.expr_str(a)),
            GenExpr::Bin(op, a, b) => {
                format!("({} {} {})", self.expr_str(a), op.token(), self.expr_str(b))
            }
            GenExpr::Mux(c, a, b) => format!(
                "({} ? {} : {})",
                self.expr_str(c),
                self.expr_str(a),
                self.expr_str(b)
            ),
            GenExpr::Bit { sig, bit } => format!("{}[{bit}]", self.sig_name(*sig)),
            GenExpr::Part { sig, msb, lsb } => {
                format!("{}[{msb}:{lsb}]", self.sig_name(*sig))
            }
            GenExpr::Cat(sigs) => {
                let parts: Vec<String> = sigs.iter().map(|&s| self.sig_name(s)).collect();
                format!("{{{}}}", parts.join(", "))
            }
            GenExpr::Rep { n, sig } => format!("{{{n}{{{}}}}}", self.sig_name(*sig)),
        }
    }

    /// The same design with every signal width doubled (capped at
    /// [`MAX_WIDENED_WIDTH`]). Select bounds, case subjects, constants and
    /// memory depths are untouched, so the widened spec stays well-formed;
    /// the vsynth monotonicity oracle demands its gate count never drops.
    pub fn widened(&self) -> DesignSpec {
        let widen = |w: u32| (w * 2).min(MAX_WIDENED_WIDTH.max(w));
        let mut out = self.clone();
        for w in &mut out.input_widths {
            *w = widen(*w);
        }
        for item in &mut out.items {
            match item {
                GenItem::Wire { width, .. }
                | GenItem::Reg { width, .. }
                | GenItem::CombCase { width, .. }
                | GenItem::Mem { width, .. }
                | GenItem::Inst { width, .. } => *width = widen(*width),
            }
        }
        out
    }
}

/// Generates a random well-formed design. Pure in `(seed, cfg)`.
pub fn generate(seed: u64, cfg: &GenConfig) -> DesignSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_inputs = rng.gen_range(1..cfg.max_inputs + 1);
    let input_widths: Vec<u32> =
        (0..n_inputs).map(|_| rng.gen_range(1..cfg.max_width + 1)).collect();
    let n_items = rng.gen_range(cfg.min_items..cfg.max_items + 1);
    let mut spec = DesignSpec { seed, input_widths, items: Vec::with_capacity(n_items) };
    for _ in 0..n_items {
        let item = gen_item(&mut rng, &spec, cfg);
        spec.items.push(item);
    }
    spec
}

fn gen_item(rng: &mut StdRng, spec: &DesignSpec, cfg: &GenConfig) -> GenItem {
    let comb_pool = spec.signal_count(); // earlier signals only
    let clocked_pool = comb_pool + 1; // self-reference allowed
    let width = rng.gen_range(1..cfg.max_width + 1);
    match rng.pick_weighted(&[5, 4, 2, 2, 2]) {
        0 => GenItem::Wire { width, expr: gen_expr(rng, spec, comb_pool, cfg.max_depth, cfg) },
        1 => {
            let body = match rng.pick_weighted(&[3, 2, 2]) {
                0 => RegBody::Simple(gen_expr(rng, spec, clocked_pool, cfg.max_depth, cfg)),
                1 => RegBody::IfElse(
                    gen_expr(rng, spec, clocked_pool, 2, cfg),
                    gen_expr(rng, spec, clocked_pool, cfg.max_depth, cfg),
                    gen_expr(rng, spec, clocked_pool, cfg.max_depth, cfg),
                ),
                _ => RegBody::Nested {
                    outer: gen_expr(rng, spec, clocked_pool, 2, cfg),
                    inner: gen_expr(rng, spec, clocked_pool, 2, cfg),
                    a: gen_expr(rng, spec, clocked_pool, 2, cfg),
                    b: gen_expr(rng, spec, clocked_pool, 2, cfg),
                    c: gen_expr(rng, spec, clocked_pool, 2, cfg),
                },
            };
            GenItem::Reg { width, body }
        }
        2 => {
            let subj_sig = rng.gen_range(0..comb_pool);
            let subject = if spec.width_of(subj_sig) >= 2 {
                GenExpr::Part { sig: subj_sig, msb: 1, lsb: 0 }
            } else {
                GenExpr::Bit { sig: subj_sig, bit: 0 }
            };
            let n_arms = if matches!(subject, GenExpr::Part { .. }) { 4 } else { 2 };
            let arms = (0..n_arms).map(|_| gen_expr(rng, spec, comb_pool, 2, cfg)).collect();
            GenItem::CombCase {
                width,
                subject,
                default: gen_expr(rng, spec, comb_pool, 2, cfg),
                arms,
            }
        }
        3 => {
            let depth = if rng.gen_bool(0.5) { 4 } else { 8 };
            GenItem::Mem {
                width,
                depth,
                wen: gen_expr(rng, spec, clocked_pool, 2, cfg),
                waddr: gen_expr(rng, spec, clocked_pool, 2, cfg),
                wdata: gen_expr(rng, spec, clocked_pool, cfg.max_depth, cfg),
                raddr_sig: rng.gen_range(0..comb_pool),
            }
        }
        _ => GenItem::Inst {
            width,
            a: rng.gen_range(0..comb_pool),
            b: rng.gen_range(0..comb_pool),
            deep: rng.gen_bool(0.4),
        },
    }
}

/// Replaces one randomly chosen item of `spec` with a freshly generated
/// one of the *same width*, drawing only on signals defined before it —
/// the module interface and every later select bound stay valid, so the
/// edited spec elaborates whenever `spec` does. Pure in
/// `(spec, edit_seed)`; models a single-module ECO on `top`.
pub fn edit(spec: &DesignSpec, edit_seed: u64, cfg: &GenConfig) -> DesignSpec {
    assert!(!spec.items.is_empty(), "cannot edit an empty spec");
    let mut rng = StdRng::seed_from_u64(edit_seed);
    let k = rng.gen_range(0..spec.items.len());
    let width = spec.items[k].width();
    // Regenerate item k against the truncated signal pool (inputs plus
    // items 0..k), exactly the pool the original generator saw.
    let stub = DesignSpec {
        seed: spec.seed,
        input_widths: spec.input_widths.clone(),
        items: spec.items[..k].to_vec(),
    };
    let mut item = gen_item(&mut rng, &stub, cfg);
    // Pin the declared width so output port o{k} and all later bit/part
    // selects into s{k} remain in range. Expressions inside the item are
    // width-agnostic (Verilog extends/truncates), so this is safe.
    match &mut item {
        GenItem::Wire { width: w, .. }
        | GenItem::Reg { width: w, .. }
        | GenItem::CombCase { width: w, .. }
        | GenItem::Mem { width: w, .. }
        | GenItem::Inst { width: w, .. } => *w = width,
    }
    let mut out = spec.clone();
    out.items[k] = item;
    out
}

fn gen_expr(rng: &mut StdRng, spec: &DesignSpec, pool: usize, depth: u32, cfg: &GenConfig) -> GenExpr {
    debug_assert!(pool > 0, "the signal pool always holds at least one input");
    let leaf = depth == 0;
    //                       Ref Const Un Bin Mux Bit Part Cat Rep
    let weights: [u32; 9] =
        if leaf { [4, 2, 0, 0, 0, 1, 1, 0, 0] } else { [3, 2, 2, 6, 2, 1, 1, 1, 1] };
    match rng.pick_weighted(&weights) {
        0 => GenExpr::Ref(rng.gen_range(0..pool)),
        1 => {
            let width = rng.gen_range(1..cfg.max_width + 1);
            let value = rng.next_u64() & (u64::MAX >> (64 - width.min(64)));
            GenExpr::Const { value, width }
        }
        2 => {
            let op = GUn::ALL[rng.gen_range(0..GUn::ALL.len())];
            GenExpr::Un(op, Box::new(gen_expr(rng, spec, pool, depth - 1, cfg)))
        }
        3 => {
            let op = GBin::ALL[rng.gen_range(0..GBin::ALL.len())];
            GenExpr::Bin(
                op,
                Box::new(gen_expr(rng, spec, pool, depth - 1, cfg)),
                Box::new(gen_expr(rng, spec, pool, depth - 1, cfg)),
            )
        }
        4 => GenExpr::Mux(
            Box::new(gen_expr(rng, spec, pool, depth - 1, cfg)),
            Box::new(gen_expr(rng, spec, pool, depth - 1, cfg)),
            Box::new(gen_expr(rng, spec, pool, depth - 1, cfg)),
        ),
        5 => {
            let sig = rng.gen_range(0..pool);
            // A clocked pool may include the not-yet-built self signal;
            // fall back to a plain reference for it (width unknown here).
            if sig >= spec.signal_count() {
                return GenExpr::Ref(sig);
            }
            let w = spec.width_of(sig);
            GenExpr::Bit { sig, bit: rng.gen_range(0..w) }
        }
        6 => {
            let sig = rng.gen_range(0..pool);
            if sig >= spec.signal_count() {
                return GenExpr::Ref(sig);
            }
            let w = spec.width_of(sig);
            let lsb = rng.gen_range(0..w);
            let msb = rng.gen_range(lsb..w);
            GenExpr::Part { sig, msb, lsb }
        }
        7 => {
            let n = rng.gen_range(2..4usize);
            let sigs = (0..n).map(|_| rng.gen_range(0..pool)).collect();
            GenExpr::Cat(sigs)
        }
        _ => GenExpr::Rep { n: rng.gen_range(1..4u32), sig: rng.gen_range(0..pool) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_pure_in_the_seed() {
        let cfg = GenConfig::default();
        for seed in 0..20 {
            let a = generate(seed, &cfg);
            let b = generate(seed, &cfg);
            assert_eq!(a, b);
            assert_eq!(a.verilog(), b.verilog());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GenConfig::default();
        let sources: Vec<String> = (0..10).map(|s| generate(s, &cfg).verilog()).collect();
        let distinct: std::collections::HashSet<&String> = sources.iter().collect();
        assert!(distinct.len() > 5, "seeds should yield mostly distinct designs");
    }

    #[test]
    fn all_generated_specs_elaborate() {
        let cfg = GenConfig::default();
        for seed in 0..100 {
            let spec = generate(seed, &cfg);
            let src = spec.verilog();
            sns_netlist::parse_and_elaborate(&src, spec.top())
                .unwrap_or_else(|e| panic!("seed {seed} must elaborate: {e}\n{src}"));
        }
    }

    #[test]
    fn widening_preserves_well_formedness() {
        let cfg = GenConfig::default();
        for seed in 0..50 {
            let spec = generate(seed, &cfg).widened();
            let src = spec.verilog();
            sns_netlist::parse_and_elaborate(&src, spec.top())
                .unwrap_or_else(|e| panic!("widened seed {seed} must elaborate: {e}\n{src}"));
        }
    }

    #[test]
    fn item_vocabulary_is_reachable() {
        let cfg = GenConfig { max_items: 16, ..GenConfig::default() };
        let mut seen = [false; 6];
        for seed in 0..200 {
            for item in &generate(seed, &cfg).items {
                let idx = match item {
                    GenItem::Wire { .. } => 0,
                    GenItem::Reg { .. } => 1,
                    GenItem::CombCase { .. } => 2,
                    GenItem::Mem { .. } => 3,
                    GenItem::Inst { deep: false, .. } => 4,
                    GenItem::Inst { deep: true, .. } => 5,
                };
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all item kinds reachable: {seen:?}");
    }

    #[test]
    fn deep_hierarchy_elaborates_and_is_three_levels() {
        let spec = DesignSpec {
            seed: 0,
            input_widths: vec![6, 6],
            items: vec![GenItem::Inst { width: 6, a: 0, b: 1, deep: true }],
        };
        let src = spec.verilog();
        for name in ["cfm_leaf", "cfm_mid", "cfm_deep"] {
            assert!(src.contains(&format!("module {name}")), "missing {name}:\n{src}");
        }
        sns_netlist::parse_and_elaborate(&src, spec.top()).expect("deep hierarchy elaborates");
        // The instance tree under top really is three modules deep, with
        // cfm_leaf shared by cfm_mid and cfm_deep.
        let design = sns_netlist::parse_source(&src).unwrap();
        let hashes = sns_netlist::design_hashes(&design);
        assert_eq!(hashes.len(), 4); // leaf, mid, deep, top
        assert_ne!(hashes["cfm_mid"].own, hashes["cfm_mid"].trans, "mid has children");
        assert_ne!(hashes["cfm_deep"].own, hashes["cfm_deep"].trans, "deep has children");
    }

    #[test]
    fn edit_is_pure_and_preserves_well_formedness() {
        let cfg = GenConfig::default();
        let mut changed = 0;
        for seed in 0..40u64 {
            let spec = generate(seed, &cfg);
            let mut cur = spec.clone();
            for step in 0..4u64 {
                let eseed = seed * 1000 + step;
                let a = edit(&cur, eseed, &cfg);
                assert_eq!(a, edit(&cur, eseed, &cfg), "edit must be pure in its seed");
                let src = a.verilog();
                sns_netlist::parse_and_elaborate(&src, a.top())
                    .unwrap_or_else(|e| panic!("edited seed {seed}/{step} must elaborate: {e}\n{src}"));
                // The interface never moves: same inputs, same output widths.
                assert_eq!(a.input_widths, cur.input_widths);
                assert_eq!(a.items.len(), cur.items.len());
                for (x, y) in a.items.iter().zip(&cur.items) {
                    assert_eq!(x.width(), y.width());
                }
                if a != cur {
                    changed += 1;
                }
                cur = a;
            }
        }
        assert!(changed > 100, "edits should usually change the design: {changed}");
    }
}
