//! A tiny `sns-serve` client: POST one Verilog design to a running
//! daemon and print the prediction.
//!
//! ```text
//! cargo run -p sns-serve --example client -- 127.0.0.1:7878
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;

use sns_rt::json::Json;

const MAC: &str = "module mac (input clk, input [7:0] a, b, output [15:0] y);
    reg [15:0] acc;
    always @(posedge clk) acc <= acc + a * b;
    assign y = acc;
endmodule";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let body = Json::obj(vec![
        ("verilog", Json::Str(MAC.to_string())),
        ("top", Json::Str("mac".to_string())),
        ("clock_ps", Json::Num(1500.0)),
    ])
    .print();

    let mut stream = TcpStream::connect(&addr)?;
    write!(
        stream,
        "POST /predict HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;

    let (head, payload) = response.split_once("\r\n\r\n").ok_or("malformed response")?;
    println!("{}", head.lines().next().unwrap_or(""));
    let v = sns_rt::json::parse(payload)?;
    println!("{}", v.print());
    if let (Ok(t), Ok(a), Ok(p)) = (v.get("timing_ps"), v.get("area_um2"), v.get("power_mw")) {
        println!(
            "\n→ timing {:.0} ps, area {:.1} µm², power {:.3} mW",
            t.as_f64()?,
            a.as_f64()?,
            p.as_f64()?
        );
    }
    Ok(())
}
