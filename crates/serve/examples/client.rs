//! A tiny `sns-serve` client: POST one Verilog design to a running
//! daemon and print the prediction.
//!
//! ```text
//! cargo run -p sns-serve --example client -- 127.0.0.1:7878
//! ```
//!
//! With `--patch`, demonstrates the ECO session flow instead: register a
//! two-module design as an incremental session, then patch just the leaf
//! module and re-predict through the warm session.
//!
//! ```text
//! cargo run -p sns-serve --example client -- 127.0.0.1:7878 --patch
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;

use sns_rt::json::Json;

const MAC: &str = "module mac (input clk, input [7:0] a, b, output [15:0] y);
    reg [15:0] acc;
    always @(posedge clk) acc <= acc + a * b;
    assign y = acc;
endmodule";

const LEAF: &str = "module leaf #(parameter W = 8) (input [W-1:0] a, input [W-1:0] b, output [W-1:0] y);
    assign y = (a & b) + 8'd3;
endmodule";

const TOP: &str = "module top (input [7:0] a, input [7:0] b, output [7:0] y);
    wire [7:0] t0;
    wire [7:0] t1;
    leaf #(.W(8)) u0 (.a(a), .b(b), .y(t0));
    leaf #(.W(8)) u1 (.a(t0), .b(a), .y(t1));
    assign y = t0 ^ t1;
endmodule";

/// POST a JSON body to `/predict`, return (status line, parsed body).
fn post(addr: &str, body: &str) -> Result<(String, Json), Box<dyn std::error::Error>> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "POST /predict HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, payload) = response.split_once("\r\n\r\n").ok_or("malformed response")?;
    Ok((head.lines().next().unwrap_or("").to_string(), sns_rt::json::parse(payload)?))
}

fn print_prediction(v: &Json) -> Result<(), Box<dyn std::error::Error>> {
    if let (Ok(t), Ok(a), Ok(p)) = (v.get("timing_ps"), v.get("area_um2"), v.get("power_mw")) {
        println!(
            "→ timing {:.0} ps, area {:.1} µm², power {:.3} mW",
            t.as_f64()?,
            a.as_f64()?,
            p.as_f64()?
        );
    }
    Ok(())
}

/// The ECO flow: `{"session": true}` to register a base, then
/// `{"base", "patch"}` to re-predict an edited module incrementally.
fn patch_demo(addr: &str) -> Result<(), Box<dyn std::error::Error>> {
    let base_src = format!("{LEAF}\n{TOP}");
    let body = Json::obj(vec![
        ("verilog", Json::Str(base_src)),
        ("top", Json::Str("top".to_string())),
        ("session", Json::Bool(true)),
    ])
    .print();
    let (status, v) = post(addr, &body)?;
    println!("base session: {status}");
    println!("{}", v.print());
    print_prediction(&v)?;
    let token = v.get("base")?.as_str()?.to_string();

    // Patch only the leaf; the daemon re-elaborates the invalidated
    // modules and reuses every untouched terminal sample.
    let patched_leaf = LEAF.replace("8'd3", "8'd7");
    let body = Json::obj(vec![
        ("base", Json::Str(token)),
        ("patch", Json::Str(patched_leaf)),
    ])
    .print();
    let (status, v) = post(addr, &body)?;
    println!("\neco patch: {status}");
    println!("{}", v.print());
    print_prediction(&v)?;
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    if args.iter().any(|a| a == "--patch") {
        return patch_demo(&addr);
    }

    let body = Json::obj(vec![
        ("verilog", Json::Str(MAC.to_string())),
        ("top", Json::Str("mac".to_string())),
        ("clock_ps", Json::Num(1500.0)),
    ])
    .print();
    let (status, v) = post(&addr, &body)?;
    println!("{status}");
    println!("{}", v.print());
    println!();
    print_prediction(&v)
}
