//! The `sns-serve` daemon: load (or quick-train) an SNS model and serve
//! predictions over HTTP until SIGTERM/ctrl-C, then drain and exit.
//!
//! ```text
//! sns-serve --model model.json [--addr 127.0.0.1:7878] [--replicas N] [--zoo DIR]
//! sns-serve --zoo zoo/         [--addr 127.0.0.1:7878] [--replicas N]   # latest checkpoint
//! sns-serve --train 8          [--addr 127.0.0.1:7878] [--replicas N]   # demo model
//! ```
//!
//! `--replicas N` (or `SNS_REPLICAS=N`) enables **sns-shard mode**: N
//! model replicas, each with a private path cache and micro-batcher,
//! behind a consistent-hash router keyed on design content.
//!
//! `--zoo DIR` (or `SNS_ZOO_DIR`) points at a versioned model zoo (as
//! written by `sns-train`); without `--model`/`--train` the latest
//! checkpoint boots the server. A running server hot-swaps to the zoo's
//! latest checkpoint on **SIGHUP** or `POST /admin/reload` without
//! dropping in-flight requests.
//!
//! Environment knobs: SNS_REPLICAS, SNS_WORKERS (alias
//! SNS_SERVE_WORKERS), SNS_QUEUE_CAP, SNS_MAX_CONNS, SNS_MAX_BODY,
//! SNS_DEADLINE_MS, SNS_CACHE_CAP, SNS_THREADS, SNS_BATCH,
//! SNS_SESSION_CAP, SNS_ELAB_CACHE_CAP, SNS_INT8, SNS_ZOO_DIR.
//!
//! `SNS_INT8=1` switches the Circuitformer block GEMMs to the
//! experimental int8 path (deterministic but not bit-equal to f32);
//! consulted once at model load/train, never per request.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use sns_serve::{ServeConfig, Server};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static RELOAD: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    //! SIGINT/SIGTERM → shutdown flag, SIGHUP → reload flag; the main
    //! loop polls both. Installed via the C `signal` symbol that libc
    //! (already linked by `std`) exports — no new dependency. The
    //! handler bodies are single atomic stores, which are
    //! async-signal-safe.
    use std::ffi::c_int;
    use std::sync::atomic::Ordering;

    const SIGHUP: c_int = 1;
    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" {
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }

    extern "C" fn on_signal(_signum: c_int) {
        super::SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" fn on_reload(_signum: c_int) {
        super::RELOAD.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
            signal(SIGHUP, on_reload);
        }
    }
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  sns-serve --model <model.json> [--addr <ip:port>] [--replicas <n>] [--zoo <dir>]
  sns-serve --zoo <dir>          [--addr <ip:port>] [--replicas <n>]
  sns-serve --train <n-designs>  [--addr <ip:port>] [--replicas <n>]

SIGHUP or POST /admin/reload hot-swaps to the zoo's latest checkpoint.

env: SNS_REPLICAS SNS_WORKERS SNS_QUEUE_CAP SNS_MAX_CONNS SNS_MAX_BODY
     SNS_DEADLINE_MS SNS_CACHE_CAP SNS_THREADS SNS_BATCH SNS_SESSION_CAP
     SNS_ELAB_CACHE_CAP SNS_INT8 SNS_ZOO_DIR"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServeConfig::from_env();
    config.addr = arg(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    if let Some(n) = arg(&args, "--replicas") {
        let Ok(n) = n.parse::<usize>() else { return usage() };
        config.replicas = n.max(1);
    }
    if let Some(dir) = arg(&args, "--zoo") {
        config.zoo_dir = Some(dir.into());
    }

    let (model, model_id) = if let Some(path) = arg(&args, "--model") {
        eprintln!("loading model from {path}...");
        match sns_core::load_model(&path) {
            Ok(m) => (m, "boot".to_string()),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if let Some(n) = arg(&args, "--train") {
        let Ok(n) = n.parse::<usize>() else { return usage() };
        let designs: Vec<_> = sns_designs::catalog().into_iter().take(n.max(2)).collect();
        eprintln!("training a demo model on {} designs (fast schedule)...", designs.len());
        let (mut model, report) =
            sns_core::train_sns(&designs, &sns_core::SnsTrainConfig::fast());
        eprintln!("trained on {} paths", report.path_dataset_size);
        // `load_model` applies this gate itself; the demo-train path has
        // to mirror it so both entry points honor the knob.
        if std::env::var("SNS_INT8").map(|v| v == "1").unwrap_or(false) {
            model.set_quant_mode(sns_core::QuantMode::Int8);
        }
        (model, "boot".to_string())
    } else if let Some(dir) = config.zoo_dir.clone() {
        eprintln!("loading latest checkpoint from zoo {}...", dir.display());
        match sns_core::load_from_zoo(&dir, None) {
            Ok((m, entry)) => {
                eprintln!("loaded {} (weights {})", entry.id, entry.weight_hash);
                (m, entry.id)
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        return usage();
    };

    let server = match Server::start_named(std::sync::Arc::new(model), &model_id, config.clone())
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "sns-serve listening on http://{} (replicas={}, workers={}, threads={}, batch={}, queue_cap={}, max_conns={}, cache_cap={}, deadline={})",
        server.addr(),
        config.replicas,
        config.workers,
        config.threads,
        config.batch,
        config.queue_cap,
        config.max_conns,
        config.cache_cap.map_or("unbounded".to_string(), |c| c.to_string()),
        config.deadline.map_or("none".to_string(), |d| format!("{}ms", d.as_millis())),
    );

    #[cfg(unix)]
    sig::install();

    while !SHUTDOWN.load(Ordering::SeqCst) {
        if RELOAD.swap(false, Ordering::SeqCst) {
            match server.reload_from_zoo(None) {
                Ok(o) if o.swapped => {
                    eprintln!("reloaded: {} -> {} (weights {})", o.previous_id, o.model_id, o.weight_hash)
                }
                Ok(o) => eprintln!("reload: {} already serving, caches kept warm", o.model_id),
                Err(e) => eprintln!("reload failed (model unchanged): {e}"),
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    eprintln!("shutdown requested — draining in-flight requests...");
    let metrics = server.metrics();
    server.join();
    eprintln!(
        "done: {} requests served ({} predictions)",
        metrics.requests_total.load(Ordering::Relaxed),
        metrics.predict_ok.load(Ordering::Relaxed),
    );
    ExitCode::SUCCESS
}
