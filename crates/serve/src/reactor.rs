//! The event-driven connection core: one thread, readiness-based
//! non-blocking I/O over `sns_rt::net::poll`, per-connection state
//! machines for HTTP framing.
//!
//! ```text
//!             ┌────────────── reactor thread ──────────────┐
//!  accept ──► │ Reading ──► Dispatched ──► Writing ──► (Lingering) ──► close
//!             │   ▲ poll(POLLIN)   │           ▲ poll(POLLOUT)
//!             └───┼────────────────┼───────────┼───────────┘
//!                 │          dispatch queue    │ completions + waker
//!                 │                ▼           │
//!                 │          worker pool ──────┘  (route → replica → reply)
//! ```
//!
//! The reactor owns every socket and never runs inference: it frames
//! requests byte-by-byte as readiness allows (via the incremental
//! [`parse_head`](crate::http::parse_head)), hands complete requests to
//! the worker pool through a bounded queue, and writes back the response
//! bytes workers push through the completion channel (a
//! [`Waker`](sns_rt::net::Waker) self-pipe interrupts the blocked
//! `poll`). Because sockets never block and never occupy a worker, a
//! slow-loris peer, a stalled reader, or a half-closed connection costs
//! one map entry — not a thread — and head-of-line blocking between
//! connections cannot happen.
//!
//! ## Connection states
//!
//! * **Reading** — accumulating request bytes. A fixed per-connection
//!   deadline (`read_timeout`, set at accept and *never* extended by
//!   arriving bytes) bounds how long framing may take: a peer trickling
//!   one header byte at a time gets `408` when the deadline passes, no
//!   matter how diligently it trickles.
//! * **Dispatched** — a complete request is with the workers; the fd is
//!   not polled at all until its completion arrives.
//! * **Writing** — draining response bytes as `POLLOUT` allows; partial
//!   writes simply leave the state where it is.
//! * **Lingering** — response written but request bytes were never fully
//!   read (framing errors, shed connections): the write side is
//!   half-closed and leftover input is discarded until the peer closes
//!   or a short deadline passes, so the kernel never RSTs the response
//!   away.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sns_rt::net::{poll, PollFd, POLLHUP, POLLIN, POLLOUT};

use crate::http::{build_response, parse_head, FramedHead, HttpError, Request};
use crate::server::{error_body, lock_or_recover, Job, Shared};

/// How long a connection that still has unread request bytes may linger
/// after its response is written (shed 503s, framing 4xx).
const SHED_LINGER: Duration = Duration::from_millis(250);

/// Per-iteration read scratch. Also bounds how much one connection can
/// consume per readiness event before others get a turn.
const SCRATCH: usize = 16 * 1024;

enum State {
    Reading,
    Dispatched,
    Writing { bytes: Vec<u8>, pos: usize, linger: Option<Duration> },
    Lingering,
}

struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    head: Option<FramedHead>,
    state: State,
    /// Reading: framing deadline. Lingering: discard deadline.
    deadline: Instant,
}

enum After {
    /// Stay in Reading; waiting for more bytes.
    Keep,
    /// A complete request is buffered; hand it to the workers.
    Dispatch,
    /// Answer a framing error and (optionally) linger.
    Respond { status: u16, msg: String, linger: Option<Duration> },
    /// Peer went away before sending anything; drop silently.
    CloseSilent,
    /// Socket error mid-request.
    CloseError,
}

enum Framing {
    Incomplete,
    Complete,
    Error { status: u16, msg: String },
}

/// The reactor thread body. Exits when shutdown is requested and every
/// connection has drained.
pub(crate) fn reactor_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let mut listener = Some(listener);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 1;

    loop {
        // Apply completed work first: it can free connections and is the
        // reason the waker fired.
        let completions = std::mem::take(&mut *lock_or_recover(&shared.completions));
        for done in completions {
            let Some(conn) = conns.get_mut(&done.conn_id) else { continue };
            conn.state = State::Writing { bytes: done.bytes, pos: 0, linger: None };
            if !advance_write(conn, shared) {
                conns.remove(&done.conn_id);
            }
        }

        if shared.shutdown.load(Ordering::SeqCst) {
            // Stop accepting immediately (pending connects get refused),
            // shed idle keep-alive probes, drain everything else.
            listener = None;
            conns.retain(|_, c| {
                !(matches!(c.state, State::Reading) && c.buf.is_empty() && c.head.is_none())
            });
            if conns.is_empty() {
                return;
            }
        }

        // Build the poll set: waker, listener, then live connections.
        let mut fds = Vec::with_capacity(2 + conns.len());
        fds.push(PollFd::new(shared.waker.fd(), POLLIN));
        let listener_idx = listener.as_ref().map(|l| {
            fds.push(PollFd::new(l.as_raw_fd(), POLLIN));
            fds.len() - 1
        });
        let base = fds.len();
        let mut conn_ids: Vec<u64> = Vec::with_capacity(conns.len());
        let mut next_deadline: Option<Instant> = None;
        for (&id, conn) in &conns {
            let events = match conn.state {
                State::Reading | State::Lingering => {
                    next_deadline =
                        Some(next_deadline.map_or(conn.deadline, |d| d.min(conn.deadline)));
                    POLLIN
                }
                State::Writing { .. } => POLLOUT,
                // Not polled: nothing to do until its completion arrives.
                State::Dispatched => continue,
            };
            fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
            conn_ids.push(id);
        }

        let timeout =
            next_deadline.map(|d| d.saturating_duration_since(Instant::now()));
        if poll(&mut fds, timeout).is_err() {
            // poll(2) only fails here for pathological reasons (fd limit
            // races); back off instead of spinning.
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        let busy = Instant::now();

        if fds[0].ready(POLLIN) {
            shared.waker.drain();
        }

        if let Some(li) = listener_idx {
            if fds[li].ready(POLLIN) {
                if let Some(l) = &listener {
                    accept_ready(l, &mut conns, &mut next_id, shared);
                }
            }
        }

        for (i, &id) in conn_ids.iter().enumerate() {
            let fd = fds[base + i];
            let Some(conn) = conns.get_mut(&id) else { continue };
            if fd.failed() {
                let idle = matches!(conn.state, State::Reading)
                    && conn.buf.is_empty()
                    && conn.head.is_none();
                if !idle {
                    shared.metrics.conn_errors.fetch_add(1, Ordering::Relaxed);
                }
                conns.remove(&id);
                continue;
            }
            let keep = match conn.state {
                State::Reading if fd.ready(POLLIN | POLLHUP) => {
                    let after = read_ready(conn, shared);
                    apply_read_outcome(conn, id, after, shared)
                }
                State::Writing { .. } if fd.ready(POLLOUT | POLLHUP) => {
                    advance_write(conn, shared)
                }
                State::Lingering if fd.ready(POLLIN | POLLHUP) => discard_ready(conn),
                _ => true,
            };
            if !keep {
                conns.remove(&id);
            }
        }

        // Deadline sweep: slow-loris peers mid-request get 408; expired
        // lingers close outright.
        let now = Instant::now();
        let expired: Vec<u64> = conns
            .iter()
            .filter(|(_, c)| {
                matches!(c.state, State::Reading | State::Lingering) && now >= c.deadline
            })
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            let Some(conn) = conns.get_mut(&id) else { continue };
            match conn.state {
                State::Lingering => {
                    conns.remove(&id);
                }
                _ => {
                    if conn.buf.is_empty() && conn.head.is_none() {
                        // Idle probe that never sent a byte: quiet close.
                        conns.remove(&id);
                        continue;
                    }
                    shared.metrics.read_timeouts.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.responses_4xx.fetch_add(1, Ordering::Relaxed);
                    let body = error_body(
                        "request not received within the read deadline",
                        "timeout",
                    );
                    // The peer is mid-send: linger so the 408 survives
                    // the unread bytes (close would RST it away).
                    let keep = start_write(
                        conn,
                        build_response(408, &[], &body.print()),
                        Some(SHED_LINGER),
                        shared,
                    );
                    if !keep {
                        conns.remove(&id);
                    }
                }
            }
        }

        shared.metrics.reactor_loop.record(busy.elapsed());
    }
}

/// Accepts until `WouldBlock`, shedding with 503 past `max_conns`.
fn accept_ready(
    listener: &TcpListener,
    conns: &mut HashMap<u64, Conn>,
    next_id: &mut u64,
    shared: &Shared,
) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        let id = *next_id;
        *next_id = next_id.wrapping_add(1);
        let mut conn = Conn {
            stream,
            buf: Vec::new(),
            head: None,
            state: State::Reading,
            deadline: Instant::now() + shared.config.read_timeout,
        };
        if conns.len() >= shared.config.max_conns {
            // Connection-count backpressure: answer 503 without ever
            // reading the request.
            shared.metrics.rejected_503.fetch_add(1, Ordering::Relaxed);
            shared.metrics.responses_5xx.fetch_add(1, Ordering::Relaxed);
            let body = error_body("server overloaded, retry shortly", "overload");
            let bytes =
                build_response(503, &[("retry-after", "1".to_string())], &body.print());
            if start_write(&mut conn, bytes, Some(SHED_LINGER), shared) {
                conns.insert(id, conn);
            }
            continue;
        }
        conns.insert(id, conn);
    }
}

/// Drains readable bytes into the framing buffer and classifies where
/// the connection stands.
fn read_ready(conn: &mut Conn, shared: &Shared) -> After {
    let mut scratch = [0u8; SCRATCH];
    loop {
        match conn.stream.read(&mut scratch) {
            Ok(0) => {
                if conn.buf.is_empty() && conn.head.is_none() {
                    return After::CloseSilent;
                }
                let what = if conn.head.is_none() { "mid-headers" } else { "mid-body" };
                return After::Respond {
                    status: 400,
                    msg: format!("malformed HTTP request: connection closed {what}"),
                    // Peer already sent EOF: nothing left to drain.
                    linger: None,
                };
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&scratch[..n]);
                match try_frame(conn, shared.config.max_body) {
                    Framing::Incomplete => continue,
                    Framing::Complete => return After::Dispatch,
                    Framing::Error { status, msg } => {
                        return After::Respond {
                            status,
                            msg,
                            linger: Some(SHED_LINGER),
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return After::Keep,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return After::CloseError,
        }
    }
}

/// Advances the incremental head parse / body completeness check.
fn try_frame(conn: &mut Conn, max_body: usize) -> Framing {
    if conn.head.is_none() {
        match parse_head(&conn.buf, max_body) {
            Ok(None) => return Framing::Incomplete,
            Ok(Some(head)) => conn.head = Some(head),
            Err(HttpError::BadRequest(msg)) => {
                return Framing::Error { status: 400, msg: format!("malformed HTTP request: {msg}") }
            }
            Err(HttpError::PayloadTooLarge { limit }) => {
                return Framing::Error {
                    status: 413,
                    msg: format!("request body exceeds the {limit}-byte limit"),
                }
            }
            Err(HttpError::Io(e)) => {
                // parse_head never does I/O; keep the arm total anyway.
                return Framing::Error { status: 400, msg: format!("malformed HTTP request: {e}") };
            }
        }
    }
    let Some(head) = &conn.head else { return Framing::Incomplete };
    let total = head.total_len();
    if conn.buf.len() > total {
        // Extra bytes after the framed request: this server is strictly
        // one-request-per-connection, so pipelined trailers are an error
        // (same rule the blocking path has always enforced).
        Framing::Error {
            status: 400,
            msg: "malformed HTTP request: body longer than Content-Length".to_string(),
        }
    } else if conn.buf.len() == total {
        Framing::Complete
    } else {
        Framing::Incomplete
    }
}

/// Applies a [`read_ready`] outcome. Returns `false` when the
/// connection should be removed.
fn apply_read_outcome(conn: &mut Conn, id: u64, after: After, shared: &Shared) -> bool {
    match after {
        After::Keep => true,
        After::CloseSilent => false,
        After::CloseError => {
            shared.metrics.conn_errors.fetch_add(1, Ordering::Relaxed);
            false
        }
        After::Respond { status, msg, linger } => {
            shared.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
            let class = if status >= 500 {
                &shared.metrics.responses_5xx
            } else {
                &shared.metrics.responses_4xx
            };
            class.fetch_add(1, Ordering::Relaxed);
            let body = error_body(&msg, "http");
            start_write(conn, build_response(status, &[], &body.print()), linger, shared)
        }
        After::Dispatch => {
            shared.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
            let Some(head) = conn.head.take() else { return false };
            let body = conn.buf[head.head_end + 4..].to_vec();
            let request = Request { body, ..head.request };
            conn.buf = Vec::new();
            let depth = {
                let mut queue = lock_or_recover(&shared.dispatch);
                if queue.len() >= shared.config.queue_cap {
                    drop(queue);
                    // Queue backpressure: the client learns immediately
                    // instead of waiting on an invisible line.
                    shared.metrics.rejected_503.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.responses_5xx.fetch_add(1, Ordering::Relaxed);
                    let body = error_body("server overloaded, retry shortly", "overload");
                    let bytes = build_response(
                        503,
                        &[("retry-after", "1".to_string())],
                        &body.print(),
                    );
                    return start_write(conn, bytes, None, shared);
                }
                queue.push_back(Job { conn_id: id, request });
                queue.len() as u64
            };
            shared.metrics.queue_depth.store(depth, Ordering::Relaxed);
            shared.dispatch_cv.notify_one();
            conn.state = State::Dispatched;
            true
        }
    }
}

/// Puts the connection into Writing and pushes bytes as far as the
/// socket allows right now (most responses fit the send buffer, saving
/// a poll round-trip). Returns `false` when the connection is already
/// finished and should be removed.
fn start_write(
    conn: &mut Conn,
    bytes: Vec<u8>,
    linger: Option<Duration>,
    shared: &Shared,
) -> bool {
    conn.state = State::Writing { bytes, pos: 0, linger };
    advance_write(conn, shared)
}

/// Writes as much of the pending response as the socket accepts.
/// Returns `false` when the connection is finished (fully written with
/// no linger, or dead).
fn advance_write(conn: &mut Conn, shared: &Shared) -> bool {
    let State::Writing { bytes, pos, linger } = &mut conn.state else {
        return true;
    };
    while *pos < bytes.len() {
        match conn.stream.write(&bytes[*pos..]) {
            Ok(0) => {
                shared.metrics.conn_errors.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            Ok(n) => *pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                shared.metrics.conn_errors.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
    }
    match *linger {
        None => false, // fully written, clean close
        Some(d) => {
            let _ = conn.stream.shutdown(Shutdown::Write);
            conn.state = State::Lingering;
            conn.deadline = Instant::now() + d;
            true
        }
    }
}

/// Discards lingering input. Returns `false` when the peer closed (or
/// errored) and the connection can finally go away.
fn discard_ready(conn: &mut Conn) -> bool {
    let mut scratch = [0u8; SCRATCH];
    // Bounded per event so one firehose peer cannot stall the loop.
    for _ in 0..8 {
        match conn.stream.read(&mut scratch) {
            Ok(0) => return false,
            Ok(_) => continue,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    true
}
