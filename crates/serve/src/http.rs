//! A hand-rolled HTTP/1.1 subset on `std::net` — just enough protocol
//! for the inference API, with hard limits everywhere a network peer
//! could make us allocate.
//!
//! Supported: one request per connection (every response carries
//! `Connection: close`), request bodies sized by `Content-Length`.
//! Rejected with structured errors: header sections over
//! [`MAX_HEAD_BYTES`], bodies over the configured limit, chunked
//! transfer encoding, and any syntactically malformed framing.
//!
//! The framing core is *incremental*: [`parse_head`] inspects a growing
//! byte buffer and reports "need more bytes" (`Ok(None)`) until the
//! blank line arrives, which is what lets the event-driven reactor in
//! [`crate::reactor`] frame requests from non-blocking reads without a
//! thread parked per connection. The blocking [`read_request`] used by
//! tests and simple clients is a thin loop over the same core.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

/// Upper bound on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased by the peer, not normalized here).
    pub method: String,
    /// The request target, e.g. `/predict`.
    pub target: String,
    /// Header name/value pairs in wire order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed framing; the message is safe to echo to the peer.
    BadRequest(String),
    /// `Content-Length` exceeded the configured body limit.
    PayloadTooLarge {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The socket failed or the peer vanished mid-request.
    Io(std::io::Error),
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// A fully parsed request head: everything before the body, plus the
/// framing facts a caller needs to finish reading the message.
#[derive(Debug)]
pub struct FramedHead {
    /// The request with its headers parsed and an empty body.
    pub request: Request,
    /// Byte offset of the `\r\n\r\n` separator in the scanned buffer.
    pub head_end: usize,
    /// The declared `Content-Length` (0 when absent), already validated
    /// against the body limit.
    pub content_length: usize,
}

impl FramedHead {
    /// Total framed size of the message: head, separator, and body.
    pub fn total_len(&self) -> usize {
        self.head_end + 4 + self.content_length
    }
}

/// Incrementally parses a request head from `buf`.
///
/// Returns `Ok(None)` while the `\r\n\r\n` separator has not arrived yet
/// (and the buffer is still within [`MAX_HEAD_BYTES`]) — the caller
/// should read more bytes and try again with the grown buffer.
///
/// # Errors
///
/// [`HttpError::BadRequest`] for malformed framing (including a head
/// that exceeds [`MAX_HEAD_BYTES`] without terminating), and
/// [`HttpError::PayloadTooLarge`] when the declared `Content-Length`
/// exceeds `max_body`.
pub fn parse_head(buf: &[u8], max_body: usize) -> Result<Option<FramedHead>, HttpError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::BadRequest(format!(
                "header section exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        return Ok(None);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(HttpError::BadRequest(format!(
            "header section exceeds {MAX_HEAD_BYTES} bytes"
        )));
    }

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("headers are not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line: {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!("unsupported version {version:?}")));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header line: {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest(format!("malformed header name: {name:?}")));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let request = Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body: Vec::new(),
    };

    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::BadRequest("chunked transfer encoding is not supported".into()));
    }

    let content_length = match request.header("content-length") {
        None => 0usize,
        Some(v) => v
            .trim()
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("invalid Content-Length {v:?}")))?,
    };
    if content_length > max_body {
        return Err(HttpError::PayloadTooLarge { limit: max_body });
    }

    Ok(Some(FramedHead { request, head_end, content_length }))
}

/// Reads one HTTP/1.1 request from `stream`, honouring `max_body`.
/// Blocking; used by tests and simple clients (the server frames
/// requests incrementally through [`parse_head`] instead).
///
/// # Errors
///
/// [`HttpError::BadRequest`] for malformed framing,
/// [`HttpError::PayloadTooLarge`] when `Content-Length > max_body`, and
/// [`HttpError::Io`] when the socket fails (including read timeouts).
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let framed = loop {
        if let Some(framed) = parse_head(&buf, max_body)? {
            break framed;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-headers".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    // The head read may have pulled in part (or all) of the body.
    let total = framed.total_len();
    if buf.len() > total {
        return Err(HttpError::BadRequest("body longer than Content-Length".into()));
    }
    while buf.len() < total {
        let want = (total - buf.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-body".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    }

    let body = buf[framed.head_end + 4..].to_vec();
    Ok(Request { body, ..framed.request })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serializes one `Connection: close` JSON response to wire bytes.
pub fn build_response(status: u16, extra_headers: &[(&str, String)], body: &str) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason(status),
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(body.as_bytes());
    bytes
}

/// Writes one `Connection: close` JSON response. Errors are ignored by
/// callers that are already tearing the connection down.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    stream.write_all(&build_response(status, extra_headers, body))?;
    stream.flush()
}

/// Lingering close: half-close the write side, then discard whatever the
/// peer is still sending until it closes (bounded by `timeout`).
///
/// Necessary whenever a response was written *without* fully reading the
/// request (shed connections, 413s, framing errors): closing a socket
/// with unread bytes in its receive buffer makes the kernel send RST,
/// which can destroy the very response the peer is trying to read. The
/// reactor implements the same discipline as a non-blocking state
/// (`Lingering`); this blocking form serves simple callers.
pub fn lingering_close(stream: &mut TcpStream, timeout: Duration) {
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(timeout));
    let mut scratch = [0u8; 4096];
    while matches!(stream.read(&mut scratch), Ok(n) if n > 0) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    /// Feeds `bytes` through a real socket pair into `read_request`.
    fn parse_bytes(bytes: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload = bytes.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&payload).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let r = read_request(&mut conn, max_body);
        writer.join().unwrap();
        r
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse_bytes(
            b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/predict");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse_bytes(b"GET /metrics HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn incremental_parse_waits_for_the_blank_line() {
        let full = b"POST /predict HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        for cut in 0..full.len() {
            let r = parse_head(&full[..cut], 1024);
            let complete = cut >= full.len() - 5; // separator fully present
            match r {
                Ok(None) => assert!(!complete, "cut={cut} should have parsed"),
                Ok(Some(h)) => {
                    assert!(complete, "cut={cut} parsed too early");
                    assert_eq!(h.content_length, 5);
                    assert_eq!(h.total_len(), full.len());
                    assert_eq!(h.request.method, "POST");
                }
                Err(e) => panic!("cut={cut}: unexpected error {e:?}"),
            }
        }
    }

    #[test]
    fn rejects_malformed_framing() {
        for bytes in [
            &b"NOT A REQUEST\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad header line\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            match parse_bytes(bytes, 1024) {
                Err(HttpError::BadRequest(_)) => {}
                other => panic!("{bytes:?}: expected BadRequest, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_oversized_bodies_by_declared_length() {
        match parse_bytes(b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\n", 10) {
            Err(HttpError::PayloadTooLarge { limit: 10 }) => {}
            other => panic!("expected PayloadTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_oversized_head() {
        let mut bytes = b"GET / HTTP/1.1\r\n".to_vec();
        bytes.extend_from_slice(format!("X-Pad: {}\r\n\r\n", "a".repeat(MAX_HEAD_BYTES)).as_bytes());
        match parse_bytes(&bytes, 1024) {
            Err(HttpError::BadRequest(msg)) => assert!(msg.contains("header section")),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn truncated_requests_error() {
        match parse_bytes(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 1024) {
            Err(HttpError::BadRequest(msg)) => assert!(msg.contains("mid-body")),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn build_response_round_trips_through_a_socket() {
        let bytes = build_response(200, &[("retry-after", "1".into())], "{\"x\":1}");
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("content-length: 7\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"x\":1}"));
    }
}
