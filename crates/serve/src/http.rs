//! A hand-rolled HTTP/1.1 subset on `std::net` — just enough protocol
//! for the inference API, with hard limits everywhere a network peer
//! could make us allocate.
//!
//! Supported: one request per connection (every response carries
//! `Connection: close`), request bodies sized by `Content-Length`.
//! Rejected with structured errors: header sections over
//! [`MAX_HEAD_BYTES`], bodies over the configured limit, chunked
//! transfer encoding, and any syntactically malformed framing.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

/// Upper bound on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased by the peer, not normalized here).
    pub method: String,
    /// The request target, e.g. `/predict`.
    pub target: String,
    /// Header name/value pairs in wire order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed framing; the message is safe to echo to the peer.
    BadRequest(String),
    /// `Content-Length` exceeded the configured body limit.
    PayloadTooLarge {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The socket failed or the peer vanished mid-request.
    Io(std::io::Error),
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one HTTP/1.1 request from `stream`, honouring `max_body`.
///
/// # Errors
///
/// [`HttpError::BadRequest`] for malformed framing,
/// [`HttpError::PayloadTooLarge`] when `Content-Length > max_body`, and
/// [`HttpError::Io`] when the socket fails (including read timeouts).
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    // Accumulate the head until the blank line, never past MAX_HEAD_BYTES.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::BadRequest(format!(
                "header section exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-headers".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("headers are not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line: {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!("unsupported version {version:?}")));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header line: {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest(format!("malformed header name: {name:?}")));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let request = Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body: Vec::new(),
    };

    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::BadRequest("chunked transfer encoding is not supported".into()));
    }

    let content_length = match request.header("content-length") {
        None => 0usize,
        Some(v) => v
            .trim()
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("invalid Content-Length {v:?}")))?,
    };
    if content_length > max_body {
        return Err(HttpError::PayloadTooLarge { limit: max_body });
    }

    // The head read may have pulled in part (or all) of the body.
    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(HttpError::BadRequest("body longer than Content-Length".into()));
    }
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(HttpError::BadRequest("connection closed mid-body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }

    Ok(Request { body, ..request })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one `Connection: close` JSON response. Errors are ignored by
/// callers that are already tearing the connection down.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason(status),
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Lingering close: half-close the write side, then discard whatever the
/// peer is still sending until it closes (bounded by `timeout`).
///
/// Necessary whenever a response was written *without* fully reading the
/// request (shed connections, 413s, framing errors): closing a socket
/// with unread bytes in its receive buffer makes the kernel send RST,
/// which can destroy the very response the peer is trying to read.
pub fn lingering_close(stream: &mut TcpStream, timeout: Duration) {
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(timeout));
    let mut scratch = [0u8; 4096];
    while matches!(stream.read(&mut scratch), Ok(n) if n > 0) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    /// Feeds `bytes` through a real socket pair into `read_request`.
    fn parse_bytes(bytes: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload = bytes.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&payload).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let r = read_request(&mut conn, max_body);
        writer.join().unwrap();
        r
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse_bytes(
            b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/predict");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse_bytes(b"GET /metrics HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_framing() {
        for bytes in [
            &b"NOT A REQUEST\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad header line\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            match parse_bytes(bytes, 1024) {
                Err(HttpError::BadRequest(_)) => {}
                other => panic!("{bytes:?}: expected BadRequest, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_oversized_bodies_by_declared_length() {
        match parse_bytes(b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\n", 10) {
            Err(HttpError::PayloadTooLarge { limit: 10 }) => {}
            other => panic!("expected PayloadTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_oversized_head() {
        let mut bytes = b"GET / HTTP/1.1\r\n".to_vec();
        bytes.extend_from_slice(format!("X-Pad: {}\r\n\r\n", "a".repeat(MAX_HEAD_BYTES)).as_bytes());
        match parse_bytes(&bytes, 1024) {
            Err(HttpError::BadRequest(msg)) => assert!(msg.contains("header section")),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn truncated_requests_error() {
        match parse_bytes(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 1024) {
            Err(HttpError::BadRequest(msg)) => assert!(msg.contains("mid-body")),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }
}
