//! The per-replica micro-batcher.
//!
//! Each `/predict` handler discovers which of its path token sequences
//! are missing from its replica's [`PathPredictionCache`] and submits
//! them here instead of running inference itself. The batcher thread
//! serves submissions **FIFO in bounded fill rounds**: it pops the
//! oldest job, re-filters its sequences against the cache (anything an
//! earlier round already computed is dropped), keeps popping queued
//! jobs the same way until the round holds about one `SNS_BATCH` worth
//! of unique sequences, fills them with one length-bucketed,
//! `SNS_THREADS`-parallel pass — then opens every drained job's gate.
//!
//! ## Why bounded rounds, not drain-everything rounds
//!
//! An earlier design drained the whole queue each round and computed the
//! *unbounded union* of every queued job's missing sequences before
//! opening any gate. That coalesces aggressively, but couples every
//! waiter's latency to the **largest** round: at concurrency 16 on one
//! core, a request that needed 2 sequences would wait behind a union of
//! hundreds, and tail latency collapsed (the measured k=16 p99 was ~7×
//! the k=4 p99 — see `EXPERIMENTS.md`). Bounding each round at one
//! batch keeps the wait of any request proportional to *its own*
//! missing work plus at most one well-packed forward, while
//! cross-request de-duplication still happens two ways: jobs drained
//! into the same round share a deduplicated union, and jobs left queued
//! re-filter against the cache when their turn comes — for a hot design
//! the followers' rounds shrink to nothing and their gates open without
//! any inference at all. The prepacked small-batch GEMM path (PR 7)
//! makes the bounded packs cheap, which is what makes this trade
//! profitable.
//!
//! Because per-sequence predictions are independent of their batch-mates
//! (see `Circuitformer::predict_batch`), round sizing changes throughput
//! only, never a single bit of any response.
//!
//! [`PathPredictionCache`]: sns_core::PathPredictionCache

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use sns_core::SnsModel;

use crate::metrics::{Metrics, ReplicaStats};

/// Locks a mutex, recovering the guard from a poisoned lock. The values
/// behind every lock in this crate are state machines that tolerate a
/// panicked writer (worst case: one request's round is re-run), and the
/// serve front-end is required to be panic-free anyway.
fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Completion gate a handler blocks on after submitting.
#[derive(Debug, Default)]
pub struct Gate {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    /// Blocks until the submission's fill round completes, or until
    /// `deadline` passes. Returns `true` when the round completed.
    ///
    /// A `false` return does not cancel the round — the cache still gets
    /// filled (useful work for future requests); only this caller stops
    /// waiting.
    pub fn wait(&self, deadline: Option<Instant>) -> bool {
        let mut done = lock_or_recover(&self.done);
        loop {
            if *done {
                return true;
            }
            match deadline {
                None => {
                    done = self.cv.wait(done).unwrap_or_else(PoisonError::into_inner);
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return false;
                    }
                    done = self
                        .cv
                        .wait_timeout(done, d - now)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
        }
    }

    fn open(&self) {
        *lock_or_recover(&self.done) = true;
        self.cv.notify_all();
    }
}

struct Job {
    missing: Vec<Vec<usize>>,
    gate: Arc<Gate>,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    shutdown: AtomicBool,
}

/// Owns one replica's batcher thread; dropped by the server on shutdown.
pub struct MicroBatcher {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl MicroBatcher {
    /// Starts the batcher thread for `model`, filling the model's cache
    /// with `threads`-parallel, `batch`-packed rounds. Round counters go
    /// to both the global `metrics` and this replica's `stats`.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the thread cannot be spawned.
    pub fn start(
        model: Arc<SnsModel>,
        threads: usize,
        batch: usize,
        metrics: Arc<Metrics>,
        stats: Arc<ReplicaStats>,
    ) -> std::io::Result<Self> {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("sns-batcher".into())
            .spawn(move || Self::run(&worker_shared, &model, threads, batch, &metrics, &stats))?;
        Ok(MicroBatcher { shared, worker: Some(worker) })
    }

    fn run(
        shared: &Shared,
        model: &SnsModel,
        threads: usize,
        batch: usize,
        metrics: &Metrics,
        stats: &ReplicaStats,
    ) {
        let round_cap = batch.max(1);
        loop {
            let first: Job = {
                let mut queue = lock_or_recover(&shared.queue);
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    queue = shared.cv.wait(queue).unwrap_or_else(PoisonError::into_inner);
                }
            };
            // Assemble one bounded round: the oldest job, plus further
            // queued jobs until the round holds about one batch of unique
            // sequences. Each job is re-filtered against the cache first —
            // earlier rounds (often for the same hot design) may have
            // computed its sequences while it sat in the queue — and the
            // union is deduplicated so shared sequences compute once.
            let mut gates = vec![first.gate];
            let mut union: Vec<Vec<usize>> = first
                .missing
                .into_iter()
                .filter(|seq| model.cache().get(seq).is_none())
                .collect();
            let mut seen: HashSet<Vec<usize>> = union.iter().cloned().collect();
            while union.len() < round_cap {
                let Some(job) = lock_or_recover(&shared.queue).pop_front() else { break };
                for seq in job.missing {
                    if model.cache().get(&seq).is_none() && seen.insert(seq.clone()) {
                        union.push(seq);
                    }
                }
                gates.push(job.gate);
            }
            if !union.is_empty() {
                metrics.batch_rounds.fetch_add(1, Ordering::Relaxed);
                metrics.batched_seqs.fetch_add(union.len() as u64, Ordering::Relaxed);
                stats.batch_rounds.fetch_add(1, Ordering::Relaxed);
                stats.batched_seqs.fetch_add(union.len() as u64, Ordering::Relaxed);
                model
                    .cache()
                    .compute_batched(union, threads, batch, |chunk| model.predict_path_batch(chunk));
            }
            metrics.coalesced_jobs.fetch_add(gates.len() as u64, Ordering::Relaxed);
            stats.coalesced_jobs.fetch_add(gates.len() as u64, Ordering::Relaxed);
            for gate in gates {
                gate.open();
            }
        }
    }

    /// Queues `missing` (token sequences absent from the cache, as
    /// reported by `PathPredictionCache::missing_unique`) for a FIFO
    /// fill round. Returns the gate to wait on; an empty submission gets
    /// an already-open gate.
    pub fn submit(&self, missing: Vec<Vec<usize>>) -> Arc<Gate> {
        let gate = Arc::new(Gate::default());
        if missing.is_empty() {
            gate.open();
            return gate;
        }
        lock_or_recover(&self.shared.queue).push_back(Job { missing, gate: Arc::clone(&gate) });
        self.shared.cv.notify_one();
        gate
    }

    /// Jobs currently waiting in the queue (exported per replica as
    /// `queue_depth` in `/metrics`).
    pub fn queue_depth(&self) -> usize {
        lock_or_recover(&self.shared.queue).len()
    }

    /// Finishes queued rounds, then stops the batcher thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}
