//! The cross-request micro-batcher.
//!
//! Each `/predict` handler discovers which of its path token sequences
//! are missing from the model's shared [`PathPredictionCache`] and
//! submits them here instead of running inference itself. A single
//! batcher thread drains *all* currently queued submissions at once,
//! unions their missing sequences, and fills the cache with one
//! length-bucketed, `SNS_BATCH`-packed, `SNS_THREADS`-parallel pass —
//! so concurrent requests' sequences ride in the same packed
//! Circuitformer forwards.
//!
//! Coalescing is emergent rather than timer-driven: while a round is
//! running, newly arriving submissions pile up in the queue and are all
//! taken by the next drain. Under load the batch size grows; at
//! concurrency 1 a request never waits on a timer. Because per-sequence
//! predictions are independent of their batch-mates (see
//! `Circuitformer::predict_batch`), coalescing changes throughput only,
//! never a single bit of any response.
//!
//! [`PathPredictionCache`]: sns_core::PathPredictionCache

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use sns_core::SnsModel;

use crate::metrics::Metrics;

/// Completion gate a handler blocks on after submitting.
#[derive(Debug, Default)]
pub struct Gate {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    /// Blocks until the submission's fill round completes, or until
    /// `deadline` passes. Returns `true` when the round completed.
    ///
    /// A `false` return does not cancel the round — the cache still gets
    /// filled (useful work for future requests); only this caller stops
    /// waiting.
    pub fn wait(&self, deadline: Option<Instant>) -> bool {
        let mut done = self.done.lock().expect("gate lock poisoned");
        loop {
            if *done {
                return true;
            }
            match deadline {
                None => done = self.cv.wait(done).expect("gate lock poisoned"),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return false;
                    }
                    let (g, _) = self
                        .cv
                        .wait_timeout(done, d - now)
                        .expect("gate lock poisoned");
                    done = g;
                }
            }
        }
    }

    fn open(&self) {
        *self.done.lock().expect("gate lock poisoned") = true;
        self.cv.notify_all();
    }
}

struct Job {
    missing: Vec<Vec<usize>>,
    gate: Arc<Gate>,
}

struct Shared {
    queue: Mutex<Vec<Job>>,
    cv: Condvar,
    shutdown: AtomicBool,
}

/// Owns the batcher thread; dropped last by the server on shutdown.
pub struct MicroBatcher {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl MicroBatcher {
    /// Starts the batcher thread for `model`, filling the model's shared
    /// cache with `threads`-parallel, `batch`-packed rounds.
    pub fn start(model: Arc<SnsModel>, threads: usize, batch: usize, metrics: Arc<Metrics>) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Vec::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("sns-batcher".into())
            .spawn(move || Self::run(&worker_shared, &model, threads, batch, &metrics))
            .expect("spawn batcher thread");
        MicroBatcher { shared, worker: Some(worker) }
    }

    fn run(shared: &Shared, model: &SnsModel, threads: usize, batch: usize, metrics: &Metrics) {
        loop {
            let jobs: Vec<Job> = {
                let mut queue = shared.queue.lock().expect("batcher lock poisoned");
                while queue.is_empty() {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    queue = shared.cv.wait(queue).expect("batcher lock poisoned");
                }
                std::mem::take(&mut *queue)
            };
            // Union the jobs' missing sets in first-occurrence order —
            // concurrent requests for the same design compute once.
            let mut seen: HashSet<&[usize]> = HashSet::new();
            let mut union: Vec<Vec<usize>> = Vec::new();
            for job in &jobs {
                for seq in &job.missing {
                    if seen.insert(seq.as_slice()) {
                        union.push(seq.clone());
                    }
                }
            }
            metrics.batch_rounds.fetch_add(1, Ordering::Relaxed);
            metrics.coalesced_jobs.fetch_add(jobs.len() as u64, Ordering::Relaxed);
            metrics.batched_seqs.fetch_add(union.len() as u64, Ordering::Relaxed);
            model
                .cache()
                .compute_batched(union, threads, batch, |chunk| model.predict_path_batch(chunk));
            for job in jobs {
                job.gate.open();
            }
        }
    }

    /// Queues `missing` (token sequences absent from the cache, as
    /// reported by `PathPredictionCache::missing_unique`) for the next
    /// fill round. Returns the gate to wait on; an empty submission gets
    /// an already-open gate.
    pub fn submit(&self, missing: Vec<Vec<usize>>) -> Arc<Gate> {
        let gate = Arc::new(Gate::default());
        if missing.is_empty() {
            gate.open();
            return gate;
        }
        {
            let mut queue = self.shared.queue.lock().expect("batcher lock poisoned");
            queue.push(Job { missing, gate: Arc::clone(&gate) });
        }
        self.shared.cv.notify_one();
        gate
    }

    /// Finishes queued rounds, then stops the batcher thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        if let Some(worker) = self.worker.take() {
            worker.join().expect("batcher thread panicked");
        }
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}
