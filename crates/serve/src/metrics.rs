//! Service counters and per-stage latency histograms on plain atomics —
//! no locks anywhere on the metrics path, so instrumented stages cost a
//! handful of relaxed atomic adds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use sns_rt::json::Json;

/// Number of histogram buckets: bucket `i < NB-1` counts latencies in
/// `[2^i, 2^(i+1))` microseconds; the last bucket is the overflow
/// (≥ ~0.5 h — nothing legitimate lands there).
const NB: usize = 32;

/// A lock-free log2-bucketed latency histogram (microseconds).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; NB],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let idx = if us == 0 { 0 } else { (63 - us.leading_zeros() as usize).min(NB - 1) };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// An upper bound (bucket boundary) for quantile `q` in microseconds,
    /// or 0 with no samples.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1); // upper edge of bucket i
            }
        }
        u64::MAX
    }

    /// The JSON export: count, sum, approximate p50/p99, and the sparse
    /// bucket list as `[floor_us, count]` pairs.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| {
                    Json::Arr(vec![Json::UInt(1u64 << i), Json::UInt(n)])
                })
            })
            .collect();
        Json::obj(vec![
            ("count", Json::UInt(self.count())),
            ("sum_us", Json::UInt(self.sum_us.load(Ordering::Relaxed))),
            ("p50_us", Json::UInt(self.quantile_us(0.50))),
            ("p99_us", Json::UInt(self.quantile_us(0.99))),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

/// All counters exported by `GET /metrics`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Every request that was successfully read off a socket.
    pub requests_total: AtomicU64,
    /// `POST /predict` requests accepted for processing.
    pub predict_requests: AtomicU64,
    /// Predictions that completed with a 200.
    pub predict_ok: AtomicU64,
    /// `/predict` requests that registered a design session
    /// (`"session": true` or an ECO patch).
    pub session_predicts: AtomicU64,
    /// ECO requests (`{"base", "patch"}`) accepted for processing.
    pub eco_requests: AtomicU64,
    /// Responses by status class.
    pub responses_2xx: AtomicU64,
    /// 4xx responses (bad requests, not-found, oversized bodies).
    pub responses_4xx: AtomicU64,
    /// 5xx responses (overload rejections, deadline timeouts).
    pub responses_5xx: AtomicU64,
    /// Connections rejected with `503 + Retry-After` because the bounded
    /// accept queue was full.
    pub rejected_503: AtomicU64,
    /// Requests aborted with 504 because `SNS_DEADLINE_MS` elapsed.
    pub deadline_504: AtomicU64,
    /// Connections that died before a response could be written.
    pub conn_errors: AtomicU64,
    /// Connections closed with 408 because the peer did not deliver a
    /// complete request within the read deadline (slow-loris defence).
    pub read_timeouts: AtomicU64,
    /// Requests the consistent-hash router re-homed because the primary
    /// replica for their key was marked dead.
    pub router_failovers: AtomicU64,
    /// Completed model hot-swaps (`POST /admin/reload` or SIGHUP) that
    /// actually installed a new model. A reload that found the serving
    /// weights already current is not a swap.
    pub model_swaps: AtomicU64,
    /// Reload attempts that failed (zoo unreadable, corrupt weights,
    /// unknown model id). The serving model is untouched by a failure.
    pub reload_errors: AtomicU64,
    /// Requests whose handler panicked and was caught at the connection
    /// boundary (returned as a 500 instead of killing the worker). The
    /// front-end is supposed to be panic-free, so anything non-zero here
    /// is a bug worth paging on.
    pub panics_total: AtomicU64,
    /// Current depth of the bounded accept queue.
    pub queue_depth: AtomicU64,
    /// Requests currently being handled by workers.
    pub in_flight: AtomicU64,
    /// Micro-batcher: fill rounds executed.
    pub batch_rounds: AtomicU64,
    /// Micro-batcher: handler jobs coalesced into those rounds (more jobs
    /// than rounds ⇒ cross-request batching happened).
    pub coalesced_jobs: AtomicU64,
    /// Micro-batcher: unique sequences computed across all rounds.
    pub batched_seqs: AtomicU64,
    /// Verilog parse + elaborate latency.
    pub stage_parse: Histogram,
    /// GraphIR construction + path sampling latency.
    pub stage_sample: Histogram,
    /// Micro-batched Circuitformer inference latency (wait included).
    pub stage_infer: Histogram,
    /// Reduction + MLP refinement latency.
    pub stage_aggregate: Histogram,
    /// Whole-request latency.
    pub stage_total: Histogram,
    /// Reactor event-loop iteration busy time (time spent handling
    /// readiness after `poll` returns — *not* the blocked wait). A fat
    /// tail here means some connection handler is stalling the loop.
    pub reactor_loop: Histogram,
}

/// Per-model service tallies, keyed by (model id, weight hash) in the
/// server's model registry. A hot-swap that brings in new weights gets a
/// fresh tally; swapping back to weights served before resumes the old
/// one, so `/metrics` keeps an accurate per-model ledger across swaps.
#[derive(Debug, Default)]
pub struct ModelTally {
    /// `/predict` requests routed while this model was serving.
    pub requests: AtomicU64,
    /// Of those, predictions that completed with a 200.
    pub ok: AtomicU64,
    /// Whole-request latency while this model was serving.
    pub latency: Histogram,
}

impl ModelTally {
    /// The per-model `/metrics` fragment (joined with id/hash by the
    /// server, which owns the registry).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("requests", Json::UInt(self.requests.load(Ordering::Relaxed))),
            ("ok", Json::UInt(self.ok.load(Ordering::Relaxed))),
            ("latency_us", self.latency.to_json()),
        ])
    }
}

/// Per-replica service counters, shared between the router, the
/// replica's micro-batcher, and the `/metrics` exporter. Plain atomics,
/// same discipline as [`Metrics`].
#[derive(Debug, Default)]
pub struct ReplicaStats {
    /// Requests the router homed on this replica.
    pub routed: AtomicU64,
    /// Routed requests that ran the full pipeline here (any status).
    pub completed: AtomicU64,
    /// Routed requests shed with 503 because the replica was marked dead
    /// mid-flight.
    pub shed: AtomicU64,
    /// Gauge: routed requests not yet completed or shed.
    pub in_flight: AtomicU64,
    /// This replica's micro-batcher: fill rounds executed.
    pub batch_rounds: AtomicU64,
    /// This replica's micro-batcher: jobs served.
    pub coalesced_jobs: AtomicU64,
    /// This replica's micro-batcher: unique sequences computed.
    pub batched_seqs: AtomicU64,
}

/// A point-in-time view of one replica for the `/metrics` export,
/// assembled by the server from [`ReplicaStats`], the replica's
/// liveness flag, its batcher queue, and its private cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplicaSnapshot {
    /// Whether the router currently considers this replica alive.
    pub alive: bool,
    /// See [`ReplicaStats::routed`].
    pub routed: u64,
    /// See [`ReplicaStats::completed`].
    pub completed: u64,
    /// See [`ReplicaStats::shed`].
    pub shed: u64,
    /// See [`ReplicaStats::in_flight`].
    pub in_flight: u64,
    /// Jobs waiting in this replica's micro-batcher queue.
    pub queue_depth: u64,
    /// See [`ReplicaStats::batch_rounds`].
    pub batch_rounds: u64,
    /// See [`ReplicaStats::coalesced_jobs`].
    pub coalesced_jobs: u64,
    /// See [`ReplicaStats::batched_seqs`].
    pub batched_seqs: u64,
    /// This replica's private path-prediction cache.
    pub cache: CacheStats,
}

impl ReplicaStats {
    /// Snapshots the atomic counters together with externally owned state
    /// (liveness, batcher queue depth, cache stats).
    pub fn snapshot(&self, alive: bool, queue_depth: u64, cache: CacheStats) -> ReplicaSnapshot {
        ReplicaSnapshot {
            alive,
            routed: self.routed.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            queue_depth,
            batch_rounds: self.batch_rounds.load(Ordering::Relaxed),
            coalesced_jobs: self.coalesced_jobs.load(Ordering::Relaxed),
            batched_seqs: self.batched_seqs.load(Ordering::Relaxed),
            cache,
        }
    }
}

/// Cache statistics snapshot merged into the export by the server (the
/// cache itself lives on the model).
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Entries currently cached.
    pub entries: usize,
    /// Entry cap, if bounded.
    pub capacity: Option<usize>,
    /// Unique-sequence hits at fill time.
    pub hits: u64,
    /// Unique-sequence misses at fill time.
    pub misses: u64,
    /// Entries evicted by the bound.
    pub evictions: u64,
}

/// Inference-kernel snapshot merged into the export by the server (the
/// prepacked weight panels live on the model).
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelStats {
    /// Resident bytes of prepacked weight panels (Circuitformer blocks,
    /// head, and the three Aggregation MLPs). Zero means the model is
    /// running unpacked — a training-in-progress or load-failure signal.
    pub prepack_bytes: usize,
    /// Whether the experimental int8 path (`SNS_INT8=1`) is active.
    pub int8: bool,
}

/// Module-elaboration-cache statistics snapshot merged into the export
/// by the server (the cache itself lives on the session store).
#[derive(Debug, Clone, Copy, Default)]
pub struct ElabCacheStats {
    /// Elaboration units currently cached.
    pub entries: usize,
    /// Unit cap, if bounded.
    pub capacity: Option<usize>,
    /// Unit-key lookup hits.
    pub hits: u64,
    /// Unit-key lookup misses (each one elaborated a module body).
    pub misses: u64,
    /// Units evicted by the bound.
    pub evictions: u64,
    /// Modules invalidated by ECO patches (content hash changed, so the
    /// old units became unreachable).
    pub invalidations: u64,
    /// Live design sessions available as ECO bases.
    pub sessions: usize,
}

impl Metrics {
    fn g(v: &AtomicU64) -> Json {
        Json::UInt(v.load(Ordering::Relaxed))
    }

    /// The full `/metrics` document.
    ///
    /// `replicas` carries one snapshot per model replica; the top-level
    /// `cache` section aggregates across them (sums of entries / hits /
    /// misses / evictions, so the `entries == misses − evictions`
    /// invariant survives sharding; `capacity` is the *per-replica*
    /// bound). The per-replica detail is exported under `"replicas"`.
    ///
    /// `models` carries one pre-assembled object per model the server
    /// has ever served (id, weight hash, [`ModelTally`] counters); it is
    /// exported verbatim under `"models"` alongside the swap counters.
    pub fn to_json(
        &self,
        replicas: &[ReplicaSnapshot],
        elab: ElabCacheStats,
        kernels: KernelStats,
        models: Vec<Json>,
    ) -> Json {
        let cache = CacheStats {
            entries: replicas.iter().map(|r| r.cache.entries).sum(),
            capacity: replicas.first().and_then(|r| r.cache.capacity),
            hits: replicas.iter().map(|r| r.cache.hits).sum(),
            misses: replicas.iter().map(|r| r.cache.misses).sum(),
            evictions: replicas.iter().map(|r| r.cache.evictions).sum(),
        };
        let replica_json: Vec<Json> = replicas
            .iter()
            .map(|r| {
                let lookups = r.cache.hits + r.cache.misses;
                let hit_rate =
                    if lookups == 0 { 0.0 } else { r.cache.hits as f64 / lookups as f64 };
                Json::obj(vec![
                    ("alive", Json::Bool(r.alive)),
                    ("routed", Json::UInt(r.routed)),
                    ("completed", Json::UInt(r.completed)),
                    ("shed", Json::UInt(r.shed)),
                    ("in_flight", Json::UInt(r.in_flight)),
                    ("queue_depth", Json::UInt(r.queue_depth)),
                    (
                        "batcher",
                        Json::obj(vec![
                            ("rounds", Json::UInt(r.batch_rounds)),
                            ("coalesced_jobs", Json::UInt(r.coalesced_jobs)),
                            ("batched_seqs", Json::UInt(r.batched_seqs)),
                        ]),
                    ),
                    (
                        "cache",
                        Json::obj(vec![
                            ("entries", Json::UInt(r.cache.entries as u64)),
                            ("hits", Json::UInt(r.cache.hits)),
                            ("misses", Json::UInt(r.cache.misses)),
                            ("evictions", Json::UInt(r.cache.evictions)),
                            ("hit_rate", Json::Num(hit_rate)),
                        ]),
                    ),
                ])
            })
            .collect();
        let lookups = cache.hits + cache.misses;
        let hit_rate =
            if lookups == 0 { 0.0 } else { cache.hits as f64 / lookups as f64 };
        let elab_lookups = elab.hits + elab.misses;
        let elab_hit_rate =
            if elab_lookups == 0 { 0.0 } else { elab.hits as f64 / elab_lookups as f64 };
        Json::obj(vec![
            ("requests_total", Self::g(&self.requests_total)),
            ("predict_requests", Self::g(&self.predict_requests)),
            ("predict_ok", Self::g(&self.predict_ok)),
            ("session_predicts", Self::g(&self.session_predicts)),
            ("eco_requests", Self::g(&self.eco_requests)),
            ("sessions", Json::UInt(elab.sessions as u64)),
            (
                "responses",
                Json::obj(vec![
                    ("2xx", Self::g(&self.responses_2xx)),
                    ("4xx", Self::g(&self.responses_4xx)),
                    ("5xx", Self::g(&self.responses_5xx)),
                ]),
            ),
            ("rejected_503", Self::g(&self.rejected_503)),
            ("deadline_504", Self::g(&self.deadline_504)),
            ("conn_errors", Self::g(&self.conn_errors)),
            ("read_timeouts", Self::g(&self.read_timeouts)),
            ("panics_total", Self::g(&self.panics_total)),
            ("queue_depth", Self::g(&self.queue_depth)),
            ("in_flight", Self::g(&self.in_flight)),
            (
                "cache",
                Json::obj(vec![
                    ("entries", Json::UInt(cache.entries as u64)),
                    (
                        "capacity",
                        cache.capacity.map_or(Json::Null, |c| Json::UInt(c as u64)),
                    ),
                    ("hits", Json::UInt(cache.hits)),
                    ("misses", Json::UInt(cache.misses)),
                    ("evictions", Json::UInt(cache.evictions)),
                    ("hit_rate", Json::Num(hit_rate)),
                ]),
            ),
            (
                "elab_cache",
                Json::obj(vec![
                    ("entries", Json::UInt(elab.entries as u64)),
                    (
                        "capacity",
                        elab.capacity.map_or(Json::Null, |c| Json::UInt(c as u64)),
                    ),
                    ("hits", Json::UInt(elab.hits)),
                    ("misses", Json::UInt(elab.misses)),
                    ("evictions", Json::UInt(elab.evictions)),
                    ("invalidations", Json::UInt(elab.invalidations)),
                    ("hit_rate", Json::Num(elab_hit_rate)),
                ]),
            ),
            (
                "kernels",
                Json::obj(vec![
                    ("prepack_bytes", Json::UInt(kernels.prepack_bytes as u64)),
                    ("int8", Json::Bool(kernels.int8)),
                ]),
            ),
            (
                "batcher",
                Json::obj(vec![
                    ("rounds", Self::g(&self.batch_rounds)),
                    ("coalesced_jobs", Self::g(&self.coalesced_jobs)),
                    ("batched_seqs", Self::g(&self.batched_seqs)),
                ]),
            ),
            (
                "router",
                Json::obj(vec![
                    ("replicas", Json::UInt(replicas.len() as u64)),
                    ("failovers", Self::g(&self.router_failovers)),
                ]),
            ),
            ("model_swaps", Self::g(&self.model_swaps)),
            ("reload_errors", Self::g(&self.reload_errors)),
            ("models", Json::Arr(models)),
            ("replicas", Json::Arr(replica_json)),
            (
                "stages_us",
                Json::obj(vec![
                    ("parse", self.stage_parse.to_json()),
                    ("sample", self.stage_sample.to_json()),
                    ("infer", self.stage_infer.to_json()),
                    ("aggregate", self.stage_aggregate.to_json()),
                    ("total", self.stage_total.to_json()),
                ]),
            ),
            ("reactor_loop_us", self.reactor_loop.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for us in [1u64, 3, 3, 100, 100, 100, 100, 5000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 8);
        // p50 falls in the 64..128 bucket → upper edge 128.
        assert_eq!(h.quantile_us(0.5), 128);
        // p99 falls in the 4096..8192 bucket → upper edge 8192.
        assert_eq!(h.quantile_us(0.99), 8192);
        let j = h.to_json();
        assert_eq!(j.get("count").unwrap().as_u64().unwrap(), 8);
        assert_eq!(j.get("sum_us").unwrap().as_u64().unwrap(), 1 + 6 + 400 + 5000);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.99), 0);
        assert!(h.to_json().get("buckets").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn zero_and_huge_durations_do_not_panic() {
        let h = Histogram::default();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(1 << 40));
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn metrics_export_has_the_documented_shape() {
        let m = Metrics::default();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.stage_total.record(Duration::from_millis(2));
        let stats = ReplicaStats::default();
        stats.routed.fetch_add(9, Ordering::Relaxed);
        let snap = stats.snapshot(
            true,
            2,
            CacheStats { entries: 7, capacity: Some(100), hits: 3, misses: 1, evictions: 0 },
        );
        let j = m.to_json(
            &[snap],
            ElabCacheStats {
                entries: 5,
                capacity: Some(1024),
                hits: 6,
                misses: 7,
                evictions: 2,
                invalidations: 4,
                sessions: 3,
            },
            KernelStats { prepack_bytes: 4096, int8: false },
            vec![Json::obj(vec![("id", Json::Str("m-000001".into()))])],
        );
        assert_eq!(j.get("requests_total").unwrap().as_u64().unwrap(), 3);
        let cache = j.get("cache").unwrap();
        assert_eq!(cache.get("capacity").unwrap().as_u64().unwrap(), 100);
        assert!((cache.get("hit_rate").unwrap().as_f64().unwrap() - 0.75).abs() < 1e-12);
        let elab = j.get("elab_cache").unwrap();
        assert_eq!(elab.get("entries").unwrap().as_u64().unwrap(), 5);
        assert_eq!(elab.get("invalidations").unwrap().as_u64().unwrap(), 4);
        assert!((elab.get("hit_rate").unwrap().as_f64().unwrap() - 6.0 / 13.0).abs() < 1e-12);
        assert_eq!(j.get("sessions").unwrap().as_u64().unwrap(), 3);
        let kernels = j.get("kernels").unwrap();
        assert_eq!(kernels.get("prepack_bytes").unwrap().as_u64().unwrap(), 4096);
        assert!(!kernels.get("int8").unwrap().as_bool().unwrap());
        assert!(j.get("stages_us").unwrap().get("total").unwrap().get("count").is_ok());
        let router = j.get("router").unwrap();
        assert_eq!(router.get("replicas").unwrap().as_u64().unwrap(), 1);
        let replicas = j.get("replicas").unwrap().as_arr().unwrap();
        assert_eq!(replicas.len(), 1);
        assert!(replicas[0].get("alive").unwrap().as_bool().unwrap());
        assert_eq!(replicas[0].get("routed").unwrap().as_u64().unwrap(), 9);
        assert_eq!(replicas[0].get("queue_depth").unwrap().as_u64().unwrap(), 2);
        assert!(j.get("reactor_loop_us").unwrap().get("count").is_ok());
        assert_eq!(j.get("model_swaps").unwrap().as_u64().unwrap(), 0);
        let models = j.get("models").unwrap().as_arr().unwrap();
        assert_eq!(models.len(), 1);
        assert_eq!(models[0].get("id").unwrap().as_str().unwrap(), "m-000001");
        // The export is valid JSON text.
        sns_rt::json::parse(&j.print()).unwrap();
    }

    #[test]
    fn aggregate_cache_preserves_the_entries_invariant_across_replicas() {
        let m = Metrics::default();
        let snaps: Vec<ReplicaSnapshot> = (0..4u64)
            .map(|i| {
                ReplicaStats::default().snapshot(
                    i != 2,
                    0,
                    CacheStats {
                        entries: (10 + i) as usize,
                        capacity: Some(100),
                        hits: 5 * i,
                        misses: 10 + i + 3, // evictions = 3 per replica
                        evictions: 3,
                    },
                )
            })
            .collect();
        let j = m.to_json(&snaps, ElabCacheStats::default(), KernelStats::default(), Vec::new());
        let cache = j.get("cache").unwrap();
        let entries = cache.get("entries").unwrap().as_u64().unwrap();
        let misses = cache.get("misses").unwrap().as_u64().unwrap();
        let evictions = cache.get("evictions").unwrap().as_u64().unwrap();
        // Summing per-replica stats keeps the seed invariant intact.
        assert_eq!(entries, misses - evictions);
        assert_eq!(j.get("replicas").unwrap().as_arr().unwrap().len(), 4);
        assert!(!j.get("replicas").unwrap().as_arr().unwrap()[2]
            .get("alive")
            .unwrap()
            .as_bool()
            .unwrap());
    }
}
