//! Consistent-hash routing for `sns-shard` mode.
//!
//! With N model replicas — each owning a private
//! [`PathPredictionCache`](sns_core::PathPredictionCache) and
//! [`MicroBatcher`](crate::MicroBatcher) — the router decides which
//! replica serves a request. The goal is *cache affinity*: repeated
//! requests for the same design must land on the same replica, so the
//! per-path predictions it computed the first time are hits the next
//! time. A round-robin or random router would spray a hot design across
//! all replicas and pay the cold-cache cost N times; the Zipf test at
//! the bottom of this file quantifies exactly that gap.
//!
//! The routing key is *content*, not connection identity: the FNV-128
//! hash (`sns_netlist::hash`, the same primitive behind session base
//! tokens and ECO invalidation) of the design source + top module, or of
//! the session base token for ECO patches. Content keys make placement
//! deterministic across server restarts and identical for byte-identical
//! designs regardless of which client sends them.
//!
//! The ring is a classic consistent-hash circle with [`VNODES`] virtual
//! points per replica (smoothing the per-replica load to within a few
//! percent). Failover walks clockwise from the key's home point,
//! skipping replicas marked dead — so when a replica dies, only *its*
//! keys move (to their ring successors), and they move *back* when it
//! rejoins. Nothing else reshuffles, which is the property that keeps
//! the other replicas' caches warm through a failure.

use sns_netlist::hash::fnv128_bytes;

/// Virtual points per replica on the ring. 64 keeps the max/mean load
/// ratio under ~1.25 for small replica counts while the ring stays tiny
/// (N×64 points, binary-searched).
pub const VNODES: usize = 64;

/// Folds a 128-bit FNV digest to the 64-bit ring keyspace, mixing both
/// streams so designs differing only in bytes seen by one stream still
/// get distinct keys.
fn fold(digest: [u64; 2]) -> u64 {
    digest[0] ^ digest[1].rotate_left(23)
}

/// The routing key for a full-design request: content hash of the
/// Verilog source and the top module name (separated by a byte that
/// cannot appear in either, so `("ab","c")` ≠ `("a","bc")`).
pub fn design_key(verilog: &str, top: &str) -> u64 {
    let mut bytes = Vec::with_capacity(verilog.len() + top.len() + 1);
    bytes.extend_from_slice(verilog.as_bytes());
    bytes.push(0xff);
    bytes.extend_from_slice(top.as_bytes());
    fold(fnv128_bytes(&bytes))
}

/// The routing key for an ECO request: hash of the session base token.
/// Base tokens are themselves content-derived, so a patch series against
/// one session keeps hitting the replica that holds its warm paths.
pub fn token_key(base: &str) -> u64 {
    fold(fnv128_bytes(base.as_bytes()))
}

/// Where the ring sent a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteChoice {
    /// The chosen replica index.
    pub replica: u32,
    /// `true` when the key's home replica was dead and the request was
    /// re-homed to a ring successor.
    pub failed_over: bool,
}

/// A consistent-hash ring over `replicas` model replicas.
///
/// Construction is deterministic: the ring depends only on the replica
/// count, so two servers (or one server across restarts) with the same
/// `SNS_REPLICAS` place every key identically.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, replica)` sorted by point; binary-searched per route.
    points: Vec<(u64, u32)>,
    replicas: usize,
}

impl HashRing {
    /// Builds the ring for `replicas` replicas (at least 1 is enforced).
    pub fn new(replicas: usize) -> HashRing {
        let replicas = replicas.max(1);
        let mut points = Vec::with_capacity(replicas * VNODES);
        for r in 0..replicas {
            for v in 0..VNODES {
                // Point id hashed from (replica, vnode) — stable across
                // processes, no RandomState anywhere.
                let mut bytes = [0u8; 17];
                bytes[..8].copy_from_slice(&(r as u64).to_le_bytes());
                bytes[8] = b'#';
                bytes[9..].copy_from_slice(&(v as u64).to_le_bytes());
                points.push((fold(fnv128_bytes(&bytes)), r as u32));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0); // astronomically unlikely, but keep the walk sane
        HashRing { points, replicas }
    }

    /// Number of replicas the ring was built for.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The key's home replica, ignoring liveness. Useful for tests and
    /// for reporting where a key *would* go.
    pub fn home(&self, key: u64) -> u32 {
        let idx = self.points.partition_point(|&(p, _)| p < key) % self.points.len();
        self.points[idx].1
    }

    /// Routes `key` to its home replica, or — when `alive(home)` is
    /// false — walks the ring clockwise to the first live replica.
    /// Returns `None` when every replica is dead.
    pub fn route(&self, key: u64, alive: impl Fn(u32) -> bool) -> Option<RouteChoice> {
        let start = self.points.partition_point(|&(p, _)| p < key) % self.points.len();
        let home = self.points[start].1;
        let mut seen_dead = false;
        // Walk at most the whole ring; vnodes of dead replicas are skipped.
        for off in 0..self.points.len() {
            let (_, replica) = self.points[(start + off) % self.points.len()];
            if alive(replica) {
                return Some(RouteChoice { replica, failed_over: seen_dead && replica != home });
            }
            seen_dead = true;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_rt::StdRng;
    use std::collections::{HashSet, VecDeque};

    #[test]
    fn ring_construction_is_deterministic_across_instances() {
        // Two independently built rings (≈ a restart) agree point-for-point.
        let a = HashRing::new(4);
        let b = HashRing::new(4);
        assert_eq!(a.points, b.points);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let key = rng.next_u64();
            assert_eq!(a.home(key), b.home(key));
            assert_eq!(a.route(key, |_| true), b.route(key, |_| true));
        }
    }

    #[test]
    fn design_key_is_content_addressed_and_separator_safe() {
        assert_eq!(design_key("module m;", "m"), design_key("module m;", "m"));
        assert_ne!(design_key("module m;", "m"), design_key("module m;", "n"));
        assert_ne!(design_key("ab", "c"), design_key("a", "bc"));
        assert_ne!(token_key("sns-base-1"), token_key("sns-base-2"));
    }

    #[test]
    fn placement_is_reasonably_balanced() {
        let ring = HashRing::new(4);
        let mut counts = [0usize; 4];
        let mut rng = StdRng::seed_from_u64(42);
        let n = 40_000;
        for _ in 0..n {
            counts[ring.home(rng.next_u64()) as usize] += 1;
        }
        let mean = n / 4;
        for (r, &c) in counts.iter().enumerate() {
            assert!(
                c > mean / 2 && c < mean * 2,
                "replica {r} got {c} of {n} keys (mean {mean}) — ring badly skewed"
            );
        }
    }

    #[test]
    fn failover_moves_only_the_dead_replicas_keys_and_moves_them_back() {
        let ring = HashRing::new(4);
        let mut rng = StdRng::seed_from_u64(3);
        let keys: Vec<u64> = (0..2000).map(|_| rng.next_u64()).collect();
        let healthy: Vec<RouteChoice> = keys
            .iter()
            .map(|&k| ring.route(k, |_| true).unwrap())
            .collect();

        let dead = 2u32;
        for (i, &k) in keys.iter().enumerate() {
            let c = ring.route(k, |r| r != dead).unwrap();
            assert_ne!(c.replica, dead, "routed to a dead replica");
            if healthy[i].replica != dead {
                // Keys homed elsewhere must not move at all.
                assert_eq!(c, healthy[i], "healthy key reshuffled by unrelated failure");
            } else {
                assert!(c.failed_over, "re-homed key not flagged as failover");
            }
            // Revival restores the original placement exactly.
            assert_eq!(ring.route(k, |_| true).unwrap(), healthy[i]);
        }
        // All dead → None, never a panic or a dead pick.
        assert!(ring.route(keys[0], |_| false).is_none());
    }

    /// A bounded FIFO "cache" standing in for a replica's private
    /// `PathPredictionCache` — enough to measure routing affinity.
    struct SimCache {
        cap: usize,
        set: HashSet<u64>,
        order: VecDeque<u64>,
        hits: u64,
        lookups: u64,
    }

    impl SimCache {
        fn new(cap: usize) -> Self {
            SimCache { cap, set: HashSet::new(), order: VecDeque::new(), hits: 0, lookups: 0 }
        }

        fn touch(&mut self, key: u64) {
            self.lookups += 1;
            if self.set.contains(&key) {
                self.hits += 1;
                return;
            }
            self.set.insert(key);
            self.order.push_back(key);
            if self.order.len() > self.cap {
                if let Some(evicted) = self.order.pop_front() {
                    self.set.remove(&evicted);
                }
            }
        }
    }

    /// The satellite-4 experiment: under a Zipf-like request mix over
    /// more designs than one replica's cache can hold, consistent-hash
    /// routing (each design always on its home replica) must beat
    /// random routing (each design sprayed across all replicas) on
    /// aggregate cache hit rate.
    #[test]
    fn zipf_mix_consistent_hash_beats_random_routing_on_hit_rate() {
        const REPLICAS: usize = 4;
        const DESIGNS: usize = 2000;
        const CACHE_CAP: usize = 200; // 4×200 slots < 2000 designs: misses are real
        const REQUESTS: usize = 30_000;

        let ring = HashRing::new(REPLICAS);
        // Stable per-design keys (≈ content hashes of distinct sources).
        let design_keys: Vec<u64> =
            (0..DESIGNS).map(|d| design_key(&format!("module d{d}; endmodule"), "top")).collect();

        // Zipf(s≈1) sampling via inverse-CDF over precomputed weights.
        let weights: Vec<f64> = (1..=DESIGNS).map(|r| 1.0 / r as f64).collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(DESIGNS);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        let mut rng = StdRng::seed_from_u64(1234);
        let draw = |rng: &mut StdRng| -> usize {
            let u: f64 = rng.gen();
            cdf.partition_point(|&c| c < u).min(DESIGNS - 1)
        };

        let mut hashed: Vec<SimCache> = (0..REPLICAS).map(|_| SimCache::new(CACHE_CAP)).collect();
        let mut random: Vec<SimCache> = (0..REPLICAS).map(|_| SimCache::new(CACHE_CAP)).collect();
        for _ in 0..REQUESTS {
            let d = draw(&mut rng);
            let key = design_keys[d];
            let home = ring.route(key, |_| true).unwrap().replica as usize;
            hashed[home].touch(key);
            let spray = rng.gen_range(0..REPLICAS);
            random[spray].touch(key);
        }

        let rate = |caches: &[SimCache]| {
            let hits: u64 = caches.iter().map(|c| c.hits).sum();
            let lookups: u64 = caches.iter().map(|c| c.lookups).sum();
            hits as f64 / lookups as f64
        };
        let hashed_rate = rate(&hashed);
        let random_rate = rate(&random);
        assert!(
            hashed_rate > random_rate + 0.05,
            "consistent hashing should clearly win: hashed {hashed_rate:.3} vs random {random_rate:.3}"
        );
    }
}
