//! # sns-serve
//!
//! A hermetic HTTP/1.1 inference daemon for the SNS synthesis predictor,
//! built on `std::net::TcpListener` alone — no async runtime, no HTTP
//! framework, no serde. JSON comes from `sns_rt::json`, parallelism from
//! `sns_rt::pool`, and the model from `sns-core`.
//!
//! The paper's whole value proposition is interactive-speed PPA
//! estimation; this crate is the network-facing layer that turns a
//! loaded [`SnsModel`](sns_core::SnsModel) into a service:
//!
//! * **`POST /predict`** — body `{"verilog": "...", "top": "...",
//!   "clock_ps"?: f64, "activity"?: {reg: coeff}}`; replies with the
//!   [`DesignPrediction`](sns_core::DesignPrediction) fields as JSON
//!   (`timing_ps`, `area_um2`, `power_mw`, `path_count`,
//!   `critical_path`, `runtime_us`, plus `slack_ps`/`meets_clock` when a
//!   target clock was given). Responses are **bit-identical** to a
//!   direct `SnsModel::predict_verilog` call. Two incremental body
//!   forms serve ECO workflows: `{"verilog", "top", "session": true}`
//!   registers the design as a session and returns a content-addressed
//!   `base` token, and `{"base": token, "patch": "<module sources>"}`
//!   re-predicts through the warm session — only modules whose content
//!   hash (or a transitively instantiated module's hash) changed are
//!   re-elaborated, only terminals crossing them re-sampled, and the
//!   answer is bit-identical to a from-scratch run (unknown/expired
//!   base ⇒ `404`, `kind: "session"`).
//! * **`GET /metrics`** — counters, queue/in-flight gauges, cache
//!   hit/miss statistics, module-elab-cache and session counters,
//!   micro-batcher coalescing stats, and per-stage log2 latency
//!   histograms, all maintained on plain atomics.
//! * **`GET /healthz`** — liveness.
//!
//! ## Event-driven connection core
//!
//! Socket I/O is readiness-based: a single [`reactor`] thread owns every
//! connection, framing requests incrementally over non-blocking reads
//! (`poll(2)` via `sns_rt::net` — still zero dependencies) and writing
//! responses as `POLLOUT` allows. Workers only ever see complete
//! requests through a bounded dispatch queue, so a slow or hostile peer
//! (slow-loris headers, stalled reads, half-closed sockets) costs one
//! connection-table entry, never a thread, and cannot head-of-line-block
//! other requests.
//!
//! ## Replica sharding (`sns-shard` mode)
//!
//! With `SNS_REPLICAS=N` the server runs N model replicas, each owning a
//! private path-prediction cache and [`MicroBatcher`](batcher::MicroBatcher),
//! behind a consistent-hash router ([`shard`]) keyed on design content
//! (FNV-128 of the Verilog + top, or of the session base token for ECO
//! patches). Identical designs always land on the same warm cache;
//! killing a replica moves only its keys (clean `503`s for requests
//! caught mid-flight), and a revived replica resumes its old range.
//! `/metrics` gains per-replica queue depth, shed counts, cache stats,
//! and reactor loop latency.
//!
//! ## Throughput under concurrency
//!
//! Concurrent requests do not run inference independently: each handler
//! submits its *uncached* path sequences to its replica's
//! [`MicroBatcher`](batcher::MicroBatcher), which serves jobs FIFO in
//! rounds bounded at about one `SNS_BATCH` of unique sequences —
//! cross-request de-duplication happens both inside a round (the union
//! is deduplicated) and through the cache (queued jobs re-filter
//! against what earlier rounds already computed), so a request's
//! latency tracks *its own* missing work plus at most one well-packed
//! forward instead of the largest union in the queue, while identical
//! concurrent designs still compute once.
//!
//! ## Robustness
//!
//! Bounded dispatch queue and connection cap with `503 + Retry-After`
//! shedding, a fixed per-connection framing deadline (`408` for
//! slow-loris peers), a per-request deadline (`SNS_DEADLINE_MS`) checked
//! before every expensive stage (`504`), a request body limit (`413`),
//! structured JSON error bodies for malformed HTTP or JSON (`400`), and
//! graceful shutdown that drains queued and in-flight requests (SIGTERM
//! / ctrl-C in the `sns-serve` binary).
//!
//! The Verilog body is *untrusted*: the `sns-netlist` front-end is total
//! on arbitrary bytes (depth-bounded parsing, budget-checked
//! elaboration), so malformed source is a structured `400` and source
//! that exceeds the deployment's elaboration budgets (`SNS_MAX_CELLS`,
//! `SNS_MAX_NET_BITS`, `SNS_MAX_REPLICATION`) is a `422`. As defense in
//! depth, each handler wraps the pipeline in `catch_unwind`: a residual
//! panic costs one `500` (and bumps the `panics_total` metric) rather
//! than the worker thread.
//!
//! Environment knobs: `SNS_REPLICAS`, `SNS_WORKERS` (alias
//! `SNS_SERVE_WORKERS`), `SNS_QUEUE_CAP`, `SNS_MAX_CONNS`,
//! `SNS_MAX_BODY`, `SNS_DEADLINE_MS`, `SNS_CACHE_CAP` (0 = unbounded),
//! plus the model-level `SNS_THREADS` / `SNS_BATCH` and the elaboration
//! budgets above.

pub mod batcher;
pub mod http;
pub mod metrics;
pub(crate) mod reactor;
pub mod server;
pub mod shard;

pub use batcher::MicroBatcher;
pub use http::{read_request, write_response, HttpError, Request};
pub use metrics::{
    CacheStats, ElabCacheStats, Histogram, KernelStats, Metrics, ModelTally, ReplicaSnapshot,
    ReplicaStats,
};
pub use server::{ReloadError, ReloadOutcome, ServeConfig, Server};
pub use shard::{design_key, token_key, HashRing, RouteChoice};
