//! Server assembly: the reactor thread, the worker pool, the replica
//! set with its consistent-hash router, and the `/predict` pipeline.
//!
//! ```text
//! reactor ──► dispatch queue ──► workers ──► router (FNV-128 of content)
//!    ▲  (full → 503 + Retry-After)  │            │
//!    │                              │            ▼ replica k (alive?)
//!    └── completions + waker ◄──────┘   parse ► sample ► batcher_k ► cache_k
//!                                                └─► reduce + MLP (predict_primed)
//! ```
//!
//! Connection I/O lives entirely on the reactor thread
//! ([`crate::reactor`]); workers only ever see complete requests, so
//! inference latency and socket behaviour cannot interfere. In
//! **shard mode** (`replicas > 1`) each replica owns a full model clone
//! with a private path cache and micro-batcher; the router keys on
//! design content (see [`crate::shard`]) so identical designs always
//! land on the same warm cache. Replicas can be marked dead
//! ([`Server::kill_replica`]) — in-flight requests routed there get a
//! clean `503` at the next stage boundary, new requests fail over along
//! the ring, and a revived replica resumes exactly its old key range.
//!
//! Every stage boundary checks the per-request deadline, so a request
//! that has already blown `SNS_DEADLINE_MS` never starts sampling or
//! inference.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sns_core::{
    load_from_zoo, model_weight_hash, SessionError, SessionOutcome, SessionStore, SnsModel,
    ZooError,
};
use sns_graphir::GraphIr;
use sns_netlist::ModuleElabCache;
use sns_rt::json::{parse as parse_json, Json};
use sns_rt::net::Waker;
use sns_sampler::PathSampler;

use crate::batcher::MicroBatcher;
use crate::http::{build_response, Request};
use crate::metrics::{
    CacheStats, ElabCacheStats, KernelStats, Metrics, ModelTally, ReplicaSnapshot, ReplicaStats,
};
use crate::reactor::reactor_loop;
use crate::shard::{design_key, token_key, HashRing};

/// Locks a mutex, recovering from poisoning (see `batcher.rs` for the
/// rationale; the serve front-end must stay panic-free regardless).
pub(crate) fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Reads a positive integer environment knob.
fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Everything tunable about the daemon. `Default` is suitable for tests;
/// [`from_env`](Self::from_env) layers the documented `SNS_*` knobs on
/// top for production use.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Request worker threads (routing + inference; socket I/O is the
    /// reactor's, never theirs).
    pub workers: usize,
    /// Bounded dispatch-queue length; beyond it requests get `503`.
    pub queue_cap: usize,
    /// Request body byte limit (`413` beyond it).
    pub max_body: usize,
    /// Per-request deadline; stages are never started past it (`504`).
    pub deadline: Option<Duration>,
    /// Entry cap installed on each replica's path cache (`None` =
    /// unbounded).
    pub cache_cap: Option<usize>,
    /// Inference pool threads per batch round (`SNS_THREADS`).
    pub threads: usize,
    /// Sequences per packed Circuitformer forward (`SNS_BATCH`).
    pub batch: usize,
    /// Per-connection framing deadline: a complete request must arrive
    /// within this budget of the accept (fixed at accept time — trickling
    /// bytes does not extend it), else `408`.
    pub read_timeout: Duration,
    /// Live design sessions retained as ECO bases (`SNS_SESSION_CAP`).
    pub session_cap: usize,
    /// Module-elaboration-unit cache entries (`SNS_ELAB_CACHE_CAP`).
    pub elab_cache_cap: usize,
    /// Model replicas behind the consistent-hash router (`SNS_REPLICAS`).
    /// 1 = classic single-replica serving.
    pub replicas: usize,
    /// Connection-count cap; accepts beyond it are shed with `503`
    /// (`SNS_MAX_CONNS`).
    pub max_conns: usize,
    /// Test-only hooks (`x-sns-sleep-ms` header, `GET /debug/blob`).
    /// Never enabled from the environment — deterministic concurrency
    /// tests set it explicitly.
    pub debug_hooks: bool,
    /// Model-zoo directory (`SNS_ZOO_DIR`) backing `POST /admin/reload`
    /// and SIGHUP hot-swaps. `None` disables reloading (`409`).
    pub zoo_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_cap: 64,
            max_body: 1 << 20,
            deadline: None,
            // A long-lived server bounds the cache so memory stays flat
            // under unbounded design diversity; the CLI stays unbounded.
            cache_cap: Some(1 << 18),
            threads: sns_rt::pool::default_threads(),
            batch: sns_rt::pool::default_batch(),
            read_timeout: Duration::from_secs(10),
            session_cap: sns_core::session::DEFAULT_SESSION_CAP,
            elab_cache_cap: ModuleElabCache::DEFAULT_CAPACITY,
            replicas: 1,
            max_conns: 1024,
            debug_hooks: false,
            zoo_dir: None,
        }
    }
}

impl ServeConfig {
    /// The default configuration with every `SNS_*` environment knob
    /// applied: `SNS_WORKERS` (alias `SNS_SERVE_WORKERS`),
    /// `SNS_QUEUE_CAP`, `SNS_MAX_BODY`, `SNS_DEADLINE_MS`,
    /// `SNS_CACHE_CAP` (0 = unbounded), `SNS_THREADS`, `SNS_BATCH`,
    /// `SNS_SESSION_CAP`, `SNS_ELAB_CACHE_CAP`, `SNS_REPLICAS`,
    /// `SNS_MAX_CONNS`, `SNS_ZOO_DIR`.
    pub fn from_env() -> Self {
        let mut c = ServeConfig::default();
        if let Some(n) = env_usize("SNS_WORKERS").or_else(|| env_usize("SNS_SERVE_WORKERS")) {
            c.workers = n;
        }
        if let Some(n) = env_usize("SNS_QUEUE_CAP") {
            c.queue_cap = n;
        }
        if let Some(n) = env_usize("SNS_MAX_BODY") {
            c.max_body = n;
        }
        if let Some(ms) = env_usize("SNS_DEADLINE_MS") {
            c.deadline = Some(Duration::from_millis(ms as u64));
        }
        if let Ok(v) = std::env::var("SNS_CACHE_CAP") {
            c.cache_cap = match v.trim().parse::<usize>() {
                Ok(0) => None,
                Ok(n) => Some(n),
                Err(_) => c.cache_cap,
            };
        }
        if let Some(n) = env_usize("SNS_SESSION_CAP") {
            c.session_cap = n;
        }
        if let Some(n) = env_usize("SNS_ELAB_CACHE_CAP") {
            c.elab_cache_cap = n;
        }
        if let Some(n) = env_usize("SNS_REPLICAS") {
            c.replicas = n;
        }
        if let Some(n) = env_usize("SNS_MAX_CONNS") {
            c.max_conns = n;
        }
        if let Ok(dir) = std::env::var("SNS_ZOO_DIR") {
            let dir = dir.trim();
            if !dir.is_empty() {
                c.zoo_dir = Some(PathBuf::from(dir));
            }
        }
        c
    }
}

/// A complete request handed from the reactor to the worker pool.
pub(crate) struct Job {
    pub conn_id: u64,
    pub request: Request,
}

/// Rendered response bytes handed back from a worker to the reactor.
pub(crate) struct Completion {
    pub conn_id: u64,
    pub bytes: Vec<u8>,
}

/// One generation of the model behind a replica slot: the model clone
/// with its private path cache, the micro-batcher filling that cache,
/// and the zoo identity the server reports for every prediction it
/// makes. Hot-swapping installs a new `Arc<ModelEntry>` in the slot;
/// requests already holding the old `Arc` finish on the model they
/// started with (bit-identical to a direct call on it), and the old
/// generation — batcher thread included — is torn down when the last
/// in-flight holder drops it.
pub(crate) struct ModelEntry {
    pub model: Arc<SnsModel>,
    pub batcher: MicroBatcher,
    pub model_id: String,
    pub weight_hash: String,
    pub tally: Arc<ModelTally>,
}

/// One model replica: a swappable [`ModelEntry`] slot, per-replica
/// counters, and a liveness flag the chaos tests (and an eventual health
/// checker) flip. Liveness and routing identity survive a model swap —
/// only the entry changes.
pub(crate) struct Replica {
    pub entry: Mutex<Arc<ModelEntry>>,
    pub stats: Arc<ReplicaStats>,
    pub alive: AtomicBool,
}

impl Replica {
    fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// The current model generation. The lock is held only for the
    /// `Arc` clone; handlers pin one generation per request.
    pub(crate) fn entry(&self) -> Arc<ModelEntry> {
        Arc::clone(&lock_or_recover(&self.entry))
    }

    fn install(&self, entry: Arc<ModelEntry>) {
        *lock_or_recover(&self.entry) = entry;
    }
}

/// A model known to the `/metrics` registry: identity plus its tally.
/// Re-installing weights served earlier resumes the existing tally.
pub(crate) struct ModelInfo {
    pub id: String,
    pub weight_hash: String,
    pub tally: Arc<ModelTally>,
}

pub(crate) struct Shared {
    pub config: ServeConfig,
    pub metrics: Arc<Metrics>,
    pub replicas: Vec<Replica>,
    pub ring: HashRing,
    /// Session store is deliberately shared across replicas: base tokens
    /// are content-addressed, and ECO requests route by token so the
    /// replica-local path caches still get affinity.
    pub sessions: SessionStore,
    /// Every model this server has served, for per-model metrics.
    pub models: Mutex<Vec<ModelInfo>>,
    /// Serializes hot-swaps (`/admin/reload`, SIGHUP) so two concurrent
    /// reloads cannot interleave replica installs.
    pub reload_lock: Mutex<()>,
    pub dispatch: Mutex<VecDeque<Job>>,
    pub dispatch_cv: Condvar,
    pub completions: Mutex<Vec<Completion>>,
    pub waker: Waker,
    pub shutdown: AtomicBool,
}

/// A running inference daemon. Dropping it without calling
/// [`join`](Self::join) aborts less gracefully (threads are detached);
/// prefer `request_shutdown` + `join`.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts accepting. Each replica's path cache is bounded
    /// to `config.cache_cap` entries.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable, or the OS
    /// error if a thread or the waker pipe cannot be created.
    pub fn start(model: SnsModel, config: ServeConfig) -> std::io::Result<Server> {
        Self::start_shared(Arc::new(model), config)
    }

    /// [`start`](Self::start) for callers that keep their own handle to
    /// the model (benchmarks clearing the cache between rounds, tests).
    /// The caller's model becomes replica 0; further replicas are
    /// [`fork_replica`](SnsModel::fork_replica) clones with cold caches.
    /// The model is served under the id `"boot"` until a hot-swap
    /// installs a zoo checkpoint.
    pub fn start_shared(model: Arc<SnsModel>, config: ServeConfig) -> std::io::Result<Server> {
        Self::start_named(model, "boot", config)
    }

    /// [`start_shared`](Self::start_shared) with an explicit model id —
    /// the identity `/metrics` and the `x-sns-model-id` response header
    /// report (e.g. the zoo entry id the model was loaded from).
    pub fn start_named(
        model: Arc<SnsModel>,
        model_id: &str,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        model.cache().set_capacity(config.cache_cap);
        let metrics = Arc::new(Metrics::default());
        let weight_hash = model_weight_hash(&model);
        let tally = Arc::new(ModelTally::default());
        let replica_count = config.replicas.max(1);
        let stats: Vec<Arc<ReplicaStats>> =
            (0..replica_count).map(|_| Arc::new(ReplicaStats::default())).collect();
        let entries =
            build_entries(&model, model_id, &weight_hash, &tally, &config, &metrics, &stats)?;
        let replicas: Vec<Replica> = entries
            .into_iter()
            .zip(&stats)
            .map(|(entry, stats)| Replica {
                entry: Mutex::new(entry),
                stats: Arc::clone(stats),
                alive: AtomicBool::new(true),
            })
            .collect();
        let models = vec![ModelInfo {
            id: model_id.to_string(),
            weight_hash,
            tally,
        }];

        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let waker = Waker::new()?;
        let sessions = SessionStore::new(config.session_cap, config.elab_cache_cap);
        let ring = HashRing::new(replica_count);
        let worker_count = config.workers.max(1);
        let shared = Arc::new(Shared {
            config,
            metrics,
            replicas,
            ring,
            sessions,
            models: Mutex::new(models),
            reload_lock: Mutex::new(()),
            dispatch: Mutex::new(VecDeque::new()),
            dispatch_cv: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            waker,
            shutdown: AtomicBool::new(false),
        });

        let spawn_all = || -> std::io::Result<(JoinHandle<()>, Vec<JoinHandle<()>>)> {
            let reactor = {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("sns-reactor".into())
                    .spawn(move || reactor_loop(listener, &shared))?
            };
            let mut workers = Vec::with_capacity(worker_count);
            for i in 0..worker_count {
                let shared = Arc::clone(&shared);
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("sns-worker-{i}"))
                        .spawn(move || worker_loop(&shared))?,
                );
            }
            Ok((reactor, workers))
        };
        match spawn_all() {
            Ok((reactor, workers)) => {
                Ok(Server { addr, shared, reactor: Some(reactor), workers })
            }
            Err(e) => {
                // Whatever did spawn must not linger headless.
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.waker.wake();
                shared.dispatch_cv.notify_all();
                Err(e)
            }
        }
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The design-session store backing the ECO endpoint.
    pub fn sessions(&self) -> &SessionStore {
        &self.shared.sessions
    }

    /// Number of model replicas behind the router.
    pub fn replica_count(&self) -> usize {
        self.shared.replicas.len()
    }

    /// The replica a full-design request for (`verilog`, `top`) homes on
    /// (ignoring liveness) — lets tests aim chaos at the right replica.
    pub fn replica_for(&self, verilog: &str, top: &str) -> usize {
        self.shared.ring.home(design_key(verilog, top)) as usize
    }

    /// Marks a replica dead: new requests fail over along the ring,
    /// in-flight requests on it get `503` at their next stage boundary.
    /// Returns `false` for an out-of-range index.
    pub fn kill_replica(&self, idx: usize) -> bool {
        match self.shared.replicas.get(idx) {
            Some(r) => {
                r.alive.store(false, Ordering::SeqCst);
                true
            }
            None => false,
        }
    }

    /// Marks a replica alive again; it resumes its old ring range (its
    /// cache kept warm through the outage — liveness is routing state,
    /// not process state). Returns `false` for an out-of-range index.
    pub fn revive_replica(&self, idx: usize) -> bool {
        match self.shared.replicas.get(idx) {
            Some(r) => {
                r.alive.store(true, Ordering::SeqCst);
                true
            }
            None => false,
        }
    }

    /// The id and weight hash of the currently serving model generation.
    pub fn current_model(&self) -> (String, String) {
        let entry = self.shared.replicas[0].entry();
        (entry.model_id.clone(), entry.weight_hash.clone())
    }

    /// Atomically hot-swaps the serving model from the configured zoo
    /// (`id = None` loads the latest checkpoint). No in-flight request is
    /// dropped: each request pins the model generation it started on and
    /// finishes there bit-identically; new requests see the new model.
    /// Swapping is keyed by weight hash — reloading weights already
    /// serving is a no-op that keeps every cache warm. Safe from any
    /// thread (the `/admin/reload` endpoint and the SIGHUP watcher both
    /// funnel here); concurrent reloads serialize.
    ///
    /// # Errors
    ///
    /// [`ReloadError::NoZoo`] when no zoo directory is configured;
    /// [`ReloadError::Zoo`] for zoo failures (unknown id, corrupt
    /// manifest or weights) — the serving model is untouched.
    pub fn reload_from_zoo(&self, id: Option<&str>) -> Result<ReloadOutcome, ReloadError> {
        reload_from_zoo(&self.shared, id)
    }

    /// Begins a graceful shutdown: stop accepting, let queued and
    /// in-flight requests finish. Idempotent; safe from a signal-watcher
    /// thread.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.dispatch_cv.notify_all();
        self.shared.waker.wake();
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Drains in-flight work and joins every thread (reactor, workers,
    /// per-replica micro-batchers). Implies
    /// [`request_shutdown`](Self::request_shutdown).
    pub fn join(mut self) {
        self.request_shutdown();
        if let Some(r) = self.reactor.take() {
            let _ = r.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Dropping `self` releases the last `Arc<Shared>` (all threads
        // have exited), which drops every `MicroBatcher`, whose `Drop`
        // drains any queued round and joins the batcher thread.
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.request_shutdown();
    }
}

/// Why a hot-swap attempt failed. The serving model is never touched by
/// a failed reload.
#[derive(Debug)]
pub enum ReloadError {
    /// The server was started without a zoo directory (`SNS_ZOO_DIR` /
    /// `ServeConfig::zoo_dir`).
    NoZoo,
    /// The zoo rejected the load (missing/corrupt manifest or weights,
    /// unknown model id, hash mismatch).
    Zoo(ZooError),
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::NoZoo => {
                write!(f, "no model zoo configured (start with SNS_ZOO_DIR or --zoo)")
            }
            ReloadError::Zoo(e) => write!(f, "{e}"),
        }
    }
}

/// What a [`Server::reload_from_zoo`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReloadOutcome {
    /// Whether a new model generation was installed (`false` when the
    /// requested checkpoint's weight hash already matched the serving
    /// model — caches stay warm, nothing changes).
    pub swapped: bool,
    /// The now-serving model id.
    pub model_id: String,
    /// The now-serving weight hash.
    pub weight_hash: String,
    /// The previously serving model id.
    pub previous_id: String,
    /// The previously serving weight hash.
    pub previous_hash: String,
}

/// Builds one [`ModelEntry`] per replica for `model`: replica 0 serves
/// the given `Arc` directly, the rest serve
/// [`fork_replica`](SnsModel::fork_replica) clones with cold private
/// caches. All entries of a generation share one [`ModelTally`].
fn build_entries(
    model: &Arc<SnsModel>,
    model_id: &str,
    weight_hash: &str,
    tally: &Arc<ModelTally>,
    config: &ServeConfig,
    metrics: &Arc<Metrics>,
    stats: &[Arc<ReplicaStats>],
) -> std::io::Result<Vec<Arc<ModelEntry>>> {
    let mut entries = Vec::with_capacity(stats.len());
    for (i, stats) in stats.iter().enumerate() {
        let replica_model = if i == 0 {
            Arc::clone(model)
        } else {
            let fork = model.fork_replica();
            fork.cache().set_capacity(config.cache_cap);
            Arc::new(fork)
        };
        let batcher = MicroBatcher::start(
            Arc::clone(&replica_model),
            config.threads,
            config.batch,
            Arc::clone(metrics),
            Arc::clone(stats),
        )?;
        entries.push(Arc::new(ModelEntry {
            model: replica_model,
            batcher,
            model_id: model_id.to_string(),
            weight_hash: weight_hash.to_string(),
            tally: Arc::clone(tally),
        }));
    }
    Ok(entries)
}

/// The tally for (`id`, `weight_hash`) in the model registry, appending
/// a fresh entry if this model has not served here before.
fn tally_for(shared: &Shared, id: &str, weight_hash: &str) -> Arc<ModelTally> {
    let mut models = lock_or_recover(&shared.models);
    if let Some(info) =
        models.iter().find(|m| m.id == id && m.weight_hash == weight_hash)
    {
        return Arc::clone(&info.tally);
    }
    let tally = Arc::new(ModelTally::default());
    models.push(ModelInfo {
        id: id.to_string(),
        weight_hash: weight_hash.to_string(),
        tally: Arc::clone(&tally),
    });
    tally
}

/// The hot-swap implementation behind [`Server::reload_from_zoo`] and
/// `POST /admin/reload` (workers hold `Shared`, not `Server`).
pub(crate) fn reload_from_zoo(
    shared: &Shared,
    id: Option<&str>,
) -> Result<ReloadOutcome, ReloadError> {
    let Some(dir) = shared.config.zoo_dir.as_deref() else {
        return Err(ReloadError::NoZoo);
    };
    let _guard = lock_or_recover(&shared.reload_lock);
    let current = shared.replicas[0].entry();
    let (model, zoo_entry) = load_from_zoo(dir, id).map_err(ReloadError::Zoo)?;
    if zoo_entry.weight_hash == current.weight_hash {
        // Cache invalidation is keyed by weight hash: identical weights
        // mean every cached path prediction is still exact, so the swap
        // is skipped and the caches stay warm.
        return Ok(ReloadOutcome {
            swapped: false,
            model_id: current.model_id.clone(),
            weight_hash: current.weight_hash.clone(),
            previous_id: current.model_id.clone(),
            previous_hash: current.weight_hash.clone(),
        });
    }
    model.cache().set_capacity(shared.config.cache_cap);
    let sample_config_changed = model.sample_config() != current.model.sample_config();
    let model = Arc::new(model);
    let tally = tally_for(shared, &zoo_entry.id, &zoo_entry.weight_hash);
    let stats: Vec<Arc<ReplicaStats>> =
        shared.replicas.iter().map(|r| Arc::clone(&r.stats)).collect();
    // Build the whole new generation before installing any of it, so a
    // mid-build failure (batcher thread spawn) leaves the old generation
    // fully serving.
    let entries = build_entries(
        &model,
        &zoo_entry.id,
        &zoo_entry.weight_hash,
        &tally,
        &shared.config,
        &shared.metrics,
        &stats,
    )
    .map_err(|e| ReloadError::Zoo(ZooError::Io(e.to_string())))?;
    for (replica, entry) in shared.replicas.iter().zip(entries) {
        replica.install(entry);
    }
    // Live ECO sessions hold terminal samples, which depend only on the
    // sample config, not the weights — they stay bit-exact across a
    // weight swap. A changed sample config invalidates them.
    if sample_config_changed {
        shared.sessions.clear();
    }
    shared.metrics.model_swaps.fetch_add(1, Ordering::Relaxed);
    Ok(ReloadOutcome {
        swapped: true,
        model_id: zoo_entry.id,
        weight_hash: zoo_entry.weight_hash,
        previous_id: current.model_id.clone(),
        previous_hash: current.weight_hash.clone(),
    })
}

pub(crate) fn error_body(message: &str, kind: &str) -> Json {
    Json::obj(vec![
        ("error", Json::Str(message.to_string())),
        ("kind", Json::Str(kind.to_string())),
    ])
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = lock_or_recover(&shared.dispatch);
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.metrics.queue_depth.store(queue.len() as u64, Ordering::Relaxed);
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return; // queue drained, shutting down
                }
                queue = shared.dispatch_cv.wait(queue).unwrap_or_else(PoisonError::into_inner);
            }
        };
        shared.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        // The pipeline is designed to be panic-free on arbitrary input
        // (see the adversarial suites), but a residual bug must cost one
        // 500, not the worker thread and every queued request behind it.
        // `AssertUnwindSafe` is sound: `shared` holds no lock across this
        // call and all its state is atomics or recover-on-poison mutexes.
        let (status, extra, body) = match std::panic::catch_unwind(
            std::panic::AssertUnwindSafe(|| route(&job.request, shared)),
        ) {
            Ok(reply) => reply,
            Err(_) => {
                shared.metrics.panics_total.fetch_add(1, Ordering::Relaxed);
                (500, Vec::new(), error_body("internal error while handling the request", "panic"))
            }
        };
        shared.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &shared.metrics.responses_2xx,
            400..=499 => &shared.metrics.responses_4xx,
            _ => &shared.metrics.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        let bytes = build_response(status, &extra, &body.print());
        lock_or_recover(&shared.completions).push(Completion { conn_id: job.conn_id, bytes });
        shared.waker.wake();
    }
}

type Reply = (u16, Vec<(&'static str, String)>, Json);

fn route(request: &Request, shared: &Shared) -> Reply {
    match (request.method.as_str(), request.target.as_str()) {
        ("POST", "/predict") => handle_predict(request, shared),
        ("POST", "/admin/reload") => handle_reload(request, shared),
        ("GET", "/metrics") => {
            let snapshots: Vec<ReplicaSnapshot> = shared
                .replicas
                .iter()
                .map(|r| {
                    let entry = r.entry();
                    let cache = entry.model.cache();
                    r.stats.snapshot(
                        r.is_alive(),
                        entry.batcher.queue_depth() as u64,
                        CacheStats {
                            entries: cache.len(),
                            capacity: cache.capacity(),
                            hits: cache.hits(),
                            misses: cache.misses(),
                            evictions: cache.evictions(),
                        },
                    )
                })
                .collect();
            let elab = shared.sessions.elab_cache();
            let elab_stats = ElabCacheStats {
                entries: elab.len(),
                capacity: elab.capacity(),
                hits: elab.hits(),
                misses: elab.misses(),
                evictions: elab.evictions(),
                invalidations: elab.invalidations(),
                sessions: shared.sessions.session_count(),
            };
            let serving = shared.replicas[0].entry();
            let kernel_stats = KernelStats {
                prepack_bytes: serving.model.prepack_bytes(),
                int8: serving.model.quant_mode() == sns_core::QuantMode::Int8,
            };
            let models: Vec<Json> = lock_or_recover(&shared.models)
                .iter()
                .map(|info| {
                    let mut obj = vec![
                        ("id".to_string(), Json::Str(info.id.clone())),
                        ("weight_hash".to_string(), Json::Str(info.weight_hash.clone())),
                        (
                            "serving".to_string(),
                            Json::Bool(info.weight_hash == serving.weight_hash),
                        ),
                    ];
                    if let Json::Obj(tally) = info.tally.to_json() {
                        obj.extend(tally);
                    }
                    Json::Obj(obj)
                })
                .collect();
            (200, Vec::new(), shared.metrics.to_json(&snapshots, elab_stats, kernel_stats, models))
        }
        ("GET", "/healthz") => (200, Vec::new(), Json::obj(vec![("status", Json::Str("ok".into()))])),
        ("GET", target)
            if shared.config.debug_hooks && target.starts_with("/debug/blob") =>
        {
            // Test hook: a response big enough to overflow the socket
            // send buffer, for exercising partial-write handling.
            let kb = target
                .split_once("kb=")
                .and_then(|(_, v)| v.parse::<usize>().ok())
                .unwrap_or(64)
                .min(16 * 1024);
            (200, Vec::new(), Json::obj(vec![("blob", Json::Str("x".repeat(kb * 1024)))]))
        }
        (_, "/predict") | (_, "/metrics") | (_, "/healthz") | (_, "/admin/reload") => (
            405,
            Vec::new(),
            error_body(&format!("method {} not allowed here", request.method), "http"),
        ),
        (_, target) => (404, Vec::new(), error_body(&format!("no such endpoint {target}"), "http")),
    }
}

/// `POST /admin/reload` — hot-swap the serving model from the zoo. Body
/// `{}`/empty loads the latest checkpoint, `{"model": id}` a specific
/// one. `200` with the swap outcome; `409` when no zoo is configured;
/// `404` for an unknown model id; `500` for a zoo that cannot be read.
fn handle_reload(request: &Request, shared: &Shared) -> Reply {
    let id = match request.body.is_empty() {
        true => None,
        false => {
            let text = match std::str::from_utf8(&request.body) {
                Ok(t) => t,
                Err(_) => return (400, Vec::new(), error_body("body is not valid UTF-8", "json")),
            };
            let v = match parse_json(text) {
                Ok(v) => v,
                Err(e) => return (400, Vec::new(), error_body(&e.to_string(), "json")),
            };
            match v.get("model") {
                Err(_) => None,
                Ok(m) => match m.as_str() {
                    Ok(s) => Some(s.to_string()),
                    Err(e) => {
                        return (400, Vec::new(), error_body(&format!("model: {e}"), "json"))
                    }
                },
            }
        }
    };
    match reload_from_zoo(shared, id.as_deref()) {
        Ok(outcome) => (
            200,
            vec![
                ("x-sns-model-id", outcome.model_id.clone()),
                ("x-sns-weight-hash", outcome.weight_hash.clone()),
            ],
            Json::obj(vec![
                ("swapped", Json::Bool(outcome.swapped)),
                ("model_id", Json::Str(outcome.model_id)),
                ("weight_hash", Json::Str(outcome.weight_hash)),
                ("previous_id", Json::Str(outcome.previous_id)),
                ("previous_hash", Json::Str(outcome.previous_hash)),
            ]),
        ),
        Err(ReloadError::NoZoo) => {
            (409, Vec::new(), error_body(&ReloadError::NoZoo.to_string(), "reload"))
        }
        Err(ReloadError::Zoo(e @ ZooError::UnknownModel(_))) => {
            shared.metrics.reload_errors.fetch_add(1, Ordering::Relaxed);
            (404, Vec::new(), error_body(&e.to_string(), "zoo"))
        }
        Err(ReloadError::Zoo(e)) => {
            shared.metrics.reload_errors.fetch_add(1, Ordering::Relaxed);
            (500, Vec::new(), error_body(&e.to_string(), "zoo"))
        }
    }
}

/// The parsed and validated `/predict` request body: a classic one-shot
/// prediction, a session-registering prediction, or an ECO patch.
enum PredictBody {
    Full(PredictInput),
    Session { verilog: String, top: String, clock_ps: Option<f64> },
    Patch { base: String, patch: String, clock_ps: Option<f64> },
}

struct PredictInput {
    verilog: String,
    top: String,
    clock_ps: Option<f64>,
    activity: Option<HashMap<String, f32>>,
}

fn parse_clock_ps(v: &Json) -> Result<Option<f64>, String> {
    match v.get("clock_ps") {
        Err(_) => Ok(None),
        Ok(c) => {
            let ps = c.as_f64().map_err(|e| e.to_string())?;
            if !(ps.is_finite() && ps > 0.0) {
                return Err(format!("clock_ps must be a positive number, got {ps}"));
            }
            Ok(Some(ps))
        }
    }
}

fn parse_predict_body(body: &[u8]) -> Result<PredictBody, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    let v = parse_json(text).map_err(|e| e.to_string())?;
    let clock_ps = parse_clock_ps(&v)?;

    // ECO form: {"base": token, "patch": module sources}.
    if let Ok(base) = v.get("base") {
        let base = base.as_str().map_err(|e| format!("base: {e}"))?.to_string();
        let patch =
            v.get("patch").and_then(Json::as_str).map_err(|e| format!("patch: {e}"))?.to_string();
        if v.get("verilog").is_ok() {
            return Err("give either {verilog, top} or {base, patch}, not both".to_string());
        }
        return Ok(PredictBody::Patch { base, patch, clock_ps });
    }

    let verilog =
        v.get("verilog").and_then(Json::as_str).map_err(|e| e.to_string())?.to_string();
    let top = v.get("top").and_then(Json::as_str).map_err(|e| e.to_string())?.to_string();

    // Session form: {"verilog", "top", "session": true} registers the
    // design as an ECO base and predicts through the incremental pipeline.
    let session = match v.get("session") {
        Err(_) => false,
        Ok(s) => s.as_bool().map_err(|e| format!("session: {e}"))?,
    };
    if session {
        if v.get("activity").is_ok() {
            return Err("session predictions do not take an activity map".to_string());
        }
        return Ok(PredictBody::Session { verilog, top, clock_ps });
    }

    let activity = match v.get("activity") {
        Err(_) => None,
        Ok(Json::Obj(fields)) => {
            let mut map = HashMap::with_capacity(fields.len());
            for (name, value) in fields {
                let a = value.as_f32().map_err(|e| format!("activity[{name:?}]: {e}"))?;
                if !(0.0..=1.0).contains(&a) {
                    return Err(format!("activity[{name:?}] must be in [0, 1], got {a}"));
                }
                map.insert(name.clone(), a);
            }
            Some(map)
        }
        Ok(other) => {
            return Err(format!("activity must be an object of register→coefficient, got {}", other.print()))
        }
    };
    Ok(PredictBody::Full(PredictInput { verilog, top, clock_ps, activity }))
}

fn deadline_reply(stage: &str, shared: &Shared) -> Reply {
    shared.metrics.deadline_504.fetch_add(1, Ordering::Relaxed);
    (
        504,
        Vec::new(),
        error_body(&format!("deadline exceeded before {stage} stage (SNS_DEADLINE_MS)"), "deadline"),
    )
}

/// Raised (as `Err`) by stage-boundary liveness checks when the routed
/// replica was killed mid-flight.
struct ReplicaLost;

fn check_alive(replica: &Replica) -> Result<(), ReplicaLost> {
    if replica.is_alive() {
        Ok(())
    } else {
        Err(ReplicaLost)
    }
}

/// Routes the request body to a replica and runs it there, translating
/// mid-flight replica loss into a clean `503` (never a truncated or
/// wrong-valued body — the reply is either a full pipeline product or a
/// structured error).
fn handle_predict(request: &Request, shared: &Shared) -> Reply {
    let start = Instant::now();
    shared.metrics.predict_requests.fetch_add(1, Ordering::Relaxed);

    let body = match parse_predict_body(&request.body) {
        Ok(body) => body,
        Err(msg) => return (400, Vec::new(), error_body(&msg, "json")),
    };
    let key = match &body {
        PredictBody::Full(input) => design_key(&input.verilog, &input.top),
        PredictBody::Session { verilog, top, .. } => design_key(verilog, top),
        PredictBody::Patch { base, .. } => token_key(base),
    };
    let Some(choice) = shared.ring.route(key, |r| {
        shared.replicas.get(r as usize).is_some_and(Replica::is_alive)
    }) else {
        return (
            503,
            vec![("retry-after", "1".to_string())],
            error_body("no live replicas", "replica"),
        );
    };
    if choice.failed_over {
        shared.metrics.router_failovers.fetch_add(1, Ordering::Relaxed);
    }
    let replica = &shared.replicas[choice.replica as usize];
    replica.stats.routed.fetch_add(1, Ordering::Relaxed);
    replica.stats.in_flight.fetch_add(1, Ordering::Relaxed);

    // Pin one model generation for the whole request: model, batcher,
    // and cache all come from this entry, so a concurrent hot-swap can
    // never mix generations mid-pipeline — the response is bit-identical
    // to a direct call on the model the request started with, and the
    // headers below say which one that was.
    let entry = replica.entry();
    entry.tally.requests.fetch_add(1, Ordering::Relaxed);

    // Deterministic chaos hook: lets tests hold a request in-flight on
    // its routed replica (e.g. to kill the replica underneath it).
    if shared.config.debug_hooks {
        if let Some(ms) = request.header("x-sns-sleep-ms").and_then(|v| v.parse::<u64>().ok()) {
            std::thread::sleep(Duration::from_millis(ms.min(10_000)));
        }
    }

    let mut reply = match predict_on_replica(shared, replica, &entry, body, start) {
        Ok(reply) => {
            replica.stats.completed.fetch_add(1, Ordering::Relaxed);
            reply
        }
        Err(ReplicaLost) => {
            replica.stats.shed.fetch_add(1, Ordering::Relaxed);
            (
                503,
                vec![("retry-after", "1".to_string())],
                error_body(
                    &format!("replica {} lost mid-flight, retry", choice.replica),
                    "replica",
                ),
            )
        }
    };
    if reply.0 == 200 {
        entry.tally.ok.fetch_add(1, Ordering::Relaxed);
    }
    entry.tally.latency.record(start.elapsed());
    reply.1.push(("x-sns-model-id", entry.model_id.clone()));
    reply.1.push(("x-sns-weight-hash", entry.weight_hash.clone()));
    replica.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
    reply
}

/// The full prediction pipeline on one replica, with per-stage
/// instrumentation, deadline checks, and liveness checks at every stage
/// boundary. Responses are bit-identical to a direct
/// `SnsModel::predict_verilog` call: the sampler is seeded by config,
/// the replica's micro-batcher fills the same cache `aggregate` would,
/// and the final reduction is the model's own `predict_primed`.
fn predict_on_replica(
    shared: &Shared,
    replica: &Replica,
    entry: &ModelEntry,
    body: PredictBody,
    start: Instant,
) -> Result<Reply, ReplicaLost> {
    let deadline = shared.config.deadline.map(|d| start + d);
    check_alive(replica)?;
    let input = match body {
        PredictBody::Full(input) => input,
        PredictBody::Session { verilog, top, clock_ps } => {
            return handle_session(shared, replica, entry, &verilog, &top, clock_ps, start)
        }
        PredictBody::Patch { base, patch, clock_ps } => {
            return handle_patch(shared, replica, entry, &base, &patch, clock_ps, start)
        }
    };

    // Stage 1: Verilog front-end.
    let t = Instant::now();
    let netlist = match sns_netlist::parse_and_elaborate(&input.verilog, &input.top) {
        Ok(nl) => nl,
        // Budget rejections (SNS_MAX_CELLS / SNS_MAX_NET_BITS /
        // SNS_MAX_REPLICATION) are 422: the Verilog may be perfectly
        // well-formed, the deployment just refuses to elaborate something
        // that large. Malformed source stays 400.
        Err(e) if e.is_budget() => {
            return Ok((422, Vec::new(), error_body(&e.to_string(), "budget")))
        }
        Err(e) => return Ok((400, Vec::new(), error_body(&e.to_string(), "verilog"))),
    };
    shared.metrics.stage_parse.record(t.elapsed());
    check_alive(replica)?;
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return Ok(deadline_reply("sampling", shared));
    }

    // Stage 2: GraphIR + path sampling.
    let t = Instant::now();
    let graph = GraphIr::from_netlist(&netlist);
    let paths = PathSampler::new(entry.model.sample_config().clone()).sample(&graph);
    shared.metrics.stage_sample.record(t.elapsed());
    check_alive(replica)?;
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return Ok(deadline_reply("inference", shared));
    }

    // Stage 3: micro-batched inference — only the sequences this request
    // is missing; concurrent requests for the same design share work
    // through the pinned generation's cache.
    let t = Instant::now();
    let token_seqs = entry.model.tokenize_paths(&graph, &paths);
    let missing = entry.model.cache().missing_unique(&token_seqs);
    let gate = entry.batcher.submit(missing);
    if !gate.wait(deadline) {
        return Ok(deadline_reply("aggregation", shared));
    }
    shared.metrics.stage_infer.record(t.elapsed());
    check_alive(replica)?;

    // Stage 4: serial reduction + MLP refinement.
    let t = Instant::now();
    let pred =
        entry.model.predict_primed(&graph, &paths, &token_seqs, input.activity.as_ref(), start);
    shared.metrics.stage_aggregate.record(t.elapsed());

    let fields = prediction_fields(&pred, input.clock_ps);
    shared.metrics.predict_ok.fetch_add(1, Ordering::Relaxed);
    shared.metrics.stage_total.record(start.elapsed());
    Ok((200, Vec::new(), Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())))
}

/// The `DesignPrediction` fields every successful `/predict` reply shares.
fn prediction_fields(
    pred: &sns_core::DesignPrediction,
    clock_ps: Option<f64>,
) -> Vec<(&'static str, Json)> {
    let mut fields = vec![
        ("timing_ps", Json::Num(pred.timing_ps)),
        ("area_um2", Json::Num(pred.area_um2)),
        ("power_mw", Json::Num(pred.power_mw)),
        ("path_count", Json::UInt(pred.path_count as u64)),
        (
            "critical_path",
            Json::Arr(pred.critical_path.iter().map(|s| Json::Str(s.clone())).collect()),
        ),
        ("runtime_us", Json::UInt(u64::try_from(pred.runtime.as_micros()).unwrap_or(u64::MAX))),
    ];
    if let Some(clock_ps) = clock_ps {
        fields.push(("slack_ps", Json::Num(clock_ps - pred.timing_ps)));
        fields.push(("meets_clock", Json::Bool(pred.timing_ps <= clock_ps)));
    }
    fields
}

/// Builds the 200 reply for a session-registering or ECO prediction:
/// the shared prediction fields plus the session outcome (`base` token,
/// which modules were re-elaborated, terminal-sample reuse counts).
fn session_reply(
    shared: &Shared,
    outcome: &SessionOutcome,
    clock_ps: Option<f64>,
    start: Instant,
) -> Reply {
    let mut fields = prediction_fields(&outcome.prediction, clock_ps);
    fields.push(("base", Json::Str(outcome.token.clone())));
    fields.push((
        "reelaborated",
        Json::Arr(outcome.reelaborated.iter().map(|m| Json::Str(m.clone())).collect()),
    ));
    fields.push(("reused_terminals", Json::UInt(outcome.reused_terminals as u64)));
    fields.push(("resampled_terminals", Json::UInt(outcome.resampled_terminals as u64)));
    shared.metrics.session_predicts.fetch_add(1, Ordering::Relaxed);
    shared.metrics.predict_ok.fetch_add(1, Ordering::Relaxed);
    shared.metrics.stage_total.record(start.elapsed());
    (200, Vec::new(), Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect()))
}

/// `{"verilog", "top", "session": true}` — predict through the
/// incremental pipeline and register the design as an ECO base.
fn handle_session(
    shared: &Shared,
    replica: &Replica,
    entry: &ModelEntry,
    verilog: &str,
    top: &str,
    clock_ps: Option<f64>,
    start: Instant,
) -> Result<Reply, ReplicaLost> {
    let outcome = match entry.model.predict_session(&shared.sessions, verilog, top) {
        Ok(o) => o,
        Err(e) if e.is_budget() => {
            return Ok((422, Vec::new(), error_body(&e.to_string(), "budget")))
        }
        Err(e) => return Ok((400, Vec::new(), error_body(&e.to_string(), "verilog"))),
    };
    check_alive(replica)?;
    Ok(session_reply(shared, &outcome, clock_ps, start))
}

/// `{"base": token, "patch": module sources}` — merge the patch into the
/// base session's design and re-predict incrementally.
fn handle_patch(
    shared: &Shared,
    replica: &Replica,
    entry: &ModelEntry,
    base: &str,
    patch: &str,
    clock_ps: Option<f64>,
    start: Instant,
) -> Result<Reply, ReplicaLost> {
    shared.metrics.eco_requests.fetch_add(1, Ordering::Relaxed);
    let outcome = match entry.model.predict_patch(&shared.sessions, base, patch) {
        Ok(o) => o,
        Err(SessionError::UnknownBase(token)) => {
            return Ok((
                404,
                Vec::new(),
                error_body(
                    &format!("unknown base design `{token}` (expired or never registered)"),
                    "session",
                ),
            ))
        }
        Err(SessionError::Front(e)) if e.is_budget() => {
            return Ok((422, Vec::new(), error_body(&e.to_string(), "budget")))
        }
        Err(SessionError::Front(e)) => {
            return Ok((400, Vec::new(), error_body(&e.to_string(), "verilog")))
        }
    };
    check_alive(replica)?;
    Ok(session_reply(shared, &outcome, clock_ps, start))
}
