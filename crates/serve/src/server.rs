//! The accept loop, bounded work queue, worker pool, and the `/predict`
//! pipeline.
//!
//! ```text
//! acceptor ──► bounded queue ──► workers ──┬─► parse ► sample ─┐
//!    │ (full → 503 + Retry-After)          │                   │ missing
//!    ▼                                     │                   ▼
//!  shutdown flag (drain, then exit)        │             micro-batcher ──► shared cache
//!                                          └─► reduce + MLP (predict_primed)
//! ```
//!
//! Every stage boundary checks the per-request deadline, so a request
//! that has already blown `SNS_DEADLINE_MS` never starts sampling or
//! inference.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sns_core::{SessionError, SessionOutcome, SessionStore, SnsModel};
use sns_graphir::GraphIr;
use sns_netlist::ModuleElabCache;
use sns_rt::json::{parse as parse_json, Json};
use sns_sampler::PathSampler;

use crate::batcher::MicroBatcher;
use crate::http::{lingering_close, read_request, write_response, HttpError, Request};
use crate::metrics::{CacheStats, ElabCacheStats, KernelStats, Metrics};

/// Reads a positive integer environment knob.
fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Everything tunable about the daemon. `Default` is suitable for tests;
/// [`from_env`](Self::from_env) layers the documented `SNS_*` knobs on
/// top for production use.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks an ephemeral port).
    pub addr: String,
    /// HTTP worker threads (connection handling; not inference threads).
    pub workers: usize,
    /// Bounded accept-queue length; beyond it connections get `503`.
    pub queue_cap: usize,
    /// Request body byte limit (`413` beyond it).
    pub max_body: usize,
    /// Per-request deadline; stages are never started past it (`504`).
    pub deadline: Option<Duration>,
    /// Entry cap installed on the model's path cache (`None` = unbounded).
    pub cache_cap: Option<usize>,
    /// Inference pool threads per batch round (`SNS_THREADS`).
    pub threads: usize,
    /// Sequences per packed Circuitformer forward (`SNS_BATCH`).
    pub batch: usize,
    /// Socket read timeout while receiving a request.
    pub read_timeout: Duration,
    /// Live design sessions retained as ECO bases (`SNS_SESSION_CAP`).
    pub session_cap: usize,
    /// Module-elaboration-unit cache entries (`SNS_ELAB_CACHE_CAP`).
    pub elab_cache_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_cap: 64,
            max_body: 1 << 20,
            deadline: None,
            // A long-lived server bounds the cache so memory stays flat
            // under unbounded design diversity; the CLI stays unbounded.
            cache_cap: Some(1 << 18),
            threads: sns_rt::pool::default_threads(),
            batch: sns_rt::pool::default_batch(),
            read_timeout: Duration::from_secs(10),
            session_cap: sns_core::session::DEFAULT_SESSION_CAP,
            elab_cache_cap: ModuleElabCache::DEFAULT_CAPACITY,
        }
    }
}

impl ServeConfig {
    /// The default configuration with every `SNS_*` environment knob
    /// applied: `SNS_SERVE_WORKERS`, `SNS_QUEUE_CAP`, `SNS_MAX_BODY`,
    /// `SNS_DEADLINE_MS`, `SNS_CACHE_CAP` (0 = unbounded), `SNS_THREADS`,
    /// `SNS_BATCH`, `SNS_SESSION_CAP`, `SNS_ELAB_CACHE_CAP`.
    pub fn from_env() -> Self {
        let mut c = ServeConfig::default();
        if let Some(n) = env_usize("SNS_SERVE_WORKERS") {
            c.workers = n;
        }
        if let Some(n) = env_usize("SNS_QUEUE_CAP") {
            c.queue_cap = n;
        }
        if let Some(n) = env_usize("SNS_MAX_BODY") {
            c.max_body = n;
        }
        if let Some(ms) = env_usize("SNS_DEADLINE_MS") {
            c.deadline = Some(Duration::from_millis(ms as u64));
        }
        if let Ok(v) = std::env::var("SNS_CACHE_CAP") {
            c.cache_cap = match v.trim().parse::<usize>() {
                Ok(0) => None,
                Ok(n) => Some(n),
                Err(_) => c.cache_cap,
            };
        }
        if let Some(n) = env_usize("SNS_SESSION_CAP") {
            c.session_cap = n;
        }
        if let Some(n) = env_usize("SNS_ELAB_CACHE_CAP") {
            c.elab_cache_cap = n;
        }
        c
    }
}

struct Shared {
    model: Arc<SnsModel>,
    metrics: Arc<Metrics>,
    batcher: MicroBatcher,
    config: ServeConfig,
    sessions: SessionStore,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
}

/// A running inference daemon. Dropping it without calling
/// [`join`](Self::join) aborts less gracefully (threads are detached);
/// prefer `request_shutdown` + `join`.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts accepting. The model's path cache is bounded to
    /// `config.cache_cap` entries.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(model: SnsModel, config: ServeConfig) -> std::io::Result<Server> {
        Self::start_shared(Arc::new(model), config)
    }

    /// [`start`](Self::start) for callers that keep their own handle to
    /// the model (benchmarks clearing the cache between rounds, tests).
    pub fn start_shared(model: Arc<SnsModel>, config: ServeConfig) -> std::io::Result<Server> {
        model.cache().set_capacity(config.cache_cap);
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(Metrics::default());
        let batcher = MicroBatcher::start(
            Arc::clone(&model),
            config.threads,
            config.batch,
            Arc::clone(&metrics),
        );
        let sessions = SessionStore::new(config.session_cap, config.elab_cache_cap);
        let shared = Arc::new(Shared {
            model,
            metrics,
            batcher,
            config,
            sessions,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sns-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sns-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();

        Ok(Server { addr, shared, acceptor: Some(acceptor), workers })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The design-session store backing the ECO endpoint.
    pub fn sessions(&self) -> &SessionStore {
        &self.shared.sessions
    }

    /// Begins a graceful shutdown: stop accepting, let queued and
    /// in-flight requests finish. Idempotent; safe from a signal-watcher
    /// thread.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Drains in-flight work and joins every thread (acceptor, workers,
    /// micro-batcher). Implies [`request_shutdown`](Self::request_shutdown).
    pub fn join(mut self) {
        self.request_shutdown();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Dropping `self` releases the last `Arc<Shared>` (all threads
        // have exited), which drops the `MicroBatcher`, whose `Drop`
        // drains any queued round and joins the batcher thread.
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.request_shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => enqueue(stream, shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Admits a connection into the bounded queue, or sheds it with
/// `503 + Retry-After` when the queue is full (backpressure: the client
/// learns immediately instead of waiting on an invisible line).
fn enqueue(mut stream: TcpStream, shared: &Shared) {
    {
        let mut queue = shared.queue.lock().expect("queue lock poisoned");
        if queue.len() < shared.config.queue_cap {
            queue.push_back(stream);
            let depth = queue.len() as u64;
            drop(queue);
            shared.metrics.queue_depth.store(depth, Ordering::Relaxed);
            shared.queue_cv.notify_one();
            return;
        }
    }
    shared.metrics.rejected_503.fetch_add(1, Ordering::Relaxed);
    shared.metrics.responses_5xx.fetch_add(1, Ordering::Relaxed);
    let body = error_body("server overloaded, retry shortly", "overload");
    let _ = write_response(&mut stream, 503, &[("retry-after", "1".to_string())], &body.print());
    // This runs on the acceptor thread and the request was never read,
    // so linger briefly — long enough for a well-behaved peer to take
    // the 503, short enough that a stalled one cannot starve accepts.
    lingering_close(&mut stream, Duration::from_millis(250));
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("queue lock poisoned");
            loop {
                if let Some(s) = queue.pop_front() {
                    shared.metrics.queue_depth.store(queue.len() as u64, Ordering::Relaxed);
                    break s;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return; // queue drained, shutting down
                }
                queue = shared.queue_cv.wait(queue).expect("queue lock poisoned");
            }
        };
        shared.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        handle_connection(stream, shared);
        shared.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

fn error_body(message: &str, kind: &str) -> Json {
    Json::obj(vec![
        ("error", Json::Str(message.to_string())),
        ("kind", Json::Str(kind.to_string())),
    ])
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_nodelay(true);
    // Only a failed read can leave request bytes unread on the socket
    // (closing over them would RST the response away, so those paths
    // linger); after a successful read the request was consumed fully.
    let mut unread_input = false;
    let (status, extra, body): Reply = match read_request(&mut stream, shared.config.max_body) {
        Err(HttpError::Io(_)) => {
            shared.metrics.conn_errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        Err(HttpError::BadRequest(msg)) => {
            shared.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
            unread_input = true;
            (400, Vec::new(), error_body(&format!("malformed HTTP request: {msg}"), "http"))
        }
        Err(HttpError::PayloadTooLarge { limit }) => {
            shared.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
            unread_input = true;
            (
                413,
                Vec::new(),
                error_body(&format!("request body exceeds the {limit}-byte limit"), "http"),
            )
        }
        Ok(request) => {
            shared.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
            // The pipeline is designed to be panic-free on arbitrary input
            // (see the adversarial suites), but a residual bug must cost
            // one 500, not the worker thread and every queued connection
            // behind it. `AssertUnwindSafe` is sound: `shared` holds no
            // lock across this call and all its state is atomics or
            // poison-checked mutexes.
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                route(&request, shared)
            })) {
                Ok(reply) => reply,
                Err(_) => {
                    shared.metrics.panics_total.fetch_add(1, Ordering::Relaxed);
                    (
                        500,
                        Vec::new(),
                        error_body("internal error while handling the request", "panic"),
                    )
                }
            }
        }
    };
    let class = match status {
        200..=299 => &shared.metrics.responses_2xx,
        400..=499 => &shared.metrics.responses_4xx,
        _ => &shared.metrics.responses_5xx,
    };
    class.fetch_add(1, Ordering::Relaxed);
    if write_response(&mut stream, status, &extra, &body.print()).is_err() {
        shared.metrics.conn_errors.fetch_add(1, Ordering::Relaxed);
    }
    if unread_input {
        lingering_close(&mut stream, shared.config.read_timeout);
    }
}

type Reply = (u16, Vec<(&'static str, String)>, Json);

fn route(request: &Request, shared: &Shared) -> Reply {
    match (request.method.as_str(), request.target.as_str()) {
        ("POST", "/predict") => handle_predict(request, shared),
        ("GET", "/metrics") => {
            let cache = shared.model.cache();
            let stats = CacheStats {
                entries: cache.len(),
                capacity: cache.capacity(),
                hits: cache.hits(),
                misses: cache.misses(),
                evictions: cache.evictions(),
            };
            let elab = shared.sessions.elab_cache();
            let elab_stats = ElabCacheStats {
                entries: elab.len(),
                capacity: elab.capacity(),
                hits: elab.hits(),
                misses: elab.misses(),
                evictions: elab.evictions(),
                invalidations: elab.invalidations(),
                sessions: shared.sessions.session_count(),
            };
            let kernel_stats = KernelStats {
                prepack_bytes: shared.model.prepack_bytes(),
                int8: shared.model.quant_mode() == sns_core::QuantMode::Int8,
            };
            (200, Vec::new(), shared.metrics.to_json(stats, elab_stats, kernel_stats))
        }
        ("GET", "/healthz") => (200, Vec::new(), Json::obj(vec![("status", Json::Str("ok".into()))])),
        (_, "/predict") | (_, "/metrics") | (_, "/healthz") => (
            405,
            Vec::new(),
            error_body(&format!("method {} not allowed here", request.method), "http"),
        ),
        (_, target) => (404, Vec::new(), error_body(&format!("no such endpoint {target}"), "http")),
    }
}

/// The parsed and validated `/predict` request body: a classic one-shot
/// prediction, a session-registering prediction, or an ECO patch.
enum PredictBody {
    Full(PredictInput),
    Session { verilog: String, top: String, clock_ps: Option<f64> },
    Patch { base: String, patch: String, clock_ps: Option<f64> },
}

struct PredictInput {
    verilog: String,
    top: String,
    clock_ps: Option<f64>,
    activity: Option<HashMap<String, f32>>,
}

fn parse_clock_ps(v: &Json) -> Result<Option<f64>, String> {
    match v.get("clock_ps") {
        Err(_) => Ok(None),
        Ok(c) => {
            let ps = c.as_f64().map_err(|e| e.to_string())?;
            if !(ps.is_finite() && ps > 0.0) {
                return Err(format!("clock_ps must be a positive number, got {ps}"));
            }
            Ok(Some(ps))
        }
    }
}

fn parse_predict_body(body: &[u8]) -> Result<PredictBody, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    let v = parse_json(text).map_err(|e| e.to_string())?;
    let clock_ps = parse_clock_ps(&v)?;

    // ECO form: {"base": token, "patch": module sources}.
    if let Ok(base) = v.get("base") {
        let base = base.as_str().map_err(|e| format!("base: {e}"))?.to_string();
        let patch =
            v.get("patch").and_then(Json::as_str).map_err(|e| format!("patch: {e}"))?.to_string();
        if v.get("verilog").is_ok() {
            return Err("give either {verilog, top} or {base, patch}, not both".to_string());
        }
        return Ok(PredictBody::Patch { base, patch, clock_ps });
    }

    let verilog =
        v.get("verilog").and_then(Json::as_str).map_err(|e| e.to_string())?.to_string();
    let top = v.get("top").and_then(Json::as_str).map_err(|e| e.to_string())?.to_string();

    // Session form: {"verilog", "top", "session": true} registers the
    // design as an ECO base and predicts through the incremental pipeline.
    let session = match v.get("session") {
        Err(_) => false,
        Ok(s) => s.as_bool().map_err(|e| format!("session: {e}"))?,
    };
    if session {
        if v.get("activity").is_ok() {
            return Err("session predictions do not take an activity map".to_string());
        }
        return Ok(PredictBody::Session { verilog, top, clock_ps });
    }

    let activity = match v.get("activity") {
        Err(_) => None,
        Ok(Json::Obj(fields)) => {
            let mut map = HashMap::with_capacity(fields.len());
            for (name, value) in fields {
                let a = value.as_f32().map_err(|e| format!("activity[{name:?}]: {e}"))?;
                if !(0.0..=1.0).contains(&a) {
                    return Err(format!("activity[{name:?}] must be in [0, 1], got {a}"));
                }
                map.insert(name.clone(), a);
            }
            Some(map)
        }
        Ok(other) => {
            return Err(format!("activity must be an object of register→coefficient, got {}", other.print()))
        }
    };
    Ok(PredictBody::Full(PredictInput { verilog, top, clock_ps, activity }))
}

fn deadline_reply(stage: &str, shared: &Shared) -> Reply {
    shared.metrics.deadline_504.fetch_add(1, Ordering::Relaxed);
    (
        504,
        Vec::new(),
        error_body(&format!("deadline exceeded before {stage} stage (SNS_DEADLINE_MS)"), "deadline"),
    )
}

/// The full prediction pipeline with per-stage instrumentation and
/// deadline checks. Responses are bit-identical to a direct
/// `SnsModel::predict_verilog` call: the sampler is seeded by config, the
/// micro-batcher fills the same shared cache `aggregate` would, and the
/// final reduction is the model's own `predict_primed`.
fn handle_predict(request: &Request, shared: &Shared) -> Reply {
    let start = Instant::now();
    let deadline = shared.config.deadline.map(|d| start + d);
    shared.metrics.predict_requests.fetch_add(1, Ordering::Relaxed);

    let input = match parse_predict_body(&request.body) {
        Ok(PredictBody::Full(input)) => input,
        Ok(PredictBody::Session { verilog, top, clock_ps }) => {
            return handle_session(shared, &verilog, &top, clock_ps, start)
        }
        Ok(PredictBody::Patch { base, patch, clock_ps }) => {
            return handle_patch(shared, &base, &patch, clock_ps, start)
        }
        Err(msg) => return (400, Vec::new(), error_body(&msg, "json")),
    };

    // Stage 1: Verilog front-end.
    let t = Instant::now();
    let netlist = match sns_netlist::parse_and_elaborate(&input.verilog, &input.top) {
        Ok(nl) => nl,
        // Budget rejections (SNS_MAX_CELLS / SNS_MAX_NET_BITS /
        // SNS_MAX_REPLICATION) are 422: the Verilog may be perfectly
        // well-formed, the deployment just refuses to elaborate something
        // that large. Malformed source stays 400.
        Err(e) if e.is_budget() => return (422, Vec::new(), error_body(&e.to_string(), "budget")),
        Err(e) => return (400, Vec::new(), error_body(&e.to_string(), "verilog")),
    };
    shared.metrics.stage_parse.record(t.elapsed());
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return deadline_reply("sampling", shared);
    }

    // Stage 2: GraphIR + path sampling.
    let t = Instant::now();
    let graph = GraphIr::from_netlist(&netlist);
    let paths = PathSampler::new(shared.model.sample_config().clone()).sample(&graph);
    shared.metrics.stage_sample.record(t.elapsed());
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return deadline_reply("inference", shared);
    }

    // Stage 3: micro-batched inference — only the sequences this request
    // is missing; concurrent requests share packed forwards.
    let t = Instant::now();
    let token_seqs = shared.model.tokenize_paths(&graph, &paths);
    let missing = shared.model.cache().missing_unique(&token_seqs);
    let gate = shared.batcher.submit(missing);
    if !gate.wait(deadline) {
        return deadline_reply("aggregation", shared);
    }
    shared.metrics.stage_infer.record(t.elapsed());

    // Stage 4: serial reduction + MLP refinement.
    let t = Instant::now();
    let pred = shared.model.predict_primed(&graph, &paths, &token_seqs, input.activity.as_ref(), start);
    shared.metrics.stage_aggregate.record(t.elapsed());

    let fields = prediction_fields(&pred, input.clock_ps);
    shared.metrics.predict_ok.fetch_add(1, Ordering::Relaxed);
    shared.metrics.stage_total.record(start.elapsed());
    (200, Vec::new(), Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect()))
}

/// The `DesignPrediction` fields every successful `/predict` reply shares.
fn prediction_fields(
    pred: &sns_core::DesignPrediction,
    clock_ps: Option<f64>,
) -> Vec<(&'static str, Json)> {
    let mut fields = vec![
        ("timing_ps", Json::Num(pred.timing_ps)),
        ("area_um2", Json::Num(pred.area_um2)),
        ("power_mw", Json::Num(pred.power_mw)),
        ("path_count", Json::UInt(pred.path_count as u64)),
        (
            "critical_path",
            Json::Arr(pred.critical_path.iter().map(|s| Json::Str(s.clone())).collect()),
        ),
        ("runtime_us", Json::UInt(u64::try_from(pred.runtime.as_micros()).unwrap_or(u64::MAX))),
    ];
    if let Some(clock_ps) = clock_ps {
        fields.push(("slack_ps", Json::Num(clock_ps - pred.timing_ps)));
        fields.push(("meets_clock", Json::Bool(pred.timing_ps <= clock_ps)));
    }
    fields
}

/// Builds the 200 reply for a session-registering or ECO prediction:
/// the shared prediction fields plus the session outcome (`base` token,
/// which modules were re-elaborated, terminal-sample reuse counts).
fn session_reply(
    shared: &Shared,
    outcome: &SessionOutcome,
    clock_ps: Option<f64>,
    start: Instant,
) -> Reply {
    let mut fields = prediction_fields(&outcome.prediction, clock_ps);
    fields.push(("base", Json::Str(outcome.token.clone())));
    fields.push((
        "reelaborated",
        Json::Arr(outcome.reelaborated.iter().map(|m| Json::Str(m.clone())).collect()),
    ));
    fields.push(("reused_terminals", Json::UInt(outcome.reused_terminals as u64)));
    fields.push(("resampled_terminals", Json::UInt(outcome.resampled_terminals as u64)));
    shared.metrics.session_predicts.fetch_add(1, Ordering::Relaxed);
    shared.metrics.predict_ok.fetch_add(1, Ordering::Relaxed);
    shared.metrics.stage_total.record(start.elapsed());
    (200, Vec::new(), Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect()))
}

/// `{"verilog", "top", "session": true}` — predict through the
/// incremental pipeline and register the design as an ECO base.
fn handle_session(
    shared: &Shared,
    verilog: &str,
    top: &str,
    clock_ps: Option<f64>,
    start: Instant,
) -> Reply {
    let outcome = match shared.model.predict_session(&shared.sessions, verilog, top) {
        Ok(o) => o,
        Err(e) if e.is_budget() => return (422, Vec::new(), error_body(&e.to_string(), "budget")),
        Err(e) => return (400, Vec::new(), error_body(&e.to_string(), "verilog")),
    };
    session_reply(shared, &outcome, clock_ps, start)
}

/// `{"base": token, "patch": module sources}` — merge the patch into the
/// base session's design and re-predict incrementally.
fn handle_patch(
    shared: &Shared,
    base: &str,
    patch: &str,
    clock_ps: Option<f64>,
    start: Instant,
) -> Reply {
    shared.metrics.eco_requests.fetch_add(1, Ordering::Relaxed);
    let outcome = match shared.model.predict_patch(&shared.sessions, base, patch) {
        Ok(o) => o,
        Err(SessionError::UnknownBase(token)) => {
            return (
                404,
                Vec::new(),
                error_body(
                    &format!("unknown base design `{token}` (expired or never registered)"),
                    "session",
                ),
            )
        }
        Err(SessionError::Front(e)) if e.is_budget() => {
            return (422, Vec::new(), error_body(&e.to_string(), "budget"))
        }
        Err(SessionError::Front(e)) => {
            return (400, Vec::new(), error_body(&e.to_string(), "verilog"))
        }
    };
    session_reply(shared, &outcome, clock_ps, start)
}
