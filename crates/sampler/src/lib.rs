//! # sns-sampler
//!
//! Complete-circuit-path sampling (§3.2 / Algorithm 1 of the SNS paper).
//!
//! A *complete circuit path* begins and ends at a vertex that contains
//! flip-flops (a register or an I/O port) and captures the "one-cycle
//! behaviour" of a design. The sampler performs a depth-first traversal
//! from every terminal vertex; at each interior vertex with out-degree
//! `d`, it follows `⌈d / k⌉` randomly chosen successors (at least one).
//! `k = 1` samples exhaustively; larger `k` samples sparser. The paper
//! uses `k = 5` for training.
//!
//! # Example
//!
//! ```rust
//! use sns_netlist::parse_and_elaborate;
//! use sns_graphir::GraphIr;
//! use sns_sampler::{PathSampler, SampleConfig};
//!
//! # fn main() -> Result<(), sns_netlist::NetlistError> {
//! let nl = parse_and_elaborate(
//!     "module mac (input clk, input [7:0] a, b, output [15:0] y);
//!          reg [15:0] acc;
//!          always @(posedge clk) acc <= acc + a * b;
//!          assign y = acc;
//!      endmodule",
//!     "mac",
//! )?;
//! let g = GraphIr::from_netlist(&nl);
//! let paths = PathSampler::new(SampleConfig::exhaustive()).sample(&g);
//! // Figure 2(c): the MAC has exactly 4 complete circuit paths.
//! assert_eq!(paths.len(), 4);
//! # Ok(())
//! # }
//! ```

use std::collections::HashSet;

use sns_rt::rng::{SliceRandom, StdRng};

use sns_graphir::{GraphIr, VertexId, Vocab};

/// Hard ceiling on DFS recursion depth, independent of
/// [`SampleConfig::max_len`]. Paths are bounded by
/// `max_len.min(MAX_DFS_DEPTH)` so that no configuration can recurse
/// deeply enough to overflow a 2 MiB worker-thread stack on adversarial
/// graph topology.
pub const MAX_DFS_DEPTH: usize = 4096;

/// Configuration for the path sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleConfig {
    /// The sampling density parameter `k` of Algorithm 1: `⌈d / k⌉`
    /// successors are followed at each vertex. Must be ≥ 1.
    pub k: u32,
    /// Hard cap on the number of paths collected (exhaustive sampling can
    /// be combinatorial).
    pub max_paths: usize,
    /// Paths longer than this are abandoned (the paper observes real
    /// circuit paths max out around 500; the Circuitformer input limit
    /// is 512).
    pub max_len: usize,
    /// RNG seed; sampling is fully deterministic for a given seed.
    pub seed: u64,
    /// Whether to drop duplicate paths (same vertex sequence).
    pub dedup: bool,
}

impl SampleConfig {
    /// The paper's training configuration: `k = 5`.
    pub fn paper_default() -> Self {
        SampleConfig { k: 5, max_paths: 100_000, max_len: 512, seed: 0xC1BC0117, dedup: true }
    }

    /// Exhaustive sampling (`k = 1`), as in Figure 2(c).
    pub fn exhaustive() -> Self {
        SampleConfig { k: 1, ..SampleConfig::paper_default() }
    }

    /// Sets the density parameter.
    pub fn with_k(mut self, k: u32) -> Self {
        assert!(k >= 1, "k must be at least 1");
        self.k = k;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the path-count cap.
    pub fn with_max_paths(mut self, max_paths: usize) -> Self {
        self.max_paths = max_paths;
        self
    }
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig::paper_default()
    }
}

/// A sampled complete circuit path: a terminal-to-terminal vertex sequence.
///
/// The vertex ids keep the path located in the design, which is how SNS can
/// report *where* the critical path is (§2.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CircuitPath {
    vertices: Vec<VertexId>,
}

impl CircuitPath {
    /// Creates a path from a vertex sequence.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two vertices are given (a complete path has at
    /// least a start and an end terminal).
    pub fn new(vertices: Vec<VertexId>) -> Self {
        assert!(vertices.len() >= 2, "a complete circuit path has at least two vertices");
        CircuitPath { vertices }
    }

    /// The vertex ids along the path.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Path length in vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always false (paths have ≥ 2 vertices).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The token names along the path, e.g. `["io8", "mul16", "add16",
    /// "dff16"]` — the representation of Table 5.
    pub fn token_names(&self, graph: &GraphIr) -> Vec<String> {
        self.vertices.iter().map(|&v| graph.vertex(v).vertex.token_name()).collect()
    }

    /// The dense vocabulary token ids along the path (for the
    /// Circuitformer). Vertices whose `(type,width)` fall outside the
    /// vocabulary are impossible by construction with the built-in vocab;
    /// with a caller-supplied narrower vocabulary, out-of-vocabulary
    /// vertices are skipped rather than panicking.
    pub fn token_ids(&self, graph: &GraphIr, vocab: &Vocab) -> Vec<usize> {
        self.vertices
            .iter()
            .filter_map(|&v| vocab.token_id(graph.vertex(v).vertex))
            .collect()
    }
}

/// The DFS-based random path sampler (Algorithm 1).
#[derive(Debug)]
pub struct PathSampler {
    config: SampleConfig,
}

impl PathSampler {
    /// Creates a sampler with the given configuration.
    pub fn new(config: SampleConfig) -> Self {
        PathSampler { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SampleConfig {
        &self.config
    }

    /// Samples complete circuit paths from `graph`.
    ///
    /// Traversal starts at every terminal vertex in id order; the result is
    /// deterministic for a fixed seed. Returns fewer than `max_paths` paths
    /// if the graph is exhausted first.
    pub fn sample(&self, graph: &GraphIr) -> Vec<CircuitPath> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut out: Vec<CircuitPath> = Vec::new();
        let mut seen: HashSet<Vec<VertexId>> = HashSet::new();
        let mut stack: Vec<VertexId> = Vec::new();
        let mut on_path = vec![false; graph.vertex_count()];

        for start in graph.terminals() {
            if out.len() >= self.config.max_paths {
                break;
            }
            // The start terminal is deliberately NOT marked on-path: a path
            // may legally return to its own register (e.g. `acc <= acc + x`
            // yields dff -> add -> dff on the same flip-flop).
            stack.push(start);
            let succs = self.pick(graph.successors(start), &mut rng);
            for v in succs {
                self.dfs(graph, v, &mut stack, &mut on_path, &mut out, &mut seen, &mut rng);
                if out.len() >= self.config.max_paths {
                    break;
                }
            }
            stack.pop();
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        graph: &GraphIr,
        v: VertexId,
        stack: &mut Vec<VertexId>,
        on_path: &mut [bool],
        out: &mut Vec<CircuitPath>,
        seen: &mut HashSet<Vec<VertexId>>,
        rng: &mut StdRng,
    ) {
        // `max_len` also bounds the recursion depth here; clamp it so a
        // caller-supplied huge limit cannot turn untrusted graph topology
        // into a stack overflow (the sampler runs inside the serving path).
        // The paper's default (512) is far below the clamp, so results are
        // unchanged for every supported configuration.
        if out.len() >= self.config.max_paths
            || stack.len() >= self.config.max_len.min(MAX_DFS_DEPTH)
        {
            return;
        }
        if on_path[v.0 as usize] {
            return; // combinational loop guard
        }
        stack.push(v);
        if graph.vertex(v).is_terminal() {
            let path = stack.clone();
            if !self.config.dedup || seen.insert(path.clone()) {
                out.push(CircuitPath { vertices: path });
            }
            stack.pop();
            return;
        }
        on_path[v.0 as usize] = true;
        for s in self.pick(graph.successors(v), rng) {
            self.dfs(graph, s, stack, on_path, out, seen, rng);
            if out.len() >= self.config.max_paths {
                break;
            }
        }
        on_path[v.0 as usize] = false;
        stack.pop();
    }

    /// Chooses `⌈d / k⌉` successors (at least one, when any exist).
    fn pick(&self, succs: &[VertexId], rng: &mut StdRng) -> Vec<VertexId> {
        if succs.is_empty() {
            return Vec::new();
        }
        let d = succs.len();
        let n = d.div_ceil(self.config.k as usize).max(1);
        if n >= d {
            return succs.to_vec();
        }
        let mut chosen: Vec<VertexId> = succs.to_vec();
        chosen.shuffle(rng);
        chosen.truncate(n);
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_netlist::parse_and_elaborate;

    fn mac_graph() -> GraphIr {
        let nl = parse_and_elaborate(
            "module mac (input clk, input [7:0] a, b, output [15:0] y);
                 reg [15:0] acc;
                 always @(posedge clk) acc <= acc + a * b;
                 assign y = acc;
             endmodule",
            "mac",
        )
        .unwrap();
        GraphIr::from_netlist(&nl)
    }

    #[test]
    fn figure_2c_exhaustive_paths_of_the_mac() {
        let g = mac_graph();
        let paths = PathSampler::new(SampleConfig::exhaustive()).sample(&g);
        let mut named: Vec<Vec<String>> = paths.iter().map(|p| p.token_names(&g)).collect();
        named.sort();
        // The four complete circuit paths from Figure 2(c):
        assert_eq!(
            named,
            vec![
                vec!["dff16", "add16", "dff16"],
                vec!["dff16", "io16"],
                vec!["io8", "mul16", "add16", "dff16"],
                vec!["io8", "mul16", "add16", "dff16"],
            ]
            .into_iter()
            .map(|v: Vec<&str>| v.into_iter().map(String::from).collect::<Vec<String>>())
            .collect::<Vec<_>>()
        );
    }

    #[test]
    fn paths_start_and_end_at_terminals() {
        let g = mac_graph();
        for p in PathSampler::new(SampleConfig::exhaustive()).sample(&g) {
            let first = g.vertex(p.vertices()[0]);
            let last = g.vertex(*p.vertices().last().unwrap());
            assert!(first.is_terminal() && last.is_terminal());
            // Interior vertices are all non-terminal.
            for &v in &p.vertices()[1..p.len() - 1] {
                assert!(!g.vertex(v).is_terminal());
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let g = mac_graph();
        let c = SampleConfig::paper_default().with_seed(7);
        let a = PathSampler::new(c.clone()).sample(&g);
        let b = PathSampler::new(c).sample(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn larger_k_samples_fewer_or_equal_paths() {
        // A wider fan-out design so k matters.
        let src = "module fan (input clk, input [7:0] a, output [7:0] y0, y1, y2, y3);
                       wire [7:0] t = a + 8'd1;
                       assign y0 = t + 8'd2;
                       assign y1 = t + 8'd3;
                       assign y2 = t * 8'd5;
                       assign y3 = t ^ 8'hAA;
                   endmodule";
        let nl = parse_and_elaborate(src, "fan").unwrap();
        let g = GraphIr::from_netlist(&nl);
        let all = PathSampler::new(SampleConfig::exhaustive()).sample(&g).len();
        let sparse = PathSampler::new(SampleConfig::paper_default().with_k(4)).sample(&g).len();
        assert!(all >= sparse, "exhaustive {all} < sparse {sparse}");
        assert!(sparse >= 1);
    }

    #[test]
    fn max_paths_cap_is_respected() {
        let g = mac_graph();
        let paths =
            PathSampler::new(SampleConfig::exhaustive().with_max_paths(2)).sample(&g);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn token_ids_are_in_vocabulary_range() {
        let g = mac_graph();
        let vocab = Vocab::new();
        for p in PathSampler::new(SampleConfig::exhaustive()).sample(&g) {
            for id in p.token_ids(&g, &vocab) {
                assert!(id < vocab.len());
            }
        }
    }

    #[test]
    fn dedup_removes_duplicate_sequences() {
        let g = mac_graph();
        let mut c = SampleConfig::exhaustive();
        c.dedup = false;
        let with_dups = PathSampler::new(c.clone()).sample(&g);
        c.dedup = true;
        let without = PathSampler::new(c).sample(&g);
        assert!(without.len() <= with_dups.len());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_vertex_path_is_rejected() {
        let _ = CircuitPath::new(vec![VertexId(0)]);
    }

    #[test]
    fn combinational_feedback_does_not_hang() {
        // Artificial graph with a comb loop is hard to produce from valid
        // Verilog; instead check a dff self-loop (acc <= acc + 1) works.
        let nl = parse_and_elaborate(
            "module ctr (input clk, output [7:0] y);
                 reg [7:0] c;
                 always @(posedge clk) c <= c + 8'd1;
                 assign y = c;
             endmodule",
            "ctr",
        )
        .unwrap();
        let g = GraphIr::from_netlist(&nl);
        let paths = PathSampler::new(SampleConfig::exhaustive()).sample(&g);
        assert!(!paths.is_empty());
    }
}
