//! # sns-sampler
//!
//! Complete-circuit-path sampling (§3.2 / Algorithm 1 of the SNS paper).
//!
//! A *complete circuit path* begins and ends at a vertex that contains
//! flip-flops (a register or an I/O port) and captures the "one-cycle
//! behaviour" of a design. The sampler performs a depth-first traversal
//! from every terminal vertex; at each interior vertex with out-degree
//! `d`, it follows `⌈d / k⌉` randomly chosen successors (at least one).
//! `k = 1` samples exhaustively; larger `k` samples sparser. The paper
//! uses `k = 5` for training.
//!
//! # Example
//!
//! ```rust
//! use sns_netlist::parse_and_elaborate;
//! use sns_graphir::GraphIr;
//! use sns_sampler::{PathSampler, SampleConfig};
//!
//! # fn main() -> Result<(), sns_netlist::NetlistError> {
//! let nl = parse_and_elaborate(
//!     "module mac (input clk, input [7:0] a, b, output [15:0] y);
//!          reg [15:0] acc;
//!          always @(posedge clk) acc <= acc + a * b;
//!          assign y = acc;
//!      endmodule",
//!     "mac",
//! )?;
//! let g = GraphIr::from_netlist(&nl);
//! let paths = PathSampler::new(SampleConfig::exhaustive()).sample(&g);
//! // Figure 2(c): the MAC has exactly 4 complete circuit paths.
//! assert_eq!(paths.len(), 4);
//! # Ok(())
//! # }
//! ```

use std::borrow::Borrow;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use sns_rt::rng::{SliceRandom, StdRng};

use sns_graphir::{GraphIr, VertexId, Vocab};

/// Hard ceiling on DFS recursion depth, independent of
/// [`SampleConfig::max_len`]. Paths are bounded by
/// `max_len.min(MAX_DFS_DEPTH)` so that no configuration can recurse
/// deeply enough to overflow a 2 MiB worker-thread stack on adversarial
/// graph topology.
pub const MAX_DFS_DEPTH: usize = 4096;

/// Configuration for the path sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleConfig {
    /// The sampling density parameter `k` of Algorithm 1: `⌈d / k⌉`
    /// successors are followed at each vertex. Must be ≥ 1.
    pub k: u32,
    /// Hard cap on the number of paths collected (exhaustive sampling can
    /// be combinatorial).
    pub max_paths: usize,
    /// Paths longer than this are abandoned (the paper observes real
    /// circuit paths max out around 500; the Circuitformer input limit
    /// is 512).
    pub max_len: usize,
    /// RNG seed; sampling is fully deterministic for a given seed.
    pub seed: u64,
    /// Whether to drop duplicate paths (same vertex sequence).
    pub dedup: bool,
}

impl SampleConfig {
    /// The paper's training configuration: `k = 5`.
    pub fn paper_default() -> Self {
        SampleConfig { k: 5, max_paths: 100_000, max_len: 512, seed: 0xC1BC0117, dedup: true }
    }

    /// Exhaustive sampling (`k = 1`), as in Figure 2(c).
    pub fn exhaustive() -> Self {
        SampleConfig { k: 1, ..SampleConfig::paper_default() }
    }

    /// Sets the density parameter.
    pub fn with_k(mut self, k: u32) -> Self {
        assert!(k >= 1, "k must be at least 1");
        self.k = k;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the path-count cap.
    pub fn with_max_paths(mut self, max_paths: usize) -> Self {
        self.max_paths = max_paths;
        self
    }
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig::paper_default()
    }
}

/// A sampled complete circuit path: a terminal-to-terminal vertex sequence.
///
/// The vertex ids keep the path located in the design, which is how SNS can
/// report *where* the critical path is (§2.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CircuitPath {
    vertices: Vec<VertexId>,
}

impl CircuitPath {
    /// Creates a path from a vertex sequence.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two vertices are given (a complete path has at
    /// least a start and an end terminal).
    pub fn new(vertices: Vec<VertexId>) -> Self {
        assert!(vertices.len() >= 2, "a complete circuit path has at least two vertices");
        CircuitPath { vertices }
    }

    /// The vertex ids along the path.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Path length in vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always false (paths have ≥ 2 vertices).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The token names along the path, e.g. `["io8", "mul16", "add16",
    /// "dff16"]` — the representation of Table 5.
    pub fn token_names(&self, graph: &GraphIr) -> Vec<String> {
        self.vertices.iter().map(|&v| graph.vertex(v).vertex.token_name()).collect()
    }

    /// The dense vocabulary token ids along the path (for the
    /// Circuitformer). Vertices whose `(type,width)` fall outside the
    /// vocabulary are impossible by construction with the built-in vocab;
    /// with a caller-supplied narrower vocabulary, out-of-vocabulary
    /// vertices are skipped rather than panicking.
    pub fn token_ids(&self, graph: &GraphIr, vocab: &Vocab) -> Vec<usize> {
        self.vertices
            .iter()
            .filter_map(|&v| vocab.token_id(graph.vertex(v).vertex))
            .collect()
    }
}

/// A sampled path in id-independent form: hierarchical vertex names (for
/// provenance/critical-path reporting) plus the vocabulary token ids the
/// Circuitformer consumes. Unlike [`CircuitPath`], this survives
/// re-elaboration — names are stable across edits to other modules, raw
/// [`VertexId`]s are not.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PortablePath {
    /// Hierarchical vertex names along the path.
    pub names: Vec<String>,
    /// Dense vocabulary token ids along the path.
    pub tokens: Vec<usize>,
}

/// A 128-bit signature of a terminal's forward sampling region; see
/// [`PathSampler::terminal_signature`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegionSig(pub u64, pub u64);

/// All paths sampled from one terminal, keyed by its stable name, plus
/// the region signature under which they were sampled.
#[derive(Debug, Clone, PartialEq)]
pub struct TerminalSample {
    /// The terminal vertex's hierarchical name.
    pub name: String,
    /// Signature of the forward region the sample was drawn from.
    pub signature: RegionSig,
    /// The sampled paths, in deterministic DFS order.
    pub paths: Vec<PortablePath>,
}

/// Result of [`PathSampler::resample`]: the merged per-terminal samples
/// plus how many terminals were reused vs re-run. Samples are
/// reference-counted so that reusing an untouched terminal is a pointer
/// bump, not a deep clone of its path list.
#[derive(Debug, Clone, PartialEq)]
pub struct ResampleOutcome {
    /// Per-terminal samples for the new graph, in terminal-id order.
    pub samples: Vec<Arc<TerminalSample>>,
    /// Terminals whose cached sample was reused unchanged.
    pub reused: usize,
    /// Terminals whose forward region changed and were re-sampled.
    pub resampled: usize,
}

/// Flattens per-terminal samples into one global path list (terminal
/// order, then DFS order within a terminal), truncated to `max_paths` —
/// the shape consumed by prediction. Accepts owned and reference-counted
/// samples alike.
pub fn flatten_samples<S: Borrow<TerminalSample>>(
    samples: &[S],
    max_paths: usize,
) -> Vec<&PortablePath> {
    samples.iter().flat_map(|s| s.borrow().paths.iter()).take(max_paths).collect()
}

/// FNV-1a over a byte string (terminal-name RNG seeding).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Reusable scratch for region-signature walks. The visited map is
/// epoch-stamped: bumping the epoch invalidates every stamp at once, so
/// consecutive terminals share one allocation and never re-zero it.
#[derive(Debug, Default)]
struct SigScratch {
    visited: Vec<u32>,
    epoch: u32,
    work: Vec<VertexId>,
}

impl SigScratch {
    /// Starts a new walk over a graph with `n` vertices; returns the
    /// epoch that marks a vertex as visited in this walk.
    fn begin(&mut self, n: usize) -> u32 {
        if self.visited.len() < n {
            self.visited.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: stale stamps could alias, so clear once.
            self.visited.iter_mut().for_each(|v| *v = 0);
            self.epoch = 1;
        }
        self.work.clear();
        self.epoch
    }
}

/// A vertex's successors ordered by hierarchical name instead of raw id,
/// so traversal order survives id shifts from unrelated edits.
fn ordered_successors(graph: &GraphIr, v: VertexId) -> Vec<VertexId> {
    let mut s: Vec<VertexId> = graph.successors(v).to_vec();
    s.sort_by(|a, b| {
        graph.vertex(*a).name.cmp(&graph.vertex(*b).name).then(a.0.cmp(&b.0))
    });
    s
}

/// The DFS-based random path sampler (Algorithm 1).
#[derive(Debug)]
pub struct PathSampler {
    config: SampleConfig,
}

impl PathSampler {
    /// Creates a sampler with the given configuration.
    pub fn new(config: SampleConfig) -> Self {
        PathSampler { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SampleConfig {
        &self.config
    }

    /// Samples complete circuit paths from `graph`.
    ///
    /// Traversal starts at every terminal vertex in id order; the result is
    /// deterministic for a fixed seed. Returns fewer than `max_paths` paths
    /// if the graph is exhausted first.
    pub fn sample(&self, graph: &GraphIr) -> Vec<CircuitPath> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut out: Vec<CircuitPath> = Vec::new();
        let mut seen: HashSet<Vec<VertexId>> = HashSet::new();
        let mut stack: Vec<VertexId> = Vec::new();
        let mut on_path = vec![false; graph.vertex_count()];

        for start in graph.terminals() {
            if out.len() >= self.config.max_paths {
                break;
            }
            // The start terminal is deliberately NOT marked on-path: a path
            // may legally return to its own register (e.g. `acc <= acc + x`
            // yields dff -> add -> dff on the same flip-flop).
            stack.push(start);
            let succs = self.pick(graph.successors(start), &mut rng);
            for v in succs {
                self.dfs(graph, v, &mut stack, &mut on_path, &mut out, &mut seen, &mut rng);
                if out.len() >= self.config.max_paths {
                    break;
                }
            }
            stack.pop();
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        graph: &GraphIr,
        v: VertexId,
        stack: &mut Vec<VertexId>,
        on_path: &mut [bool],
        out: &mut Vec<CircuitPath>,
        seen: &mut HashSet<Vec<VertexId>>,
        rng: &mut StdRng,
    ) {
        // `max_len` also bounds the recursion depth here; clamp it so a
        // caller-supplied huge limit cannot turn untrusted graph topology
        // into a stack overflow (the sampler runs inside the serving path).
        // The paper's default (512) is far below the clamp, so results are
        // unchanged for every supported configuration.
        if out.len() >= self.config.max_paths
            || stack.len() >= self.config.max_len.min(MAX_DFS_DEPTH)
        {
            return;
        }
        if on_path[v.0 as usize] {
            return; // combinational loop guard
        }
        stack.push(v);
        if graph.vertex(v).is_terminal() {
            let path = stack.clone();
            if !self.config.dedup || seen.insert(path.clone()) {
                out.push(CircuitPath { vertices: path });
            }
            stack.pop();
            return;
        }
        on_path[v.0 as usize] = true;
        for s in self.pick(graph.successors(v), rng) {
            self.dfs(graph, s, stack, on_path, out, seen, rng);
            if out.len() >= self.config.max_paths {
                break;
            }
        }
        on_path[v.0 as usize] = false;
        stack.pop();
    }

    // ----------------------------------------------------------------
    // Per-terminal incremental sampling
    // ----------------------------------------------------------------

    /// Samples one terminal into id-independent [`PortablePath`]s.
    ///
    /// Unlike [`PathSampler::sample`], the traversal here is a pure
    /// function of the terminal's *named* forward region: successors are
    /// visited in vertex-name order (names are hierarchical and survive
    /// re-elaboration; raw [`VertexId`]s shift when other modules change
    /// size) and the RNG is seeded from `config.seed ⊕ hash(terminal
    /// name)`. Two graphs in which the terminal has an identical forward
    /// region — equal [`terminal_signature`] — therefore yield identical
    /// samples, which is what lets an ECO reuse cached paths for every
    /// terminal the edit did not touch.
    ///
    /// [`terminal_signature`]: PathSampler::terminal_signature
    pub fn sample_terminal(
        &self,
        graph: &GraphIr,
        vocab: &Vocab,
        start: VertexId,
    ) -> TerminalSample {
        self.sample_terminal_scratched(graph, vocab, start, &mut SigScratch::default())
    }

    fn sample_terminal_scratched(
        &self,
        graph: &GraphIr,
        vocab: &Vocab,
        start: VertexId,
        scratch: &mut SigScratch,
    ) -> TerminalSample {
        let name = graph.vertex(start).name.clone();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ fnv64(name.as_bytes()));
        let mut paths: Vec<PortablePath> = Vec::new();
        let mut seen: HashSet<Vec<VertexId>> = HashSet::new();
        let mut stack: Vec<VertexId> = vec![start];
        let mut on_path = vec![false; graph.vertex_count()];
        for v in self.pick(&ordered_successors(graph, start), &mut rng) {
            self.dfs_portable(
                graph, vocab, v, &mut stack, &mut on_path, &mut paths, &mut seen, &mut rng,
            );
            if paths.len() >= self.config.max_paths {
                break;
            }
        }
        let signature = self.signature_scratched(graph, start, scratch);
        TerminalSample { name, signature, paths }
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_portable(
        &self,
        graph: &GraphIr,
        vocab: &Vocab,
        v: VertexId,
        stack: &mut Vec<VertexId>,
        on_path: &mut [bool],
        out: &mut Vec<PortablePath>,
        seen: &mut HashSet<Vec<VertexId>>,
        rng: &mut StdRng,
    ) {
        if out.len() >= self.config.max_paths
            || stack.len() >= self.config.max_len.min(MAX_DFS_DEPTH)
        {
            return;
        }
        if on_path[v.0 as usize] {
            return; // combinational loop guard
        }
        stack.push(v);
        if graph.vertex(v).is_terminal() {
            if !self.config.dedup || seen.insert(stack.clone()) {
                out.push(PortablePath {
                    names: stack.iter().map(|&x| graph.vertex(x).name.clone()).collect(),
                    tokens: stack
                        .iter()
                        .filter_map(|&x| vocab.token_id(graph.vertex(x).vertex))
                        .collect(),
                });
            }
            stack.pop();
            return;
        }
        on_path[v.0 as usize] = true;
        for s in self.pick(&ordered_successors(graph, v), rng) {
            self.dfs_portable(graph, vocab, s, stack, on_path, out, seen, rng);
            if out.len() >= self.config.max_paths {
                break;
            }
        }
        on_path[v.0 as usize] = false;
        stack.pop();
    }

    /// A 128-bit structural signature of the terminal's forward region —
    /// everything [`PathSampler::sample_terminal`] can observe: the
    /// terminal's own name, and for every vertex reachable through
    /// non-terminal interiors its name, vocabulary token and (for expanded
    /// vertices) the multiset of its successor names. Equal signatures
    /// imply bit-identical [`TerminalSample`]s under the same
    /// configuration and vocabulary.
    pub fn terminal_signature(&self, graph: &GraphIr, start: VertexId) -> RegionSig {
        self.signature_scratched(graph, start, &mut SigScratch::default())
    }

    /// [`terminal_signature`] with caller-owned scratch. The signature is
    /// assembled commutatively — each region vertex contributes a chained
    /// hash of its name, token and successor-name multiset, and the
    /// contributions are summed — so the walk needs no sort and no
    /// ordering guarantees, and the epoch-stamped visited map never
    /// re-zeroes between terminals. This runs once per terminal on every
    /// (re)sample, which makes it the fixed cost of a warm ECO pass.
    ///
    /// [`terminal_signature`]: PathSampler::terminal_signature
    fn signature_scratched(
        &self,
        graph: &GraphIr,
        start: VertexId,
        scratch: &mut SigScratch,
    ) -> RegionSig {
        let epoch = scratch.begin(graph.vertex_count());
        scratch.visited[start.0 as usize] = epoch;
        scratch.work.push(start);
        let (mut h0, mut h1) = (0xcbf2_9ce4_8422_2325u64, 0x6c62_272e_07bb_0142u64);
        let mix = |h0: &mut u64, h1: &mut u64, bytes: &[u8]| {
            for &b in bytes {
                *h0 = (*h0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
                *h1 = (*h1 ^ b as u64).wrapping_mul(0x0000_0100_0000_01B5);
            }
            *h0 = (*h0 ^ 0xFF).wrapping_mul(0x0000_0100_0000_01B3);
            *h1 = (*h1 ^ 0xFF).wrapping_mul(0x0000_0100_0000_01B5);
        };
        mix(&mut h0, &mut h1, graph.vertex(start).name.as_bytes());
        let (mut a0, mut a1) = (0u64, 0u64);
        while let Some(v) = scratch.work.pop() {
            let info = graph.vertex(v);
            let expanded = v == start || !info.is_terminal();
            let (mut c0, mut c1) = (0xcbf2_9ce4_8422_2325u64, 0x6c62_272e_07bb_0142u64);
            mix(&mut c0, &mut c1, info.name.as_bytes());
            mix(&mut c0, &mut c1, info.vertex.token_name().as_bytes());
            mix(&mut c0, &mut c1, &[expanded as u8]);
            if expanded {
                // Successor-name multiset: per-name hashes summed, so the
                // storage order of the adjacency list is irrelevant.
                let (mut s0, mut s1) = (0u64, 0u64);
                for &s in graph.successors(v) {
                    let (mut n0, mut n1) =
                        (0xcbf2_9ce4_8422_2325u64, 0x6c62_272e_07bb_0142u64);
                    mix(&mut n0, &mut n1, graph.vertex(s).name.as_bytes());
                    s0 = s0.wrapping_add(n0);
                    s1 = s1.wrapping_add(n1);
                    if scratch.visited[s.0 as usize] != epoch {
                        scratch.visited[s.0 as usize] = epoch;
                        scratch.work.push(s);
                    }
                }
                c0 = (c0 ^ s0).wrapping_mul(0x0000_0100_0000_01B3);
                c1 = (c1 ^ s1).wrapping_mul(0x0000_0100_0000_01B5);
            }
            a0 = a0.wrapping_add(c0);
            a1 = a1.wrapping_add(c1);
        }
        RegionSig(h0.wrapping_add(a0), h1.wrapping_add(a1))
    }

    /// Samples every terminal of the graph into per-terminal portable
    /// samples, in terminal-id order (ports first, then registers in cell
    /// order). [`flatten_samples`] turns the result into the global path
    /// list consumed by prediction.
    pub fn sample_by_terminal(&self, graph: &GraphIr, vocab: &Vocab) -> Vec<TerminalSample> {
        let mut scratch = SigScratch::default();
        graph
            .terminals()
            .into_iter()
            .map(|t| self.sample_terminal_scratched(graph, vocab, t, &mut scratch))
            .collect()
    }

    /// Re-samples a design after an edit, reusing the previous sample of
    /// every terminal whose forward-region signature is unchanged and
    /// re-running the DFS only for terminals the edit touched. The result
    /// is bit-identical to [`PathSampler::sample_by_terminal`] on the new
    /// graph from scratch.
    pub fn resample(
        &self,
        graph: &GraphIr,
        vocab: &Vocab,
        prev: &HashMap<String, Arc<TerminalSample>>,
    ) -> ResampleOutcome {
        let mut scratch = SigScratch::default();
        let mut samples = Vec::new();
        let (mut reused, mut resampled) = (0, 0);
        for t in graph.terminals() {
            let name = &graph.vertex(t).name;
            let sig = self.signature_scratched(graph, t, &mut scratch);
            match prev.get(name) {
                Some(old) if old.signature == sig => {
                    reused += 1;
                    samples.push(Arc::clone(old));
                }
                _ => {
                    resampled += 1;
                    samples.push(Arc::new(
                        self.sample_terminal_scratched(graph, vocab, t, &mut scratch),
                    ));
                }
            }
        }
        ResampleOutcome { samples, reused, resampled }
    }

    /// Chooses `⌈d / k⌉` successors (at least one, when any exist).
    fn pick(&self, succs: &[VertexId], rng: &mut StdRng) -> Vec<VertexId> {
        if succs.is_empty() {
            return Vec::new();
        }
        let d = succs.len();
        let n = d.div_ceil(self.config.k as usize).max(1);
        if n >= d {
            return succs.to_vec();
        }
        let mut chosen: Vec<VertexId> = succs.to_vec();
        chosen.shuffle(rng);
        chosen.truncate(n);
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_netlist::parse_and_elaborate;

    fn mac_graph() -> GraphIr {
        let nl = parse_and_elaborate(
            "module mac (input clk, input [7:0] a, b, output [15:0] y);
                 reg [15:0] acc;
                 always @(posedge clk) acc <= acc + a * b;
                 assign y = acc;
             endmodule",
            "mac",
        )
        .unwrap();
        GraphIr::from_netlist(&nl)
    }

    #[test]
    fn figure_2c_exhaustive_paths_of_the_mac() {
        let g = mac_graph();
        let paths = PathSampler::new(SampleConfig::exhaustive()).sample(&g);
        let mut named: Vec<Vec<String>> = paths.iter().map(|p| p.token_names(&g)).collect();
        named.sort();
        // The four complete circuit paths from Figure 2(c):
        assert_eq!(
            named,
            vec![
                vec!["dff16", "add16", "dff16"],
                vec!["dff16", "io16"],
                vec!["io8", "mul16", "add16", "dff16"],
                vec!["io8", "mul16", "add16", "dff16"],
            ]
            .into_iter()
            .map(|v: Vec<&str>| v.into_iter().map(String::from).collect::<Vec<String>>())
            .collect::<Vec<_>>()
        );
    }

    #[test]
    fn paths_start_and_end_at_terminals() {
        let g = mac_graph();
        for p in PathSampler::new(SampleConfig::exhaustive()).sample(&g) {
            let first = g.vertex(p.vertices()[0]);
            let last = g.vertex(*p.vertices().last().unwrap());
            assert!(first.is_terminal() && last.is_terminal());
            // Interior vertices are all non-terminal.
            for &v in &p.vertices()[1..p.len() - 1] {
                assert!(!g.vertex(v).is_terminal());
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let g = mac_graph();
        let c = SampleConfig::paper_default().with_seed(7);
        let a = PathSampler::new(c.clone()).sample(&g);
        let b = PathSampler::new(c).sample(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn larger_k_samples_fewer_or_equal_paths() {
        // A wider fan-out design so k matters.
        let src = "module fan (input clk, input [7:0] a, output [7:0] y0, y1, y2, y3);
                       wire [7:0] t = a + 8'd1;
                       assign y0 = t + 8'd2;
                       assign y1 = t + 8'd3;
                       assign y2 = t * 8'd5;
                       assign y3 = t ^ 8'hAA;
                   endmodule";
        let nl = parse_and_elaborate(src, "fan").unwrap();
        let g = GraphIr::from_netlist(&nl);
        let all = PathSampler::new(SampleConfig::exhaustive()).sample(&g).len();
        let sparse = PathSampler::new(SampleConfig::paper_default().with_k(4)).sample(&g).len();
        assert!(all >= sparse, "exhaustive {all} < sparse {sparse}");
        assert!(sparse >= 1);
    }

    #[test]
    fn max_paths_cap_is_respected() {
        let g = mac_graph();
        let paths =
            PathSampler::new(SampleConfig::exhaustive().with_max_paths(2)).sample(&g);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn token_ids_are_in_vocabulary_range() {
        let g = mac_graph();
        let vocab = Vocab::new();
        for p in PathSampler::new(SampleConfig::exhaustive()).sample(&g) {
            for id in p.token_ids(&g, &vocab) {
                assert!(id < vocab.len());
            }
        }
    }

    #[test]
    fn dedup_removes_duplicate_sequences() {
        let g = mac_graph();
        let mut c = SampleConfig::exhaustive();
        c.dedup = false;
        let with_dups = PathSampler::new(c.clone()).sample(&g);
        c.dedup = true;
        let without = PathSampler::new(c).sample(&g);
        assert!(without.len() <= with_dups.len());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_vertex_path_is_rejected() {
        let _ = CircuitPath::new(vec![VertexId(0)]);
    }

    fn graph_of(src: &str, top: &str) -> GraphIr {
        GraphIr::from_netlist(&parse_and_elaborate(src, top).unwrap())
    }

    const SHARED: &str = "module acc8 (input clk, input [7:0] a, output [7:0] y);
                              reg [7:0] r;
                              always @(posedge clk) r <= (r + a) ^ (r & a);
                              assign y = r;
                          endmodule";

    #[test]
    fn terminal_samples_survive_vertex_id_shifts() {
        // Design B prepends an unrelated instance, shifting every vertex id
        // of the shared accumulator — its terminal samples must not change.
        let a = graph_of(
            &format!("{SHARED} module ta (input clk, input [7:0] p, output [7:0] q);
                          acc8 u (.clk(clk), .a(p), .y(q));
                      endmodule"),
            "ta",
        );
        let b = graph_of(
            &format!("{SHARED}
                      module noise (input [7:0] x, output [7:0] z);
                          assign z = (x * 8'd3) + 8'd7;
                      endmodule
                      module tb (input clk, input [7:0] p, output [7:0] q, output [7:0] w);
                          noise n (.x(p), .z(w));
                          acc8 u (.clk(clk), .a(p), .y(q));
                      endmodule"),
            "tb",
        );
        let sampler = PathSampler::new(SampleConfig::paper_default().with_k(2));
        let vocab = Vocab::new();
        let find = |g: &GraphIr, name: &str| {
            g.vertices_enumerated().find(|(_, v)| v.name == name).unwrap().0
        };
        let (ta, tb) = (find(&a, "u.r"), find(&b, "u.r"));
        assert_ne!(ta, tb, "test needs a real id shift to be meaningful");
        let sa = sampler.sample_terminal(&a, &vocab, ta);
        let sb = sampler.sample_terminal(&b, &vocab, tb);
        assert_eq!(sa.signature, sb.signature);
        assert_eq!(sa, sb);
        assert!(!sa.paths.is_empty());
    }

    #[test]
    fn resample_reuses_untouched_terminals_and_matches_scratch() {
        let mk = |leaf_body: &str| {
            graph_of(
                &format!(
                    "module leaf (input [7:0] a, output [7:0] y); assign y = {leaf_body}; endmodule
                     module keep (input clk, input [7:0] a, output [7:0] y);
                         reg [7:0] r;
                         always @(posedge clk) r <= r + a;
                         assign y = r;
                     endmodule
                     module top (input clk, input [7:0] p, output [7:0] y0, output [7:0] y1);
                         leaf l (.a(p), .y(y0));
                         keep k (.clk(clk), .a(p), .y(y1));
                     endmodule"
                ),
                "top",
            )
        };
        let v1 = mk("a + 8'd1");
        let v2 = mk("(a * 8'd5) ^ 8'h3C");
        let sampler = PathSampler::new(SampleConfig::paper_default().with_k(2));
        let vocab = Vocab::new();
        let prev: HashMap<String, Arc<TerminalSample>> = sampler
            .sample_by_terminal(&v1, &vocab)
            .into_iter()
            .map(|s| (s.name.clone(), Arc::new(s)))
            .collect();
        let outcome = sampler.resample(&v2, &vocab, &prev);
        // The register's region is untouched; the edit rewires y0's region.
        assert!(outcome.reused >= 1, "expected register terminal reuse");
        assert!(outcome.resampled >= 1, "expected edited-region resampling");
        let scratch: Vec<Arc<TerminalSample>> =
            sampler.sample_by_terminal(&v2, &vocab).into_iter().map(Arc::new).collect();
        assert_eq!(outcome.samples, scratch);
    }

    #[test]
    fn signature_tracks_region_edits_only() {
        let sampler = PathSampler::new(SampleConfig::paper_default());
        let vocab = Vocab::new();
        let g1 = graph_of(
            "module m (input clk, input [7:0] a, output [7:0] y);
                 reg [7:0] r;
                 always @(posedge clk) r <= r + a;
                 assign y = r;
             endmodule",
            "m",
        );
        let g2 = graph_of(
            "module m (input clk, input [7:0] a, output [7:0] y);
                 reg [7:0] r;
                 always @(posedge clk) r <= r * a;
                 assign y = r;
             endmodule",
            "m",
        );
        let find = |g: &GraphIr, name: &str| {
            g.vertices_enumerated().find(|(_, v)| v.name == name).unwrap().0
        };
        // The register's region changed (add → mul) → new signature.
        assert_ne!(
            sampler.terminal_signature(&g1, find(&g1, "r")),
            sampler.terminal_signature(&g2, find(&g2, "r"))
        );
        // The clock input's region is the register terminal itself in both.
        assert_eq!(
            sampler.terminal_signature(&g1, find(&g1, "clk")),
            sampler.terminal_signature(&g2, find(&g2, "clk"))
        );
        let s1 = sampler.sample_terminal(&g1, &vocab, find(&g1, "clk"));
        let s2 = sampler.sample_terminal(&g2, &vocab, find(&g2, "clk"));
        assert_eq!(s1, s2);
    }

    #[test]
    fn flatten_respects_cap_and_order() {
        let g = mac_graph();
        let sampler = PathSampler::new(SampleConfig::exhaustive());
        let samples = sampler.sample_by_terminal(&g, &Vocab::new());
        let total: usize = samples.iter().map(|s| s.paths.len()).sum();
        assert_eq!(flatten_samples(&samples, usize::MAX).len(), total);
        assert_eq!(flatten_samples(&samples, 2).len(), 2.min(total));
        // Flattened order is terminal order then DFS order.
        let flat = flatten_samples(&samples, usize::MAX);
        let manual: Vec<&PortablePath> =
            samples.iter().flat_map(|s| s.paths.iter()).collect();
        assert_eq!(flat, manual);
    }

    #[test]
    fn combinational_feedback_does_not_hang() {
        // Artificial graph with a comb loop is hard to produce from valid
        // Verilog; instead check a dff self-loop (acc <= acc + 1) works.
        let nl = parse_and_elaborate(
            "module ctr (input clk, output [7:0] y);
                 reg [7:0] c;
                 always @(posedge clk) c <= c + 8'd1;
                 assign y = c;
             endmodule",
            "ctr",
        )
        .unwrap();
        let g = GraphIr::from_netlist(&nl);
        let paths = PathSampler::new(SampleConfig::exhaustive()).sample(&g);
        assert!(!paths.is_empty());
    }
}
