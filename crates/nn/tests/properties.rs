//! Property-based tests for the neural-network substrate: gradient
//! correctness on random shapes and inputs, optimizer convergence, and
//! algebraic identities of the matrix kernels.
//!
//! Each test is a seeded loop over randomized cases (driven by
//! `sns_rt::rng`), preserving the properties the earlier proptest suite
//! checked while keeping the build hermetic.

use sns_nn::{
    load_params, save_params, Adam, Embedding, Grads, Gru, LayerNorm, Linear, Mat, ModelState,
    MultiHeadAttention, Optimizer, Param, ParamRegistry, Sgd,
};
use sns_rt::rng::StdRng;

/// Number of randomized cases per property (mirrors the old
/// `ProptestConfig::with_cases(32)`).
const CASES: u64 = 32;

fn rand_mat(rng: &mut StdRng, rows: usize, cols: usize) -> Mat {
    let mut m = Mat::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-1.5f32..1.5);
    }
    m
}

/// (A·B)·C == A·(B·C) within float tolerance, for random inputs.
#[test]
fn matmul_is_associative() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_mat(&mut rng, 3, 4);
        let b = rand_mat(&mut rng, 4, 5);
        let c = rand_mat(&mut rng, 5, 2);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            assert!((x - y).abs() < 1e-3, "seed {seed}: {x} vs {y}");
        }
    }
}

/// Transpose identities: (Aᵀ)ᵀ = A and (A·B)ᵀ = Bᵀ·Aᵀ.
#[test]
fn transpose_identities() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let a = rand_mat(&mut rng, 3, 5);
        let b = rand_mat(&mut rng, 5, 4);
        assert_eq!(a.transposed().transposed(), a.clone());
        let lhs = a.matmul(&b).transposed();
        let rhs = b.transposed().matmul(&a.transposed());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!((x - y).abs() < 1e-4, "seed {seed}");
        }
    }
}

/// Softmax rows are valid distributions and invariant to row shifts.
#[test]
fn softmax_properties() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let a = rand_mat(&mut rng, 4, 6);
        let shift = rng.gen_range(-10.0f32..10.0);
        let s = a.softmax_rows();
        for r in 0..4 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "seed {seed}");
            assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)), "seed {seed}");
        }
        let shifted = a.map(|v| v + shift).softmax_rows();
        for (x, y) in s.as_slice().iter().zip(shifted.as_slice()) {
            assert!((x - y).abs() < 1e-4, "seed {seed}: softmax must be shift-invariant");
        }
    }
}

/// Linear's input gradient matches finite differences on random data.
#[test]
fn linear_gradient_matches_fd() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(300 + seed);
        let x = rand_mat(&mut rng, 2, 3);
        let mut reg = ParamRegistry::new();
        let l = Linear::new(&mut reg, 3, 2, &mut rng);
        let loss = |x: &Mat| l.forward(x).0.as_slice().iter().map(|v| v * v).sum::<f32>();
        let (y, ctx) = l.forward(&x);
        let dy = y.scale(2.0);
        let mut grads = Grads::new(&reg);
        let dx = l.backward(&ctx, &dy, &mut grads);
        let eps = 1e-2;
        for r in 0..2 {
            for c in 0..3 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps);
                assert!(
                    (fd - dx.get(r, c)).abs() < 0.05 * (1.0 + fd.abs()),
                    "seed {seed} [{r}][{c}] fd={fd} analytic={}",
                    dx.get(r, c)
                );
            }
        }
    }
}

/// Attention output is permutation-covariant in positions when Q/K/V see
/// the same permuted input (self-attention without positional encodings
/// has no position preference).
#[test]
fn attention_is_position_covariant() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(400 + seed);
        let mut reg = ParamRegistry::new();
        let attn = MultiHeadAttention::new(&mut reg, 8, 2, &mut rng);
        let x = {
            let mut m = Mat::zeros(3, 8);
            for i in 0..24 {
                m.as_mut_slice()[i] = ((i * 37 + seed as usize) % 17) as f32 / 17.0 - 0.5;
            }
            m
        };
        let (y, _) = attn.forward(&x);
        // Swap rows 0 and 2 of the input; outputs swap identically.
        let xs = Mat::from_rows(&[x.row(2), x.row(1), x.row(0)]);
        let (ys, _) = attn.forward(&xs);
        for c in 0..8 {
            assert!((y.get(0, c) - ys.get(2, c)).abs() < 1e-4, "seed {seed}");
            assert!((y.get(2, c) - ys.get(0, c)).abs() < 1e-4, "seed {seed}");
            assert!((y.get(1, c) - ys.get(1, c)).abs() < 1e-4, "seed {seed}");
        }
    }
}

/// Every parameter's raw bits, in visit order — the comparison currency
/// for the round-trip and determinism properties below (`f32` equality
/// would let `-0.0 == 0.0` and NaN slip through).
fn param_bits(visit: impl FnMut(&mut dyn FnMut(&Param))) -> Vec<u32> {
    let mut visit = visit;
    let mut bits = Vec::new();
    visit(&mut |p: &Param| bits.extend(p.value.as_slice().iter().map(|v| v.to_bits())));
    bits
}

/// save → JSON text → load into a differently-initialized twin is
/// bit-identical, for every layer type in the crate.
#[test]
fn serialization_round_trips_bit_identically_for_every_layer() {
    // Each entry builds a (source, target) pair from distinct seeds and
    // returns their visit closures boxed behind a common shape.
    type VisitPair = (
        Box<dyn FnMut(&mut dyn FnMut(&Param))>,
        Box<dyn FnMut(&mut dyn FnMut(&mut Param))>,
        Box<dyn FnMut(&mut dyn FnMut(&Param))>,
    );
    let builders: Vec<(&str, fn(&mut StdRng, &mut StdRng) -> VisitPair)> = vec![
        ("linear", |ra, rb| {
            let mut reg = ParamRegistry::new();
            let a = Linear::new(&mut reg, 5, 3, ra);
            let b = std::rc::Rc::new(std::cell::RefCell::new(Linear::new(&mut reg, 5, 3, rb)));
            let (b1, b2) = (std::rc::Rc::clone(&b), b);
            (
                Box::new(move |f: &mut dyn FnMut(&Param)| a.visit(f)),
                Box::new(move |f: &mut dyn FnMut(&mut Param)| b1.borrow_mut().visit_mut(f)),
                Box::new(move |f: &mut dyn FnMut(&Param)| b2.borrow().visit(f)),
            )
        }),
        ("embedding", |ra, rb| {
            let mut reg = ParamRegistry::new();
            let a = Embedding::new(&mut reg, 11, 4, ra);
            let b = std::rc::Rc::new(std::cell::RefCell::new(Embedding::new(&mut reg, 11, 4, rb)));
            let (b1, b2) = (std::rc::Rc::clone(&b), b);
            (
                Box::new(move |f: &mut dyn FnMut(&Param)| a.visit(f)),
                Box::new(move |f: &mut dyn FnMut(&mut Param)| b1.borrow_mut().visit_mut(f)),
                Box::new(move |f: &mut dyn FnMut(&Param)| b2.borrow().visit(f)),
            )
        }),
        ("layer_norm", |ra, _rb| {
            let mut reg = ParamRegistry::new();
            let mut a = LayerNorm::new(&mut reg, 6);
            // LayerNorm initializes deterministically (γ=1, β=0); perturb
            // the source so the round-trip actually has to move data.
            a.visit_mut(&mut |p: &mut Param| {
                for v in p.value.as_mut_slice() {
                    *v += ra.gen_range(-0.5f32..0.5);
                }
            });
            let b = std::rc::Rc::new(std::cell::RefCell::new(LayerNorm::new(&mut reg, 6)));
            let (b1, b2) = (std::rc::Rc::clone(&b), b);
            (
                Box::new(move |f: &mut dyn FnMut(&Param)| a.visit(f)),
                Box::new(move |f: &mut dyn FnMut(&mut Param)| b1.borrow_mut().visit_mut(f)),
                Box::new(move |f: &mut dyn FnMut(&Param)| b2.borrow().visit(f)),
            )
        }),
        ("attention", |ra, rb| {
            let mut reg = ParamRegistry::new();
            let a = MultiHeadAttention::new(&mut reg, 8, 2, ra);
            let b = std::rc::Rc::new(std::cell::RefCell::new(MultiHeadAttention::new(
                &mut reg, 8, 2, rb,
            )));
            let (b1, b2) = (std::rc::Rc::clone(&b), b);
            (
                Box::new(move |f: &mut dyn FnMut(&Param)| a.visit(f)),
                Box::new(move |f: &mut dyn FnMut(&mut Param)| b1.borrow_mut().visit_mut(f)),
                Box::new(move |f: &mut dyn FnMut(&Param)| b2.borrow().visit(f)),
            )
        }),
        ("gru", |ra, rb| {
            let mut reg = ParamRegistry::new();
            let a = Gru::new(&mut reg, 4, 6, ra);
            let b = std::rc::Rc::new(std::cell::RefCell::new(Gru::new(&mut reg, 4, 6, rb)));
            let (b1, b2) = (std::rc::Rc::clone(&b), b);
            (
                Box::new(move |f: &mut dyn FnMut(&Param)| a.visit(f)),
                Box::new(move |f: &mut dyn FnMut(&mut Param)| b1.borrow_mut().visit_mut(f)),
                Box::new(move |f: &mut dyn FnMut(&Param)| b2.borrow().visit(f)),
            )
        }),
    ];
    for (name, build) in builders {
        let mut ra = StdRng::seed_from_u64(600);
        let mut rb = StdRng::seed_from_u64(601);
        let (mut src_visit, mut dst_visit_mut, dst_visit) = build(&mut ra, &mut rb);
        let src_bits = param_bits(&mut src_visit);
        // Through the on-disk text form, not just the in-memory state.
        let state = save_params(&mut src_visit);
        let text = state.to_json_string();
        let back = ModelState::from_json_str(&text).unwrap();
        load_params(&back, &mut dst_visit_mut).unwrap();
        let dst_bits = param_bits(dst_visit);
        assert!(!src_bits.is_empty(), "{name}: layer has no parameters");
        assert_eq!(src_bits, dst_bits, "{name}: save -> JSON -> load is not bit-identical");
    }
}

/// One optimizer trajectory: train a Linear on a fixed regression target
/// for `steps` updates and return the final parameter bits.
fn optimizer_trajectory(opt: &mut dyn FnMut(&mut Param, &Grads), seed: u64, steps: usize) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reg = ParamRegistry::new();
    let mut layer = Linear::new(&mut reg, 3, 2, &mut rng);
    let x = rand_mat(&mut rng, 4, 3);
    let target = rand_mat(&mut rng, 4, 2);
    for _ in 0..steps {
        let (y, ctx) = layer.forward(&x);
        let dy = Mat::from_vec(
            4,
            2,
            y.as_slice().iter().zip(target.as_slice()).map(|(a, b)| a - b).collect(),
        );
        let mut grads = Grads::new(&reg);
        layer.backward(&ctx, &dy, &mut grads);
        layer.visit_mut(&mut |p: &mut Param| opt(p, &grads));
    }
    param_bits(|f| layer.visit(f))
}

/// Re-seeding reproduces an optimizer run bit-for-bit, and a different
/// seed actually lands somewhere else (both Sgd+momentum and Adam, whose
/// moment/velocity state must also replay deterministically).
#[test]
fn optimizer_steps_are_deterministic_under_reseeding() {
    let run_sgd = |seed| {
        let mut opt = Sgd::new(0.05, 0.9);
        optimizer_trajectory(&mut |p, g| { opt.update(p, g); opt.tick(); }, seed, 25)
    };
    let run_adam = |seed| {
        let mut opt = Adam::new(0.01);
        optimizer_trajectory(&mut |p, g| { opt.update(p, g); opt.tick(); }, seed, 25)
    };
    for (name, run) in [("sgd", &run_sgd as &dyn Fn(u64) -> Vec<u32>), ("adam", &run_adam)] {
        let first = run(700);
        let second = run(700);
        assert_eq!(first, second, "{name}: same seed must replay bit-identically");
        let other = run(701);
        assert_ne!(first, other, "{name}: a different seed should move the trajectory");
    }
}

/// Gradient buffers merge linearly: grads(batch) == grads(a) + grads(b).
#[test]
fn gradients_are_additive() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(500 + seed);
        let xa = rand_mat(&mut rng, 2, 3);
        let xb = rand_mat(&mut rng, 2, 3);
        let mut init_rng = StdRng::seed_from_u64(7);
        let mut reg = ParamRegistry::new();
        let l = Linear::new(&mut reg, 3, 2, &mut init_rng);
        let run = |x: &Mat, grads: &mut Grads| {
            let (y, ctx) = l.forward(x);
            l.backward(&ctx, &y, grads);
        };
        let mut ga = Grads::new(&reg);
        run(&xa, &mut ga);
        let mut gb = Grads::new(&reg);
        run(&xb, &mut gb);
        ga.merge(&gb);
        let mut gboth = Grads::new(&reg);
        run(&xa, &mut gboth);
        run(&xb, &mut gboth);
        l.visit(&mut |p| {
            for (x, y) in ga.get(p.id).as_slice().iter().zip(gboth.get(p.id).as_slice()) {
                assert!((x - y).abs() < 1e-4, "seed {seed}: merge mismatch {x} vs {y}");
            }
        });
    }
}
