//! # sns-nn
//!
//! A small, dependency-free neural-network library built for SNS: the
//! substrate that replaces PyTorch + HuggingFace in this reproduction.
//!
//! Design points:
//!
//! * **Manual backprop, functional style.** Layers own their parameters
//!   (values only); `forward` returns an output plus a context struct, and
//!   `backward` consumes the context and accumulates into an external
//!   [`Grads`] buffer. Because nothing mutable lives in the layer during
//!   the pass, whole models are `Sync` and minibatches can be split across
//!   threads (each thread owns its own `Grads`, summed afterwards).
//! * **Matrix-centric.** Everything is a 2-D [`Mat`]. Training processes
//!   one sequence at a time (circuit paths are short); inference can pack
//!   many sequences into one matrix with per-span masking ([`SeqSpan`])
//!   so they share the blocked GEMM kernels in [`gemm`].
//! * **Everything SNS needs, nothing more:** linear, embedding, layer norm,
//!   multi-head self-attention, GELU/ReLU/tanh/sigmoid, GRU (for SeqGAN),
//!   MSE / BCE / cross-entropy losses, SGD with momentum and Adam, and
//!   JSON parameter serialization (via `sns-rt`).
//!
//! # Example: fitting a tiny regression
//!
//! ```rust
//! use sns_nn::{Adam, Grads, Linear, Mat, Optimizer, ParamRegistry, Relu};
//!
//! let mut rng = sns_rt::rng::StdRng::seed_from_u64(1);
//! let mut reg = ParamRegistry::new();
//! let mut l1 = Linear::new(&mut reg, 2, 16, &mut rng);
//! let mut l2 = Linear::new(&mut reg, 16, 1, &mut rng);
//! let mut opt = Adam::new(0.01);
//! let x = Mat::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
//! let t = Mat::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]); // XOR
//! let mut last = f32::MAX;
//! for _ in 0..500 {
//!     let mut grads = Grads::new(&reg);
//!     let (h, c1) = l1.forward(&x);
//!     let (a, ca) = Relu.forward(&h);
//!     let (y, c2) = l2.forward(&a);
//!     let (loss, dy) = sns_nn::mse_loss(&y, &t);
//!     let da = l2.backward(&c2, &dy, &mut grads);
//!     let dh = Relu.backward(&ca, &da);
//!     l1.backward(&c1, &dh, &mut grads);
//!     opt.step_visit(&mut grads, |f| { l1.visit_mut(f); l2.visit_mut(f); });
//!     last = loss;
//! }
//! assert!(last < 0.05, "XOR did not converge: {last}");
//! ```

pub mod act;
pub mod attention;
pub mod embedding;
pub mod gemm;
pub mod gru;
pub mod linear;
pub mod loss;
pub mod mat;
pub mod norm;
pub mod optim;
pub mod param;
pub mod serialize;

pub use act::{Gelu, Relu, Sigmoid, Tanh};
pub use attention::{AttentionCtx, MultiHeadAttention, PackedAttention, SeqSpan};
pub use embedding::{Embedding, EmbeddingCtx};
pub use gemm::{PackedB, PackedBInt8};
pub use gru::{Gru, GruCtx, PackedGru};
pub use linear::{Linear, LinearCtx, PackedLinear, PackedWeights, QuantMode};
pub use loss::{bce_with_logits_loss, mse_loss, softmax_cross_entropy};
pub use mat::Mat;
pub use norm::{LayerNorm, LayerNormCtx};
pub use optim::{Adam, Optimizer, Sgd};
pub use param::{Grads, Param, ParamId, ParamRegistry};
pub use serialize::{load_params, save_params, ModelState};
