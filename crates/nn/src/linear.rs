//! Fully-connected layer.

use sns_rt::rng::StdRng;

use crate::mat::Mat;
use crate::param::{Grads, Param, ParamRegistry};

/// A dense affine layer `y = x W + b` with Xavier-uniform initialization.
///
/// `forward` is `&self` and returns a [`LinearCtx`]; `backward` consumes the
/// context, accumulates parameter gradients into a [`Grads`] buffer and
/// returns the input gradient.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Param,
    b: Param,
    in_dim: usize,
    out_dim: usize,
}

/// Saved forward state for [`Linear::backward`].
#[derive(Debug, Clone)]
pub struct LinearCtx {
    x: Mat,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(reg: &mut ParamRegistry, in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        let bound = (6.0 / (in_dim + out_dim) as f32).sqrt();
        let mut w = Mat::zeros(in_dim, out_dim);
        for v in w.as_mut_slice() {
            *v = rng.gen_range(-bound..bound);
        }
        Linear {
            w: reg.alloc(format!("linear{}x{}.w", in_dim, out_dim), w),
            b: reg.alloc(format!("linear{}x{}.b", in_dim, out_dim), Mat::zeros(1, out_dim)),
            in_dim,
            out_dim,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to `x` of shape `[n, in_dim]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim`.
    pub fn forward(&self, x: &Mat) -> (Mat, LinearCtx) {
        (self.infer(x), LinearCtx { x: x.clone() })
    }

    /// Inference-only forward: same arithmetic as [`forward`](Self::forward)
    /// (bit-identical output) without cloning `x` into a backward context.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim`.
    pub fn infer(&self, x: &Mat) -> Mat {
        x.matmul(&self.w.value).add_row_broadcast(self.b.value.row(0))
    }

    /// Backpropagates `dy` (shape `[n, out_dim]`), returning `dx`.
    pub fn backward(&self, ctx: &LinearCtx, dy: &Mat, grads: &mut Grads) -> Mat {
        // dW = xᵀ dy ; db = column sums of dy ; dx = dy Wᵀ
        grads.accumulate(self.w.id, &ctx.x.matmul_tn(dy));
        let mut db = Mat::zeros(1, self.out_dim);
        for r in 0..dy.rows() {
            for (d, g) in db.as_mut_slice().iter_mut().zip(dy.row(r)) {
                *d += g;
            }
        }
        grads.accumulate(self.b.id, &db);
        dy.matmul_nt(&self.w.value)
    }

    /// Visits this layer's parameters (for optimizers / serialization).
    pub fn visit(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.w);
        f(&self.b);
    }

    /// Visits this layer's parameters mutably.
    pub fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ParamRegistry, Linear) {
        let mut rng = StdRng::seed_from_u64(42);
        let mut reg = ParamRegistry::new();
        let l = Linear::new(&mut reg, 3, 2, &mut rng);
        (reg, l)
    }

    #[test]
    fn forward_shape_and_bias() {
        let (_, mut l) = setup();
        l.visit_mut(&mut |p| {
            if p.name.ends_with(".b") {
                p.value = Mat::from_rows(&[&[1.0, -1.0]]);
            }
        });
        let (y, _) = l.forward(&Mat::zeros(4, 3));
        assert_eq!((y.rows(), y.cols()), (4, 2));
        assert_eq!(y.row(0), &[1.0, -1.0]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let (reg, l) = setup();
        let x = Mat::from_rows(&[&[0.3, -0.2, 0.9], &[0.1, 0.5, -0.7]]);
        let t = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);

        // Analytic gradient of L = 0.5*||y - t||² wrt W.
        let (y, ctx) = l.forward(&x);
        let dy = y.add(&t.scale(-1.0));
        let mut grads = Grads::new(&reg);
        let dx = l.backward(&ctx, &dy, &mut grads);

        // Finite differences on a few weight entries.
        let mut l2 = l.clone();
        let eps = 1e-3;
        for (r, c) in [(0usize, 0usize), (1, 1), (2, 0)] {
            let loss = |lay: &Linear| {
                let (y, _) = lay.forward(&x);
                let d = y.add(&t.scale(-1.0));
                0.5 * d.as_slice().iter().map(|v| v * v).sum::<f32>()
            };
            let bump = |delta: f32, lay: &mut Linear| {
                lay.visit_mut(&mut |p| {
                    if p.name.ends_with(".w") {
                        let v = p.value.get(r, c);
                        p.value.set(r, c, v + delta);
                    }
                });
            };
            bump(eps, &mut l2);
            let hi = loss(&l2);
            bump(-2.0 * eps, &mut l2);
            let lo = loss(&l2);
            bump(eps, &mut l2);
            let fd = (hi - lo) / (2.0 * eps);
            let mut analytic = 0.0;
            l.visit(&mut |p| {
                if p.name.ends_with(".w") {
                    analytic = grads.get(p.id).get(r, c);
                }
            });
            assert!((fd - analytic).abs() < 1e-2, "W[{r}][{c}]: fd={fd} analytic={analytic}");
        }
        // dx shape sanity.
        assert_eq!((dx.rows(), dx.cols()), (2, 3));
    }
}
