//! Fully-connected layer, plus its packed inference counterpart.
//!
//! [`Linear`] owns trainable parameters and the backward pass.
//! [`PackedLinear`] is a read-only snapshot taken at model load: the
//! weight matrix repacked into GEMM panel layout ([`PackedB`], or
//! [`PackedBInt8`] under [`QuantMode::Int8`]) so inference skips per-call
//! packing entirely. In f32 mode `PackedLinear::infer` is bit-identical
//! to [`Linear::infer`].

use sns_rt::rng::StdRng;

use crate::gemm::{PackedB, PackedBInt8};
use crate::mat::Mat;
use crate::param::{Grads, Param, ParamRegistry};

/// Which arithmetic a packed inference path runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuantMode {
    /// Full f32 — bit-identical to the unpacked layers. The default.
    #[default]
    F32,
    /// Symmetric int8 weights + dynamic per-row activation scales
    /// (`SNS_INT8=1`). Deterministic and batch-invariant but carries a
    /// bounded relative error versus f32; only validated by tolerance
    /// oracles, never bit-compared.
    Int8,
}

/// A weight matrix in packed, inference-ready form: f32 panels or
/// int8-quantized panels depending on [`QuantMode`].
#[derive(Debug, Clone)]
pub enum PackedWeights {
    /// f32 `[kc][NR]` panels — bit-identical GEMM.
    F32(PackedB),
    /// int8 panels with per-output-column scales — tolerance-bounded GEMM.
    Int8(PackedBInt8),
}

impl PackedWeights {
    /// Packs a row-major `[k, n]` weight matrix under `mode`.
    pub fn pack(w: &Mat, mode: QuantMode) -> PackedWeights {
        match mode {
            QuantMode::F32 => {
                PackedWeights::F32(PackedB::pack(w.as_slice(), w.rows(), w.cols()))
            }
            QuantMode::Int8 => {
                PackedWeights::Int8(PackedBInt8::pack(w.as_slice(), w.rows(), w.cols()))
            }
        }
    }

    /// `x @ W` through the packed kernel for this mode.
    pub fn matmul(&self, x: &Mat) -> Mat {
        match self {
            PackedWeights::F32(pb) => x.matmul_prepacked(pb),
            PackedWeights::Int8(pb) => x.matmul_prepacked_int8(pb),
        }
    }

    /// Reduction depth (input width).
    pub fn k(&self) -> usize {
        match self {
            PackedWeights::F32(pb) => pb.k(),
            PackedWeights::Int8(pb) => pb.k(),
        }
    }

    /// Output width.
    pub fn n(&self) -> usize {
        match self {
            PackedWeights::F32(pb) => pb.n(),
            PackedWeights::Int8(pb) => pb.n(),
        }
    }

    /// Resident bytes of the packed representation.
    pub fn bytes(&self) -> usize {
        match self {
            PackedWeights::F32(pb) => pb.bytes(),
            PackedWeights::Int8(pb) => pb.bytes(),
        }
    }

    /// Whether this is the int8 representation.
    pub fn is_int8(&self) -> bool {
        matches!(self, PackedWeights::Int8(_))
    }
}

/// An inference-only snapshot of a [`Linear`]: weights prepacked once,
/// bias copied. In [`QuantMode::F32`] the output of [`infer`](Self::infer)
/// is bit-identical to [`Linear::infer`] (both kernels honor the GEMM
/// K-order contract); in [`QuantMode::Int8`] it carries the quantization
/// error bound instead.
#[derive(Debug, Clone)]
pub struct PackedLinear {
    w: PackedWeights,
    b: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
}

impl PackedLinear {
    /// Snapshots `l` under `mode`.
    pub fn pack(l: &Linear, mode: QuantMode) -> PackedLinear {
        PackedLinear {
            w: PackedWeights::pack(&l.w.value, mode),
            b: l.b.value.row(0).to_vec(),
            in_dim: l.in_dim,
            out_dim: l.out_dim,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to `x` of shape `[n, in_dim]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim`.
    pub fn infer(&self, x: &Mat) -> Mat {
        self.w.matmul(x).add_row_broadcast(&self.b)
    }

    /// Resident bytes of the packed weights (bias excluded — it is not
    /// duplicated panel storage).
    pub fn bytes(&self) -> usize {
        self.w.bytes()
    }

    /// Whether the weights are int8-quantized.
    pub fn is_int8(&self) -> bool {
        self.w.is_int8()
    }
}

/// A dense affine layer `y = x W + b` with Xavier-uniform initialization.
///
/// `forward` is `&self` and returns a [`LinearCtx`]; `backward` consumes the
/// context, accumulates parameter gradients into a [`Grads`] buffer and
/// returns the input gradient.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Param,
    b: Param,
    in_dim: usize,
    out_dim: usize,
}

/// Saved forward state for [`Linear::backward`].
#[derive(Debug, Clone)]
pub struct LinearCtx {
    x: Mat,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(reg: &mut ParamRegistry, in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        let bound = (6.0 / (in_dim + out_dim) as f32).sqrt();
        let mut w = Mat::zeros(in_dim, out_dim);
        for v in w.as_mut_slice() {
            *v = rng.gen_range(-bound..bound);
        }
        Linear {
            w: reg.alloc(format!("linear{}x{}.w", in_dim, out_dim), w),
            b: reg.alloc(format!("linear{}x{}.b", in_dim, out_dim), Mat::zeros(1, out_dim)),
            in_dim,
            out_dim,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The weight matrix, `[in_dim, out_dim]` (read-only; used by the
    /// packing paths and by fused-projection layers that concatenate
    /// several weight matrices before packing).
    pub fn weight(&self) -> &Mat {
        &self.w.value
    }

    /// The bias row, `out_dim` wide.
    pub fn bias(&self) -> &[f32] {
        self.b.value.row(0)
    }

    /// Applies the layer to `x` of shape `[n, in_dim]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim`.
    pub fn forward(&self, x: &Mat) -> (Mat, LinearCtx) {
        (self.infer(x), LinearCtx { x: x.clone() })
    }

    /// Inference-only forward: same arithmetic as [`forward`](Self::forward)
    /// (bit-identical output) without cloning `x` into a backward context.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim`.
    pub fn infer(&self, x: &Mat) -> Mat {
        x.matmul(&self.w.value).add_row_broadcast(self.b.value.row(0))
    }

    /// Backpropagates `dy` (shape `[n, out_dim]`), returning `dx`.
    pub fn backward(&self, ctx: &LinearCtx, dy: &Mat, grads: &mut Grads) -> Mat {
        // dW = xᵀ dy ; db = column sums of dy ; dx = dy Wᵀ
        grads.accumulate(self.w.id, &ctx.x.matmul_tn(dy));
        let mut db = Mat::zeros(1, self.out_dim);
        for r in 0..dy.rows() {
            for (d, g) in db.as_mut_slice().iter_mut().zip(dy.row(r)) {
                *d += g;
            }
        }
        grads.accumulate(self.b.id, &db);
        dy.matmul_nt(&self.w.value)
    }

    /// Visits this layer's parameters (for optimizers / serialization).
    pub fn visit(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.w);
        f(&self.b);
    }

    /// Visits this layer's parameters mutably.
    pub fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ParamRegistry, Linear) {
        let mut rng = StdRng::seed_from_u64(42);
        let mut reg = ParamRegistry::new();
        let l = Linear::new(&mut reg, 3, 2, &mut rng);
        (reg, l)
    }

    #[test]
    fn forward_shape_and_bias() {
        let (_, mut l) = setup();
        l.visit_mut(&mut |p| {
            if p.name.ends_with(".b") {
                p.value = Mat::from_rows(&[&[1.0, -1.0]]);
            }
        });
        let (y, _) = l.forward(&Mat::zeros(4, 3));
        assert_eq!((y.rows(), y.cols()), (4, 2));
        assert_eq!(y.row(0), &[1.0, -1.0]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let (reg, l) = setup();
        let x = Mat::from_rows(&[&[0.3, -0.2, 0.9], &[0.1, 0.5, -0.7]]);
        let t = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);

        // Analytic gradient of L = 0.5*||y - t||² wrt W.
        let (y, ctx) = l.forward(&x);
        let dy = y.add(&t.scale(-1.0));
        let mut grads = Grads::new(&reg);
        let dx = l.backward(&ctx, &dy, &mut grads);

        // Finite differences on a few weight entries.
        let mut l2 = l.clone();
        let eps = 1e-3;
        for (r, c) in [(0usize, 0usize), (1, 1), (2, 0)] {
            let loss = |lay: &Linear| {
                let (y, _) = lay.forward(&x);
                let d = y.add(&t.scale(-1.0));
                0.5 * d.as_slice().iter().map(|v| v * v).sum::<f32>()
            };
            let bump = |delta: f32, lay: &mut Linear| {
                lay.visit_mut(&mut |p| {
                    if p.name.ends_with(".w") {
                        let v = p.value.get(r, c);
                        p.value.set(r, c, v + delta);
                    }
                });
            };
            bump(eps, &mut l2);
            let hi = loss(&l2);
            bump(-2.0 * eps, &mut l2);
            let lo = loss(&l2);
            bump(eps, &mut l2);
            let fd = (hi - lo) / (2.0 * eps);
            let mut analytic = 0.0;
            l.visit(&mut |p| {
                if p.name.ends_with(".w") {
                    analytic = grads.get(p.id).get(r, c);
                }
            });
            assert!((fd - analytic).abs() < 1e-2, "W[{r}][{c}]: fd={fd} analytic={analytic}");
        }
        // dx shape sanity.
        assert_eq!((dx.rows(), dx.cols()), (2, 3));
    }

    /// PackedLinear in f32 mode is bit-identical to Linear::infer across
    /// batch sizes spanning the small-m dispatch edge and odd widths.
    #[test]
    fn packed_linear_f32_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(21);
        for &(in_dim, out_dim) in &[(3usize, 2usize), (17, 33), (128, 2304)] {
            let mut reg = ParamRegistry::new();
            let l = Linear::new(&mut reg, in_dim, out_dim, &mut rng);
            let p = PackedLinear::pack(&l, QuantMode::F32);
            assert!(!p.is_int8());
            assert_eq!((p.in_dim(), p.out_dim()), (in_dim, out_dim));
            for &m in &[1usize, 2, 3, 16, 17] {
                let mut x = Mat::zeros(m, in_dim);
                for v in x.as_mut_slice() {
                    *v = rng.gen_range(-1.0f32..1.0);
                }
                let want = l.infer(&x);
                let got = p.infer(&x);
                for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{in_dim}x{out_dim} m={m}");
                }
            }
        }
    }

    /// PackedLinear in int8 mode is deterministic and within a small
    /// relative error of the f32 layer.
    #[test]
    fn packed_linear_int8_is_close_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut reg = ParamRegistry::new();
        let l = Linear::new(&mut reg, 64, 48, &mut rng);
        let p = PackedLinear::pack(&l, QuantMode::Int8);
        assert!(p.is_int8());
        let mut x = Mat::zeros(5, 64);
        for v in x.as_mut_slice() {
            *v = rng.gen_range(-1.0f32..1.0);
        }
        let q1 = p.infer(&x);
        let q2 = p.infer(&x);
        assert_eq!(q1, q2);
        let f = l.infer(&x);
        let (mut num, mut den) = (0.0f64, 0.0f64);
        for (qv, fv) in q1.as_slice().iter().zip(f.as_slice()) {
            num += (*qv as f64 - *fv as f64).powi(2);
            den += (*fv as f64).powi(2);
        }
        let rel = (num / den.max(1e-30)).sqrt();
        assert!(rel < 0.05, "int8 PackedLinear relative error {rel}");
    }
}
