//! Multi-head self-attention.
//!
//! The training path ([`MultiHeadAttention::forward`] /
//! [`MultiHeadAttention::backward`]) operates on one `[T, d]` sequence at
//! a time; minibatch parallelism happens one level up (threads × private
//! [`Grads`]).
//!
//! The inference path ([`MultiHeadAttention::infer_masked`]) additionally
//! supports **batched, masked** attention: several sequences packed into
//! one `[ΣT, d]` matrix, described by [`SeqSpan`]s. Attention is
//! block-diagonal (a query never attends across a span boundary) and a
//! span may carry right-padding, whose key/value positions are masked out
//! of every softmax. Both mechanisms are bit-preserving: each valid row
//! gets exactly the arithmetic the unbatched forward would have done.

use sns_rt::rng::StdRng;

use crate::linear::{Linear, LinearCtx, PackedLinear, PackedWeights, QuantMode};
use crate::mat::Mat;
use crate::param::{Grads, Param, ParamRegistry};

/// One packed sequence's location inside a batched `[ΣT, d]` activation
/// matrix: rows `start .. start + padded`, of which the first `valid`
/// are real tokens and the rest right-padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqSpan {
    /// First row of this sequence in the packed matrix.
    pub start: usize,
    /// Number of real (unpadded) token rows.
    pub valid: usize,
    /// Total rows occupied, `valid <= padded`.
    pub padded: usize,
}

impl SeqSpan {
    /// A span with no padding.
    pub fn dense(start: usize, len: usize) -> Self {
        SeqSpan { start, valid: len, padded: len }
    }
}

/// Multi-head scaled-dot-product self-attention with output projection.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
}

/// Saved forward state for [`MultiHeadAttention::backward`].
#[derive(Debug, Clone)]
pub struct AttentionCtx {
    q_ctx: LinearCtx,
    k_ctx: LinearCtx,
    v_ctx: LinearCtx,
    o_ctx: LinearCtx,
    q: Mat,
    k: Mat,
    v: Mat,
    attn: Vec<Mat>, // per head, [T, T]
}

impl MultiHeadAttention {
    /// Creates an attention block with `heads` heads over model width
    /// `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim % heads != 0`.
    pub fn new(reg: &mut ParamRegistry, dim: usize, heads: usize, rng: &mut StdRng) -> Self {
        assert_eq!(dim % heads, 0, "dim must divide evenly into heads");
        MultiHeadAttention {
            wq: Linear::new(reg, dim, dim, rng),
            wk: Linear::new(reg, dim, dim, rng),
            wv: Linear::new(reg, dim, dim, rng),
            wo: Linear::new(reg, dim, dim, rng),
            heads,
            dim,
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    fn head_cols(&self, m: &Mat, h: usize) -> Mat {
        self.head_cols_span(m, h, SeqSpan::dense(0, m.rows()))
    }

    /// Extracts head `h`'s column slice for the rows covered by `span`.
    fn head_cols_span(&self, m: &Mat, h: usize, span: SeqSpan) -> Mat {
        let dh = self.dim / self.heads;
        let mut out = Mat::zeros(span.padded, dh);
        for r in 0..span.padded {
            out.row_mut(r).copy_from_slice(&m.row(span.start + r)[h * dh..(h + 1) * dh]);
        }
        out
    }

    fn scatter_head(&self, dst: &mut Mat, src: &Mat, h: usize) {
        self.scatter_head_span(dst, src, h, 0);
    }

    /// Writes `src` into head `h`'s column slice starting at row `start`.
    fn scatter_head_span(&self, dst: &mut Mat, src: &Mat, h: usize, start: usize) {
        let dh = self.dim / self.heads;
        for r in 0..src.rows() {
            dst.row_mut(start + r)[h * dh..(h + 1) * dh].copy_from_slice(src.row(r));
        }
    }

    /// Full self-attention over `x` of shape `[T, dim]`.
    pub fn forward(&self, x: &Mat) -> (Mat, AttentionCtx) {
        let (q, q_ctx) = self.wq.forward(x);
        let (k, k_ctx) = self.wk.forward(x);
        let (v, v_ctx) = self.wv.forward(x);
        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut concat = Mat::zeros(x.rows(), self.dim);
        let mut attn = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = self.head_cols(&q, h);
            let kh = self.head_cols(&k, h);
            let vh = self.head_cols(&v, h);
            let scores = qh.matmul_nt(&kh).scale(scale);
            let a = scores.softmax_rows();
            let ctxh = a.matmul(&vh);
            self.scatter_head(&mut concat, &ctxh, h);
            attn.push(a);
        }
        let (y, o_ctx) = self.wo.forward(&concat);
        (y, AttentionCtx { q_ctx, k_ctx, v_ctx, o_ctx, q, k, v, attn })
    }

    /// Batched, masked self-attention over several sequences packed into
    /// one `[ΣT, dim]` matrix.
    ///
    /// The Q/K/V/O projections run once over the whole packed matrix
    /// (per-row arithmetic, so each row matches its unbatched result
    /// bit-for-bit). Attention itself is evaluated per span and per head:
    /// a query row only sees key/value rows of its own span, and key
    /// columns at positions `>= span.valid` are set to `-inf` before the
    /// softmax, so padding contributes exactly `+0.0` to every context
    /// sum. For spans with `valid == padded` (exact-length buckets) the
    /// score matrix is byte-for-byte the one [`forward`](Self::forward)
    /// computes for that sequence alone.
    ///
    /// Output rows belonging to padding positions are garbage and must be
    /// discarded by the caller; padded input rows must be finite so they
    /// cannot poison valid rows through `0.0 * inf`.
    ///
    /// # Panics
    ///
    /// Panics if spans overlap `x` out of bounds or `valid > padded`.
    pub fn infer_masked(&self, x: &Mat, spans: &[SeqSpan]) -> Mat {
        let q = self.wq.infer(x);
        let k = self.wk.infer(x);
        let v = self.wv.infer(x);
        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut concat = Mat::zeros(x.rows(), self.dim);
        for &span in spans {
            assert!(span.valid <= span.padded, "span valid exceeds padded");
            assert!(span.start + span.padded <= x.rows(), "span out of bounds");
            for h in 0..self.heads {
                let qh = self.head_cols_span(&q, h, span);
                let kh = self.head_cols_span(&k, h, span);
                let vh = self.head_cols_span(&v, h, span);
                let mut scores = qh.matmul_nt(&kh).scale(scale);
                if span.valid < span.padded {
                    for r in 0..span.padded {
                        scores.row_mut(r)[span.valid..].fill(f32::NEG_INFINITY);
                    }
                }
                let a = scores.softmax_rows();
                let ctxh = a.matmul(&vh);
                self.scatter_head_span(&mut concat, &ctxh, h, span.start);
            }
        }
        self.wo.infer(&concat)
    }

    /// Backpropagates `dy`, returning `dx`.
    pub fn backward(&self, ctx: &AttentionCtx, dy: &Mat, grads: &mut Grads) -> Mat {
        let dconcat = self.wo.backward(&ctx.o_ctx, dy, grads);
        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let t = dy.rows();
        let mut dq = Mat::zeros(t, self.dim);
        let mut dk = Mat::zeros(t, self.dim);
        let mut dv = Mat::zeros(t, self.dim);
        for h in 0..self.heads {
            let qh = self.head_cols(&ctx.q, h);
            let kh = self.head_cols(&ctx.k, h);
            let vh = self.head_cols(&ctx.v, h);
            let a = &ctx.attn[h];
            let dctx = self.head_cols(&dconcat, h);
            // ctx = a @ v
            let da = dctx.matmul_nt(&vh);
            let dvh = a.matmul_tn(&dctx);
            // softmax backward: ds = a ⊙ (da − rowsum(da ⊙ a))
            let mut ds = Mat::zeros(t, t);
            for r in 0..t {
                let dot: f32 =
                    da.row(r).iter().zip(a.row(r)).map(|(x, y)| x * y).sum();
                for c in 0..t {
                    ds.set(r, c, a.get(r, c) * (da.get(r, c) - dot));
                }
            }
            let ds = ds.scale(scale);
            // scores = q @ kᵀ
            let dqh = ds.matmul(&kh);
            let dkh = ds.matmul_tn(&qh);
            self.scatter_head(&mut dq, &dqh, h);
            self.scatter_head(&mut dk, &dkh, h);
            self.scatter_head(&mut dv, &dvh, h);
        }
        let dx_q = self.wq.backward(&ctx.q_ctx, &dq, grads);
        let dx_k = self.wk.backward(&ctx.k_ctx, &dk, grads);
        let dx_v = self.wv.backward(&ctx.v_ctx, &dv, grads);
        dx_q.add(&dx_k).add(&dx_v)
    }

    /// Visits all projection parameters.
    pub fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.wq.visit(f);
        self.wk.visit(f);
        self.wv.visit(f);
        self.wo.visit(f);
    }

    /// Visits all projection parameters mutably.
    pub fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit_mut(f);
        self.wk.visit_mut(f);
        self.wv.visit_mut(f);
        self.wo.visit_mut(f);
    }
}

/// Query-row tile height of the streamed attention in
/// [`PackedAttention::infer_masked`]: score tiles are `[TQ, padded]`, so
/// peak attention scratch is `O(TQ · T)` instead of the `O(T²)` the
/// materialized path allocates per head.
const TQ: usize = 64;

/// An inference-only snapshot of a [`MultiHeadAttention`] with two
/// serving-path restructurings:
///
/// * **Fused QKV.** Wq, Wk and Wv are concatenated column-wise into one
///   `[dim, 3·dim]` matrix and prepacked once, so the three input
///   projections become a single prepacked GEMM per call. Each output
///   element of a GEMM depends only on its own B column, so the fused
///   product is bit-identical to the three separate ones.
/// * **Tiled softmax·V.** Instead of materializing the full `[T, T]`
///   score matrix per span and head, query rows stream through in blocks
///   of [`TQ`]: each block computes its `[tq, padded]` score tile
///   (`gemm_nt`), scales, span-masks, softmaxes and multiplies into V —
///   then the tile is dropped. A true flash-attention running-max/sum
///   rescale would *change the reduction order* and break the mandated
///   f32 bit-identity, so the tiling is over whole query rows only: every
///   per-row max/exp/sum/divide happens in exactly the
///   [`Mat::softmax_rows`] op order, and every GEMM row is the same
///   ascending-k reduction regardless of tile height. In
///   [`QuantMode::F32`] the result is therefore bit-identical to
///   [`MultiHeadAttention::infer_masked`]; memory never exceeds
///   `O(TQ · T)` per attention tile.
///
/// Under [`QuantMode::Int8`] the QKV and output projections run the
/// quantized prepacked kernel (tolerance-bounded, not bit-compared); the
/// softmax·V arithmetic itself always stays f32.
#[derive(Debug, Clone)]
pub struct PackedAttention {
    qkv: PackedWeights,
    qkv_bias: Vec<f32>,
    wo: PackedLinear,
    heads: usize,
    dim: usize,
}

impl PackedAttention {
    /// Snapshots `mha` under `mode`, fusing the Q/K/V projections.
    pub fn pack(mha: &MultiHeadAttention, mode: QuantMode) -> PackedAttention {
        let dim = mha.dim;
        let mut fused = Mat::zeros(dim, 3 * dim);
        for l in 0..dim {
            let row = fused.row_mut(l);
            row[..dim].copy_from_slice(mha.wq.weight().row(l));
            row[dim..2 * dim].copy_from_slice(mha.wk.weight().row(l));
            row[2 * dim..].copy_from_slice(mha.wv.weight().row(l));
        }
        let mut qkv_bias = Vec::with_capacity(3 * dim);
        qkv_bias.extend_from_slice(mha.wq.bias());
        qkv_bias.extend_from_slice(mha.wk.bias());
        qkv_bias.extend_from_slice(mha.wv.bias());
        PackedAttention {
            qkv: PackedWeights::pack(&fused, mode),
            qkv_bias,
            wo: PackedLinear::pack(&mha.wo, mode),
            heads: mha.heads,
            dim,
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Resident bytes of the packed projections.
    pub fn bytes(&self) -> usize {
        self.qkv.bytes() + self.wo.bytes()
    }

    /// Whether the projections are int8-quantized.
    pub fn is_int8(&self) -> bool {
        self.qkv.is_int8()
    }

    /// Copies `rows` rows of the `dh`-wide column window at `col0` out of
    /// the packed `[ΣT, 3·dim]` QKV matrix.
    fn window(qkv: &Mat, row0: usize, rows: usize, col0: usize, dh: usize) -> Mat {
        let mut out = Mat::zeros(rows, dh);
        for r in 0..rows {
            out.row_mut(r).copy_from_slice(&qkv.row(row0 + r)[col0..col0 + dh]);
        }
        out
    }

    /// Batched, masked self-attention — the packed counterpart of
    /// [`MultiHeadAttention::infer_masked`], with the same span/masking
    /// semantics (see there) and, in f32 mode, bit-identical output.
    ///
    /// # Panics
    ///
    /// Panics if spans overlap `x` out of bounds or `valid > padded`.
    pub fn infer_masked(&self, x: &Mat, spans: &[SeqSpan]) -> Mat {
        let qkv = self.qkv.matmul(x).add_row_broadcast(&self.qkv_bias);
        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut concat = Mat::zeros(x.rows(), self.dim);
        for &span in spans {
            assert!(span.valid <= span.padded, "span valid exceeds padded");
            assert!(span.start + span.padded <= x.rows(), "span out of bounds");
            for h in 0..self.heads {
                let kh = Self::window(&qkv, span.start, span.padded, self.dim + h * dh, dh);
                let vh = Self::window(&qkv, span.start, span.padded, 2 * self.dim + h * dh, dh);
                let mut qb = 0;
                while qb < span.padded {
                    let tq = TQ.min(span.padded - qb);
                    let qh = Self::window(&qkv, span.start + qb, tq, h * dh, dh);
                    let mut scores = qh.matmul_nt(&kh).scale(scale);
                    if span.valid < span.padded {
                        for r in 0..tq {
                            scores.row_mut(r)[span.valid..].fill(f32::NEG_INFINITY);
                        }
                    }
                    let a = scores.softmax_rows();
                    let ctxh = a.matmul(&vh);
                    for r in 0..tq {
                        concat.row_mut(span.start + qb + r)[h * dh..(h + 1) * dh]
                            .copy_from_slice(ctxh.row(r));
                    }
                    qb += tq;
                }
            }
        }
        self.wo.infer(&concat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(dim: usize, heads: usize) -> (ParamRegistry, MultiHeadAttention) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut reg = ParamRegistry::new();
        let a = MultiHeadAttention::new(&mut reg, dim, heads, &mut rng);
        (reg, a)
    }

    #[test]
    fn forward_shape_is_preserved() {
        let (_, a) = setup(8, 2);
        let x = Mat::full(5, 8, 0.3);
        let (y, ctx) = a.forward(&x);
        assert_eq!((y.rows(), y.cols()), (5, 8));
        assert_eq!(ctx.attn.len(), 2);
        // Attention rows are distributions.
        for h in &ctx.attn {
            for r in 0..5 {
                let s: f32 = h.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn attention_mixes_positions() {
        // Output at position 0 must depend on input at position 2.
        let (_, a) = setup(8, 2);
        let mut x = Mat::zeros(3, 8);
        x.row_mut(0).copy_from_slice(&[0.5; 8]);
        let (y1, _) = a.forward(&x);
        x.row_mut(2).copy_from_slice(&[1.0, -1.0, 0.7, 0.2, -0.3, 0.9, 0.0, 0.4]);
        let (y2, _) = a.forward(&x);
        let diff: f32 =
            y1.row(0).iter().zip(y2.row(0)).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-4, "position 0 ignored position 2");
    }

    #[test]
    fn backward_matches_finite_difference() {
        let (reg, a) = setup(4, 2);
        let x = Mat::from_rows(&[&[0.1, -0.2, 0.3, 0.4], &[0.5, 0.0, -0.6, 0.2]]);
        let loss = |x: &Mat| a.forward(x).0.sum();
        let (_, ctx) = a.forward(&x);
        let dy = Mat::full(2, 4, 1.0);
        let mut grads = Grads::new(&reg);
        let dx = a.backward(&ctx, &dy, &mut grads);
        let eps = 1e-3;
        for r in 0..2 {
            for c in 0..4 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps);
                let got = dx.get(r, c);
                assert!((fd - got).abs() < 2e-2, "[{r}][{c}]: fd={fd} got={got}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn indivisible_heads_panic() {
        let _ = setup(7, 2);
    }

    fn rand_mat(rows: usize, cols: usize, rng: &mut StdRng) -> Mat {
        let mut m = Mat::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = rng.normal_f32(1.0);
        }
        m
    }

    #[test]
    fn packed_spans_match_unbatched_forward_bitwise() {
        // Three sequences of different lengths packed into one matrix
        // must reproduce each standalone forward exactly.
        let (_, a) = setup(8, 2);
        let mut rng = StdRng::seed_from_u64(11);
        let lens = [3usize, 7, 1];
        let total: usize = lens.iter().sum();
        let packed = rand_mat(total, 8, &mut rng);
        let mut spans = Vec::new();
        let mut start = 0;
        for &len in &lens {
            spans.push(SeqSpan::dense(start, len));
            start += len;
        }
        let batched = a.infer_masked(&packed, &spans);
        for span in &spans {
            let mut solo = Mat::zeros(span.valid, 8);
            for r in 0..span.valid {
                solo.row_mut(r).copy_from_slice(packed.row(span.start + r));
            }
            let (want, _) = a.forward(&solo);
            for r in 0..span.valid {
                for c in 0..8 {
                    assert_eq!(
                        batched.get(span.start + r, c).to_bits(),
                        want.get(r, c).to_bits(),
                        "span@{} row {r} col {c}",
                        span.start
                    );
                }
            }
        }
    }

    #[test]
    fn padding_mask_hides_padded_positions() {
        // A padded span must produce the same valid rows regardless of
        // what the padding rows contain.
        let (_, a) = setup(8, 2);
        let mut rng = StdRng::seed_from_u64(12);
        let valid = 4;
        let padded = 6;
        let x1 = rand_mat(padded, 8, &mut rng);
        let mut x2 = x1.clone();
        for r in valid..padded {
            x2.row_mut(r).copy_from_slice(rand_mat(1, 8, &mut rng).row(0));
        }
        assert_ne!(x1.row(valid), x2.row(valid));
        let span = [SeqSpan { start: 0, valid, padded }];
        let y1 = a.infer_masked(&x1, &span);
        let y2 = a.infer_masked(&x2, &span);
        for r in 0..valid {
            assert_eq!(y1.row(r), y2.row(r), "row {r} leaked padding");
        }
        // And the valid rows match the unbatched forward on the trimmed
        // sequence exactly.
        let mut solo = Mat::zeros(valid, 8);
        for r in 0..valid {
            solo.row_mut(r).copy_from_slice(x1.row(r));
        }
        let (want, _) = a.forward(&solo);
        for r in 0..valid {
            for c in 0..8 {
                assert_eq!(y1.get(r, c).to_bits(), want.get(r, c).to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn span_past_matrix_end_panics() {
        let (_, a) = setup(8, 2);
        let x = Mat::zeros(4, 8);
        let _ = a.infer_masked(&x, &[SeqSpan::dense(2, 3)]);
    }

    /// Fused-QKV + tiled softmax·V is bit-identical to the unpacked
    /// masked path across span layouts that cross the TQ tile boundary,
    /// carry padding, or are empty.
    #[test]
    fn packed_attention_f32_is_bit_identical() {
        let (_, a) = setup(8, 2);
        let p = PackedAttention::pack(&a, QuantMode::F32);
        assert!(!p.is_int8());
        assert!(p.bytes() >= (3 * 8 * 8 + 8 * 8) * 4);
        let mut rng = StdRng::seed_from_u64(31);
        // Span lengths: tiny, exactly TQ, crossing TQ, padded, empty.
        let spans = [
            SeqSpan::dense(0, 1),
            SeqSpan::dense(1, 64),
            SeqSpan { start: 65, valid: 70, padded: 77 },
            SeqSpan { start: 142, valid: 0, padded: 0 },
            SeqSpan { start: 142, valid: 3, padded: 5 },
        ];
        let total = 147;
        let x = rand_mat(total, 8, &mut rng);
        let want = a.infer_masked(&x, &spans);
        let got = p.infer_masked(&x, &spans);
        for span in &spans {
            for r in 0..span.valid {
                for c in 0..8 {
                    assert_eq!(
                        got.get(span.start + r, c).to_bits(),
                        want.get(span.start + r, c).to_bits(),
                        "span@{} row {r} col {c}",
                        span.start
                    );
                }
            }
        }
    }

    /// Int8 packed attention stays within a small relative error of f32
    /// on valid rows and is deterministic.
    #[test]
    fn packed_attention_int8_is_close() {
        let (_, a) = setup(8, 2);
        let p = PackedAttention::pack(&a, QuantMode::Int8);
        assert!(p.is_int8());
        let mut rng = StdRng::seed_from_u64(32);
        let spans = [SeqSpan::dense(0, 5), SeqSpan { start: 5, valid: 4, padded: 6 }];
        let x = rand_mat(11, 8, &mut rng);
        let want = a.infer_masked(&x, &spans);
        let got = p.infer_masked(&x, &spans);
        assert_eq!(got, p.infer_masked(&x, &spans), "int8 attention must be deterministic");
        let (mut num, mut den) = (0.0f64, 0.0f64);
        for span in &spans {
            for r in 0..span.valid {
                for (gv, wv) in got.row(span.start + r).iter().zip(want.row(span.start + r)) {
                    num += (*gv as f64 - *wv as f64).powi(2);
                    den += (*wv as f64).powi(2);
                }
            }
        }
        let rel = (num / den.max(1e-30)).sqrt();
        assert!(rel < 0.15, "int8 attention relative error {rel}");
    }
}
