//! Multi-head self-attention over a single sequence.
//!
//! Sequences in SNS are short circuit paths, so attention operates on one
//! `[T, d]` matrix at a time — no batching, padding or masking. Minibatch
//! parallelism happens one level up (threads × private [`Grads`]).

use sns_rt::rng::StdRng;

use crate::linear::{Linear, LinearCtx};
use crate::mat::Mat;
use crate::param::{Grads, Param, ParamRegistry};

/// Multi-head scaled-dot-product self-attention with output projection.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    dim: usize,
}

/// Saved forward state for [`MultiHeadAttention::backward`].
#[derive(Debug, Clone)]
pub struct AttentionCtx {
    q_ctx: LinearCtx,
    k_ctx: LinearCtx,
    v_ctx: LinearCtx,
    o_ctx: LinearCtx,
    q: Mat,
    k: Mat,
    v: Mat,
    attn: Vec<Mat>, // per head, [T, T]
}

impl MultiHeadAttention {
    /// Creates an attention block with `heads` heads over model width
    /// `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim % heads != 0`.
    pub fn new(reg: &mut ParamRegistry, dim: usize, heads: usize, rng: &mut StdRng) -> Self {
        assert_eq!(dim % heads, 0, "dim must divide evenly into heads");
        MultiHeadAttention {
            wq: Linear::new(reg, dim, dim, rng),
            wk: Linear::new(reg, dim, dim, rng),
            wv: Linear::new(reg, dim, dim, rng),
            wo: Linear::new(reg, dim, dim, rng),
            heads,
            dim,
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    fn head_cols(&self, m: &Mat, h: usize) -> Mat {
        let dh = self.dim / self.heads;
        let mut out = Mat::zeros(m.rows(), dh);
        for r in 0..m.rows() {
            out.row_mut(r).copy_from_slice(&m.row(r)[h * dh..(h + 1) * dh]);
        }
        out
    }

    fn scatter_head(&self, dst: &mut Mat, src: &Mat, h: usize) {
        let dh = self.dim / self.heads;
        for r in 0..src.rows() {
            dst.row_mut(r)[h * dh..(h + 1) * dh].copy_from_slice(src.row(r));
        }
    }

    /// Full self-attention over `x` of shape `[T, dim]`.
    pub fn forward(&self, x: &Mat) -> (Mat, AttentionCtx) {
        let (q, q_ctx) = self.wq.forward(x);
        let (k, k_ctx) = self.wk.forward(x);
        let (v, v_ctx) = self.wv.forward(x);
        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut concat = Mat::zeros(x.rows(), self.dim);
        let mut attn = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = self.head_cols(&q, h);
            let kh = self.head_cols(&k, h);
            let vh = self.head_cols(&v, h);
            let scores = qh.matmul_nt(&kh).scale(scale);
            let a = scores.softmax_rows();
            let ctxh = a.matmul(&vh);
            self.scatter_head(&mut concat, &ctxh, h);
            attn.push(a);
        }
        let (y, o_ctx) = self.wo.forward(&concat);
        (y, AttentionCtx { q_ctx, k_ctx, v_ctx, o_ctx, q, k, v, attn })
    }

    /// Backpropagates `dy`, returning `dx`.
    pub fn backward(&self, ctx: &AttentionCtx, dy: &Mat, grads: &mut Grads) -> Mat {
        let dconcat = self.wo.backward(&ctx.o_ctx, dy, grads);
        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let t = dy.rows();
        let mut dq = Mat::zeros(t, self.dim);
        let mut dk = Mat::zeros(t, self.dim);
        let mut dv = Mat::zeros(t, self.dim);
        for h in 0..self.heads {
            let qh = self.head_cols(&ctx.q, h);
            let kh = self.head_cols(&ctx.k, h);
            let vh = self.head_cols(&ctx.v, h);
            let a = &ctx.attn[h];
            let dctx = self.head_cols(&dconcat, h);
            // ctx = a @ v
            let da = dctx.matmul_nt(&vh);
            let dvh = a.matmul_tn(&dctx);
            // softmax backward: ds = a ⊙ (da − rowsum(da ⊙ a))
            let mut ds = Mat::zeros(t, t);
            for r in 0..t {
                let dot: f32 =
                    da.row(r).iter().zip(a.row(r)).map(|(x, y)| x * y).sum();
                for c in 0..t {
                    ds.set(r, c, a.get(r, c) * (da.get(r, c) - dot));
                }
            }
            let ds = ds.scale(scale);
            // scores = q @ kᵀ
            let dqh = ds.matmul(&kh);
            let dkh = ds.matmul_tn(&qh);
            self.scatter_head(&mut dq, &dqh, h);
            self.scatter_head(&mut dk, &dkh, h);
            self.scatter_head(&mut dv, &dvh, h);
        }
        let dx_q = self.wq.backward(&ctx.q_ctx, &dq, grads);
        let dx_k = self.wk.backward(&ctx.k_ctx, &dk, grads);
        let dx_v = self.wv.backward(&ctx.v_ctx, &dv, grads);
        dx_q.add(&dx_k).add(&dx_v)
    }

    /// Visits all projection parameters.
    pub fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.wq.visit(f);
        self.wk.visit(f);
        self.wv.visit(f);
        self.wo.visit(f);
    }

    /// Visits all projection parameters mutably.
    pub fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit_mut(f);
        self.wk.visit_mut(f);
        self.wv.visit_mut(f);
        self.wo.visit_mut(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(dim: usize, heads: usize) -> (ParamRegistry, MultiHeadAttention) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut reg = ParamRegistry::new();
        let a = MultiHeadAttention::new(&mut reg, dim, heads, &mut rng);
        (reg, a)
    }

    #[test]
    fn forward_shape_is_preserved() {
        let (_, a) = setup(8, 2);
        let x = Mat::full(5, 8, 0.3);
        let (y, ctx) = a.forward(&x);
        assert_eq!((y.rows(), y.cols()), (5, 8));
        assert_eq!(ctx.attn.len(), 2);
        // Attention rows are distributions.
        for h in &ctx.attn {
            for r in 0..5 {
                let s: f32 = h.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn attention_mixes_positions() {
        // Output at position 0 must depend on input at position 2.
        let (_, a) = setup(8, 2);
        let mut x = Mat::zeros(3, 8);
        x.row_mut(0).copy_from_slice(&[0.5; 8]);
        let (y1, _) = a.forward(&x);
        x.row_mut(2).copy_from_slice(&[1.0, -1.0, 0.7, 0.2, -0.3, 0.9, 0.0, 0.4]);
        let (y2, _) = a.forward(&x);
        let diff: f32 =
            y1.row(0).iter().zip(y2.row(0)).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-4, "position 0 ignored position 2");
    }

    #[test]
    fn backward_matches_finite_difference() {
        let (reg, a) = setup(4, 2);
        let x = Mat::from_rows(&[&[0.1, -0.2, 0.3, 0.4], &[0.5, 0.0, -0.6, 0.2]]);
        let loss = |x: &Mat| a.forward(x).0.sum();
        let (_, ctx) = a.forward(&x);
        let dy = Mat::full(2, 4, 1.0);
        let mut grads = Grads::new(&reg);
        let dx = a.backward(&ctx, &dy, &mut grads);
        let eps = 1e-3;
        for r in 0..2 {
            for c in 0..4 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps);
                let got = dx.get(r, c);
                assert!((fd - got).abs() < 2e-2, "[{r}][{c}]: fd={fd} got={got}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn indivisible_heads_panic() {
        let _ = setup(7, 2);
    }
}
