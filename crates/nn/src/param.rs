//! Parameters and gradient buffers.
//!
//! Layers own parameter *values*; gradients live in a separate [`Grads`]
//! buffer indexed by [`ParamId`]. This split is what makes minibatch
//! data-parallelism trivial: every worker thread owns a private `Grads`,
//! and the buffers are summed before the optimizer step.

use crate::mat::Mat;

/// A dense identifier for a parameter tensor, assigned by
/// [`ParamRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub usize);

/// A parameter tensor: an id plus its current value.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Registry-assigned id (indexes [`Grads`] and optimizer state).
    pub id: ParamId,
    /// A human-readable name for diagnostics and serialization.
    pub name: String,
    /// The current value.
    pub value: Mat,
}

/// Allocates dense [`ParamId`]s and remembers each parameter's shape.
#[derive(Debug, Clone, Default)]
pub struct ParamRegistry {
    shapes: Vec<(usize, usize)>,
}

impl ParamRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        ParamRegistry::default()
    }

    /// Registers a parameter and returns it.
    pub fn alloc(&mut self, name: impl Into<String>, value: Mat) -> Param {
        let id = ParamId(self.shapes.len());
        self.shapes.push((value.rows(), value.cols()));
        Param { id, name: name.into(), value }
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Whether no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// The shape registered for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not allocated by this registry.
    pub fn shape(&self, id: ParamId) -> (usize, usize) {
        self.shapes[id.0]
    }

    /// Total number of scalar parameters (for the paper's Table 2 counts).
    pub fn scalar_count(&self) -> usize {
        self.shapes.iter().map(|&(r, c)| r * c).sum()
    }
}

/// Gradient buffers, one per registered parameter.
#[derive(Debug, Clone)]
pub struct Grads {
    bufs: Vec<Mat>,
}

impl Grads {
    /// Zeroed gradients shaped like `registry`.
    pub fn new(registry: &ParamRegistry) -> Self {
        let bufs = registry.shapes.iter().map(|&(r, c)| Mat::zeros(r, c)).collect();
        Grads { bufs }
    }

    /// The gradient buffer for a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: ParamId) -> &Mat {
        &self.bufs[id.0]
    }

    /// Mutable access to a gradient buffer.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Mat {
        &mut self.bufs[id.0]
    }

    /// Accumulates `delta` into the buffer for `id`.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn accumulate(&mut self, id: ParamId, delta: &Mat) {
        self.bufs[id.0].add_assign(delta);
    }

    /// Merges another gradient buffer into this one (data-parallel join).
    ///
    /// # Panics
    ///
    /// Panics if the buffers come from different registries.
    pub fn merge(&mut self, other: &Grads) {
        assert_eq!(self.bufs.len(), other.bufs.len(), "grads from different registries");
        for (a, b) in self.bufs.iter_mut().zip(&other.bufs) {
            a.add_assign(b);
        }
    }

    /// Scales every gradient (e.g. by 1/batch).
    pub fn scale(&mut self, s: f32) {
        for b in &mut self.bufs {
            for x in b.as_mut_slice() {
                *x *= s;
            }
        }
    }

    /// Zeroes all buffers for reuse.
    pub fn zero(&mut self) {
        for b in &mut self.bufs {
            for x in b.as_mut_slice() {
                *x = 0.0;
            }
        }
    }

    /// Global L2 norm across all buffers (for clipping).
    pub fn global_norm(&self) -> f32 {
        self.bufs.iter().map(|b| {
            let n = b.norm();
            n * n
        }).sum::<f32>().sqrt()
    }

    /// Clips the global norm to `max_norm` if it exceeds it.
    pub fn clip_global_norm(&mut self, max_norm: f32) {
        let n = self.global_norm();
        if n > max_norm && n > 0.0 {
            self.scale(max_norm / n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_assigns_dense_ids() {
        let mut reg = ParamRegistry::new();
        let a = reg.alloc("a", Mat::zeros(2, 3));
        let b = reg.alloc("b", Mat::zeros(4, 1));
        assert_eq!(a.id, ParamId(0));
        assert_eq!(b.id, ParamId(1));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.shape(b.id), (4, 1));
        assert_eq!(reg.scalar_count(), 10);
    }

    #[test]
    fn grads_accumulate_and_merge() {
        let mut reg = ParamRegistry::new();
        let p = reg.alloc("p", Mat::zeros(1, 2));
        let mut g1 = Grads::new(&reg);
        let mut g2 = Grads::new(&reg);
        g1.accumulate(p.id, &Mat::from_rows(&[&[1.0, 2.0]]));
        g2.accumulate(p.id, &Mat::from_rows(&[&[3.0, 4.0]]));
        g1.merge(&g2);
        assert_eq!(g1.get(p.id), &Mat::from_rows(&[&[4.0, 6.0]]));
        g1.scale(0.5);
        assert_eq!(g1.get(p.id), &Mat::from_rows(&[&[2.0, 3.0]]));
        g1.zero();
        assert_eq!(g1.get(p.id).sum(), 0.0);
    }

    #[test]
    fn global_norm_clipping() {
        let mut reg = ParamRegistry::new();
        let p = reg.alloc("p", Mat::zeros(1, 2));
        let mut g = Grads::new(&reg);
        g.accumulate(p.id, &Mat::from_rows(&[&[3.0, 4.0]]));
        assert!((g.global_norm() - 5.0).abs() < 1e-6);
        g.clip_global_norm(1.0);
        assert!((g.global_norm() - 1.0).abs() < 1e-6);
        // Below the cap: unchanged.
        let before = g.get(p.id).clone();
        g.clip_global_norm(10.0);
        assert_eq!(g.get(p.id), &before);
    }
}
