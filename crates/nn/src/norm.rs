//! Layer normalization.

use crate::mat::Mat;
use crate::param::{Grads, Param, ParamRegistry};

/// Per-row layer normalization with learned gain/bias.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    dim: usize,
    eps: f32,
}

/// Saved forward state for [`LayerNorm::backward`].
#[derive(Debug, Clone)]
pub struct LayerNormCtx {
    normalized: Mat,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Creates a layer norm over vectors of size `dim` (γ=1, β=0).
    pub fn new(reg: &mut ParamRegistry, dim: usize) -> Self {
        LayerNorm {
            gamma: reg.alloc(format!("ln{dim}.gamma"), Mat::full(1, dim, 1.0)),
            beta: reg.alloc(format!("ln{dim}.beta"), Mat::zeros(1, dim)),
            dim,
            eps: 1e-5,
        }
    }

    /// Inference-only forward: per-row arithmetic identical to
    /// [`forward`](Self::forward) (bit-identical output) without saving
    /// the normalized activations for backward.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != dim`.
    pub fn infer(&self, x: &Mat) -> Mat {
        assert_eq!(x.cols(), self.dim, "layernorm width");
        let mut out = Mat::zeros(x.rows(), self.dim);
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / self.dim as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / self.dim as f32;
            let is = 1.0 / (var + self.eps).sqrt();
            for (c, &v) in row.iter().enumerate() {
                let n = (v - mean) * is;
                out.set(r, c, n * self.gamma.value.get(0, c) + self.beta.value.get(0, c));
            }
        }
        out
    }

    /// Normalizes each row of `x` (shape `[n, dim]`).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != dim`.
    pub fn forward(&self, x: &Mat) -> (Mat, LayerNormCtx) {
        assert_eq!(x.cols(), self.dim, "layernorm width");
        let mut normalized = Mat::zeros(x.rows(), self.dim);
        let mut inv_std = Vec::with_capacity(x.rows());
        let mut out = Mat::zeros(x.rows(), self.dim);
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / self.dim as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / self.dim as f32;
            let is = 1.0 / (var + self.eps).sqrt();
            inv_std.push(is);
            for (c, &v) in row.iter().enumerate() {
                let n = (v - mean) * is;
                normalized.set(r, c, n);
                out.set(r, c, n * self.gamma.value.get(0, c) + self.beta.value.get(0, c));
            }
        }
        (out, LayerNormCtx { normalized, inv_std })
    }

    /// Backpropagates `dy`, returning `dx`.
    pub fn backward(&self, ctx: &LayerNormCtx, dy: &Mat, grads: &mut Grads) -> Mat {
        let n = self.dim as f32;
        let mut dgamma = Mat::zeros(1, self.dim);
        let mut dbeta = Mat::zeros(1, self.dim);
        let mut dx = Mat::zeros(dy.rows(), self.dim);
        for r in 0..dy.rows() {
            // dxhat = dy * gamma
            let mut dxhat = vec![0.0f32; self.dim];
            let mut sum_dxhat = 0.0;
            let mut sum_dxhat_xhat = 0.0;
            for (c, slot) in dxhat.iter_mut().enumerate() {
                let d = dy.get(r, c);
                let xh = ctx.normalized.get(r, c);
                dgamma.set(0, c, dgamma.get(0, c) + d * xh);
                dbeta.set(0, c, dbeta.get(0, c) + d);
                let dh = d * self.gamma.value.get(0, c);
                *slot = dh;
                sum_dxhat += dh;
                sum_dxhat_xhat += dh * xh;
            }
            let is = ctx.inv_std[r];
            for (c, &dh) in dxhat.iter().enumerate() {
                let xh = ctx.normalized.get(r, c);
                dx.set(r, c, is / n * (n * dh - sum_dxhat - xh * sum_dxhat_xhat));
            }
        }
        grads.accumulate(self.gamma.id, &dgamma);
        grads.accumulate(self.beta.id, &dbeta);
        dx
    }

    /// Visits γ and β.
    pub fn visit(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.gamma);
        f(&self.beta);
    }

    /// Visits γ and β mutably.
    pub fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_rows_are_normalized() {
        let mut reg = ParamRegistry::new();
        let ln = LayerNorm::new(&mut reg, 4);
        let x = Mat::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[-5.0, 0.0, 5.0, 10.0]]);
        let (y, _) = ln.forward(&x);
        for r in 0..2 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 4.0;
            let var: f32 = y.row(r).iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut reg = ParamRegistry::new();
        let ln = LayerNorm::new(&mut reg, 3);
        let x = Mat::from_rows(&[&[0.5, -1.0, 2.0]]);
        let loss = |x: &Mat| {
            let (y, _) = ln.forward(x);
            // L = sum(y_i * w_i) with fixed weights to get nontrivial dy.
            y.get(0, 0) * 1.0 + y.get(0, 1) * -2.0 + y.get(0, 2) * 0.5
        };
        let (_, ctx) = ln.forward(&x);
        let dy = Mat::from_rows(&[&[1.0, -2.0, 0.5]]);
        let mut grads = Grads::new(&reg);
        let dx = ln.backward(&ctx, &dy, &mut grads);
        let eps = 1e-3;
        for c in 0..3 {
            let mut xp = x.clone();
            xp.set(0, c, x.get(0, c) + eps);
            let mut xm = x.clone();
            xm.set(0, c, x.get(0, c) - eps);
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!((fd - dx.get(0, c)).abs() < 1e-2, "c={c}: fd={fd} got={}", dx.get(0, c));
        }
    }
}
