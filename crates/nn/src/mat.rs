//! Row-major 2-D matrices with the operations the layers need.

use std::fmt;

/// A row-major matrix of `f32`.
///
/// # Example
///
/// ```rust
/// use sns_nn::Mat;
///
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Mat::eye(2);
/// assert_eq!(a.matmul(&b).as_slice(), a.as_slice());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// A matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Mat { rows, cols, data: vec![value; rows * cols] }
    }

    /// The identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Mat { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or no rows are given.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "no rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Mat { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row, mutably.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// `self @ other` via the blocked GEMM kernel ([`crate::gemm`]).
    ///
    /// Bit-identical to [`matmul_ref`](Self::matmul_ref): the kernel keeps
    /// the K-reduction order of the naive loop and only re-tiles the
    /// output loops for cache and register reuse.
    ///
    /// # Panics
    ///
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul inner dims {} vs {}", self.cols, other.rows);
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Mat::zeros(m, n);
        crate::gemm::gemm_nn(m, k, n, &self.data, &other.data, &mut out.data);
        out
    }

    /// `selfᵀ @ other` without materializing the transpose (blocked;
    /// bit-identical to [`matmul_tn_ref`](Self::matmul_tn_ref)).
    ///
    /// # Panics
    ///
    /// Panics on a row-count mismatch.
    pub fn matmul_tn(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "matmul_tn outer dims");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Mat::zeros(m, n);
        crate::gemm::gemm_tn(m, k, n, &self.data, &other.data, &mut out.data);
        out
    }

    /// `self @ otherᵀ` without materializing the transpose (blocked;
    /// bit-identical to [`matmul_nt_ref`](Self::matmul_nt_ref)).
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn matmul_nt(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "matmul_nt inner dims");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Mat::zeros(m, n);
        crate::gemm::gemm_nt(m, k, n, &self.data, &other.data, &mut out.data);
        out
    }

    /// `self @ B` against a weight matrix repacked once at model load
    /// ([`crate::gemm::PackedB`]). Runs the blocked schedule with the
    /// per-call `pack_b` stage deleted, so it is bit-identical to
    /// [`matmul`](Self::matmul) and [`matmul_ref`](Self::matmul_ref) while
    /// skipping the packing traffic that dominates small-`m` calls.
    ///
    /// # Panics
    ///
    /// Panics on an inner-dimension mismatch.
    pub fn matmul_prepacked(&self, pb: &crate::gemm::PackedB) -> Mat {
        assert_eq!(self.cols, pb.k(), "matmul_prepacked inner dims {} vs {}", self.cols, pb.k());
        let mut out = Mat::zeros(self.rows, pb.n());
        crate::gemm::gemm_prepacked_nn(self.rows, &self.data, pb, &mut out.data);
        out
    }

    /// `self @ B` against an int8-quantized prepacked weight matrix
    /// ([`crate::gemm::PackedBInt8`]). Deterministic and batch-invariant,
    /// but **not** bit-identical to f32 — carries the bounded relative
    /// error of symmetric per-row/per-column quantization.
    ///
    /// # Panics
    ///
    /// Panics on an inner-dimension mismatch.
    pub fn matmul_prepacked_int8(&self, pb: &crate::gemm::PackedBInt8) -> Mat {
        assert_eq!(self.cols, pb.k(), "matmul_prepacked_int8 inner dims");
        let mut out = Mat::zeros(self.rows, pb.n());
        crate::gemm::gemm_prepacked_int8(self.rows, &self.data, pb, &mut out.data);
        out
    }

    /// Reference `self @ other`: the naive ikj triple loop. This is the
    /// semantic contract the blocked kernel must match bit-for-bit — each
    /// `out[i][j]` accumulates `a(i,l)·b(l,j)` with `l` strictly
    /// ascending, every intermediate rounded to `f32`. Kept for
    /// equivalence tests and as the micro-benchmark baseline.
    ///
    /// # Panics
    ///
    /// Panics on an inner-dimension mismatch.
    pub fn matmul_ref(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul inner dims {} vs {}", self.cols, other.rows);
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Mat::zeros(m, n);
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            let crow = &mut out.data[i * n..(i + 1) * n];
            for (l, &a) in arow.iter().enumerate() {
                let brow = &other.data[l * n..(l + 1) * n];
                for j in 0..n {
                    crow[j] += a * brow[j];
                }
            }
        }
        out
    }

    /// Reference `selfᵀ @ other` (naive loop; see [`matmul_ref`](Self::matmul_ref)).
    ///
    /// # Panics
    ///
    /// Panics on a row-count mismatch.
    pub fn matmul_tn_ref(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "matmul_tn outer dims");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Mat::zeros(m, n);
        for l in 0..k {
            let arow = &self.data[l * m..(l + 1) * m];
            let brow = &other.data[l * n..(l + 1) * n];
            for (i, &a) in arow.iter().enumerate() {
                let crow = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    crow[j] += a * brow[j];
                }
            }
        }
        out
    }

    /// Reference `self @ otherᵀ` (naive loop; see [`matmul_ref`](Self::matmul_ref)).
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn matmul_nt_ref(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "matmul_nt inner dims");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Mat::zeros(m, n);
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for l in 0..k {
                    acc += arow[l] * brow[l];
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// The explicit transpose, tiled `TB × TB` so both the read and the
    /// write side stay within a few cache lines per tile.
    pub fn transposed(&self) -> Mat {
        const TB: usize = 32;
        let (rows, cols) = (self.rows, self.cols);
        let mut out = Mat::zeros(cols, rows);
        let mut ib = 0;
        while ib < rows {
            let ie = (ib + TB).min(rows);
            let mut jb = 0;
            while jb < cols {
                let je = (jb + TB).min(cols);
                for i in ib..ie {
                    for j in jb..je {
                        out.data[j * rows + i] = self.data[i * cols + j];
                    }
                }
                jb = je;
            }
            ib = ie;
        }
        out
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn add(&self, other: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "add shapes");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Mat { rows: self.rows, cols: self.cols, data }
    }

    /// In-place elementwise accumulate.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "add shapes");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Adds a row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&self, bias: &[f32]) -> Mat {
        assert_eq!(bias.len(), self.cols, "bias width");
        let mut out = self.clone();
        for r in 0..self.rows {
            for (x, b) in out.row_mut(r).iter_mut().zip(bias) {
                *x += b;
            }
        }
        out
    }

    /// Elementwise product.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn hadamard(&self, other: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "hadamard shapes");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Mat { rows: self.rows, cols: self.cols, data }
    }

    /// Scalar multiply.
    pub fn scale(&self, s: f32) -> Mat {
        let data = self.data.iter().map(|a| a * s).collect();
        Mat { rows: self.rows, cols: self.cols, data }
    }

    /// Applies `f` elementwise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Mat {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Mat { rows: self.rows, cols: self.cols, data }
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Mat {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        out
    }

    /// Mean over rows → a 1×cols matrix.
    pub fn mean_rows(&self) -> Mat {
        let mut out = Mat::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, x) in out.data.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        let inv = 1.0 / self.rows.max(1) as f32;
        for o in out.data.iter_mut() {
            *o *= inv;
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Vertical concatenation of rows from `mats`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ or the list is empty.
    pub fn vstack(mats: &[&Mat]) -> Mat {
        assert!(!mats.is_empty(), "vstack of nothing");
        let cols = mats[0].cols;
        let rows = mats.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in mats {
            assert_eq!(m.cols, cols, "vstack widths differ");
            data.extend_from_slice(&m.data);
        }
        Mat { rows, cols, data }
    }

    /// A copy of a row range `[start, end)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn rows_slice(&self, start: usize, end: usize) -> Mat {
        assert!(start <= end && end <= self.rows, "row range");
        Mat {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", &self.row(r)[..self.cols.min(8)])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(a.matmul(&b), Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_variants_agree() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Mat::from_rows(&[&[1.0, 0.5], &[2.0, -1.0], &[0.0, 3.0]]);
        // a @ b == a.matmul_nt(bᵀ)
        assert_eq!(a.matmul_nt(&b.transposed()), a.matmul(&b));
        // a @ b == (aᵀ).matmul_tn(b)
        assert_eq!(a.transposed().matmul_tn(&b), a.matmul(&b));
        // (aᵀ)ᵀ == a
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let m = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]]);
        let s = m.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        assert!(s.get(0, 2) > s.get(0, 0));
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn broadcast_and_reductions() {
        let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = m.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(b, Mat::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]]));
        assert_eq!(m.mean_rows(), Mat::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(m.sum(), 10.0);
        assert!((m.norm() - 30f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn stack_and_slice_round_trip() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let s = Mat::vstack(&[&a, &b]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.rows_slice(1, 3), b);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
