//! Cache-blocked, register-tiled GEMM kernels for the inference hot loop.
//!
//! Three kernels back [`Mat::matmul`], [`Mat::matmul_tn`] and
//! [`Mat::matmul_nt`]. All share one packed-panel driver built around an
//! `MR × NR` register micro-kernel (GotoBLAS/BLIS structure: pack a
//! `KC × NC` panel of B and an `MC × KC` panel of A into contiguous
//! micro-panels, then sweep the micro-kernel over the block).
//!
//! On top of that sit two serving-oriented additions:
//!
//! * **Shape-aware dispatch.** For `m <= SMALL_M` output rows the packing
//!   overhead of the blocked driver is paid on `k·n` elements while the
//!   useful work is only `m·k·n` — at `m = 16` the blocked kernel used to
//!   *lose* to the naive loop on wide B. Small-m products now route to
//!   [`gemm_nn_smallm`], an l-outer "jammed" kernel that streams B exactly
//!   once and keeps a j-tile of the output in L1, with no packing at all.
//! * **Prepacked B.** [`PackedB`] stores a weight matrix in exactly the
//!   `[kc][NR]` panel layout the blocked driver would build per call, so
//!   [`gemm_prepacked_nn`] skips `pack_b` entirely: the per-call cost at
//!   small m is just A-packing (tiny) plus micro-kernels. Weights are
//!   packed once at model load and reused by every inference.
//!   [`PackedBInt8`] is the quantized variant (symmetric per-output-column
//!   scales, i32 accumulation) behind the experimental `SNS_INT8` path.
//!
//! # The K-order contract
//!
//! Every output element is produced by the *same additive reduction as the
//! naive triple loop*: `out[i][j] = ((0 + a(i,0)·b(0,j)) + a(i,1)·b(1,j)) + …`
//! with `l` strictly ascending, every intermediate rounded to `f32`. The
//! blocking machinery only re-tiles the `i`/`j` loops and splits `l` into
//! ascending `KC` chunks (partial sums are stored to the output and
//! reloaded, which is exactly what the naive loop's memory accumulator
//! does), so results are **bit-identical** to the retained references
//! [`Mat::matmul_ref`], [`Mat::matmul_tn_ref`] and [`Mat::matmul_nt_ref`]
//! at every shape. The small-m and prepacked drivers honor the same
//! contract (the jammed kernel is the naive loop with `l` hoisted outward
//! and `j` tiled — each element's reduction order is unchanged; the
//! prepacked driver runs the identical block schedule, it just reads the
//! B panels from the prepacked buffer). Tile edges are handled by
//! zero-padding the packed panels: padded lanes accumulate into
//! accumulator slots that are never written back, so real elements see no
//! extra additions. The int8 path is the one deliberate exception — it is
//! *not* bit-identical to f32 (it trades a bounded relative error for
//! bandwidth) and is validated by tolerance oracles instead.
//!
//! The old element-level `a == 0.0` skip is gone — on dense embedding
//! activations it was a branch per multiply that blocked vectorization.
//! What remains is a *row*-level sparse fast path: output rows whose
//! entire A row is zero (CLS-only gradient scatters, padded rows) are
//! detected up front in one cheap scan and skipped as whole micro-tiles.
//! A zero A row contributes only `±0.0` products whose running sum stays
//! `+0.0`, so the skip is value-identical too.

use std::cell::RefCell;

/// Micro-kernel rows (register tile height).
pub const MR: usize = 4;
/// Micro-kernel columns (register tile width; 16 f32 = two AVX vectors).
pub const NR: usize = 16;
/// K-dimension block: one packed panel's reduction depth.
const KC: usize = 256;
/// N-dimension block: columns of B packed per panel.
const NC: usize = 512;
/// M-dimension block: rows of A packed per panel.
const MC: usize = 128;

/// Largest `m` routed to the pack-free jammed kernel by [`gemm_nn`].
/// Below this the per-call `pack_b` traffic (`k·n` elements) dominates
/// the `m·k·n` useful work and the blocked driver stops paying for
/// itself (BENCH_kernels.json: 0.93x at 16×128×2304 before dispatch).
pub const SMALL_M: usize = 16;
/// Minimum output j-tile width of the jammed kernel.
const SMALL_J: usize = 256;
/// Output-tile budget of the jammed kernel, in f32 (16 KiB): the j-tile
/// widens to `OUT_TILE_F32 / m` so a 1-row product walks whole B rows
/// sequentially (the prefetch-friendly naive pattern) while m = 16 keeps
/// the original 256-column tile.
const OUT_TILE_F32: usize = 4096;

thread_local! {
    /// Per-thread packing scratch reused across calls: the blocked driver
    /// used to allocate fresh `ap`/`bp` panel buffers (up to ~0.5 MiB for
    /// bp) on *every* invocation, which at m=16 was measurable allocator
    /// traffic. The buffers only grow; the driver zero-fills exactly the
    /// panel region it packs, so stale contents are never observed.
    static PACK_SCRATCH: RefCell<(Vec<f32>, Vec<f32>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Borrows the thread-local `(ap, bp)` packing scratch, grown to at least
/// the requested lengths. Not reentrant — the driver never calls user
/// code while holding the borrow.
fn with_pack_scratch<R>(
    ap_len: usize,
    bp_len: usize,
    f: impl FnOnce(&mut [f32], &mut [f32]) -> R,
) -> R {
    PACK_SCRATCH.with(|s| {
        let (ap, bp) = &mut *s.borrow_mut();
        if ap.len() < ap_len {
            ap.resize(ap_len, 0.0);
        }
        if bp.len() < bp_len {
            bp.resize(bp_len, 0.0);
        }
        f(&mut ap[..], &mut bp[..])
    })
}

/// The portable register micro-kernel:
/// `acc[r][c] += Σ_l ap[l][r] · bp[l][c]` with `l` ascending. `ap` is an
/// `[kc][MR]` panel, `bp` an `[kc][NR]` panel.
#[inline(always)]
fn micro_kernel_generic(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    for l in 0..kc {
        let b: &[f32; NR] = bp[l * NR..l * NR + NR].try_into().expect("NR panel");
        let a: &[f32; MR] = ap[l * MR..l * MR + MR].try_into().expect("MR panel");
        for r in 0..MR {
            let ar = a[r];
            for c in 0..NR {
                acc[r][c] += ar * b[c];
            }
        }
    }
}

/// The AVX micro-kernel: the same 4×16 tile held in eight 256-bit
/// accumulators. Deliberately `vmulps` **then** `vaddps` — never
/// `vfmadd` — so each lane performs exactly the scalar `round(a·b)` then
/// `round(acc + ·)` sequence and the result stays bit-identical to
/// [`micro_kernel_generic`] and the naive references.
///
/// # Safety
///
/// Caller must guarantee AVX is available (checked via
/// `is_x86_feature_detected!` in [`micro_kernel`]) and the panel-length
/// invariants of [`micro_kernel_generic`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn micro_kernel_avx(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    let mut acc_v = [[_mm256_setzero_ps(); 2]; MR];
    for (r, row) in acc.iter().enumerate() {
        acc_v[r][0] = _mm256_loadu_ps(row.as_ptr());
        acc_v[r][1] = _mm256_loadu_ps(row.as_ptr().add(8));
    }
    let mut a_ptr = ap.as_ptr();
    let mut b_ptr = bp.as_ptr();
    for _ in 0..kc {
        let b0 = _mm256_loadu_ps(b_ptr);
        let b1 = _mm256_loadu_ps(b_ptr.add(8));
        for (r, accs) in acc_v.iter_mut().enumerate() {
            let ar = _mm256_broadcast_ss(&*a_ptr.add(r));
            accs[0] = _mm256_add_ps(accs[0], _mm256_mul_ps(ar, b0));
            accs[1] = _mm256_add_ps(accs[1], _mm256_mul_ps(ar, b1));
        }
        a_ptr = a_ptr.add(MR);
        b_ptr = b_ptr.add(NR);
    }
    for (r, row) in acc.iter_mut().enumerate() {
        _mm256_storeu_ps(row.as_mut_ptr(), acc_v[r][0]);
        _mm256_storeu_ps(row.as_mut_ptr().add(8), acc_v[r][1]);
    }
}

/// Dispatches to the fastest bit-identical micro-kernel the host supports.
/// (`is_x86_feature_detected!` caches its probe, so the check is one
/// atomic load per tile.)
#[inline(always)]
fn micro_kernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: AVX probed above; panel sizes checked by the callee's
        // debug assertions and guaranteed by the driver's packing.
        unsafe { micro_kernel_avx(kc, ap, bp, acc) };
        return;
    }
    micro_kernel_generic(kc, ap, bp, acc);
}

/// The shared blocked driver. `pack_a(buf, ic, mc, lc, kc)` must fill
/// `buf` with `[mc.div_ceil(MR)]` micro-panels of layout `[kc][MR]`
/// holding the logical `A[ic..ic+mc, lc..lc+kc]` block (zero-padded);
/// `pack_b` the analogous `[kc][NR]` panels of `B[lc..lc+kc, jc..jc+nc]`.
/// `zero_rows`, when non-empty, flags output rows whose whole logical A
/// row is zero; micro-tiles made only of such rows are skipped.
fn gemm_driver<PA, PB>(
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    zero_rows: &[bool],
    pack_a: PA,
    pack_b: PB,
) where
    PA: Fn(&mut [f32], usize, usize, usize, usize),
    PB: Fn(&mut [f32], usize, usize, usize, usize),
{
    if m == 0 || n == 0 {
        return;
    }
    debug_assert_eq!(out.len(), m * n);
    if k == 0 {
        return; // out stays zero, matching an empty reduction
    }
    let bp_len = NC.min(n).div_ceil(NR) * NR * KC.min(k);
    let ap_len = MC.min(m).div_ceil(MR) * MR * KC.min(k);
    with_pack_scratch(ap_len, bp_len, |ap, bp| {
        let mut jc = 0;
        while jc < n {
            let nc = NC.min(n - jc);
            let n_panels = nc.div_ceil(NR);
            let mut lc = 0;
            while lc < k {
                let kc = KC.min(k - lc);
                bp[..n_panels * kc * NR].fill(0.0);
                pack_b(bp, jc, nc, lc, kc);
                let mut ic = 0;
                while ic < m {
                    let mc = MC.min(m - ic);
                    let m_panels = mc.div_ceil(MR);
                    ap[..m_panels * kc * MR].fill(0.0);
                    pack_a(ap, ic, mc, lc, kc);
                    micro_sweep(
                        m, n, out, zero_rows, ap, bp, jc, lc, ic, nc, kc, mc,
                    );
                    ic += mc;
                }
                lc += kc;
            }
            jc += nc;
        }
    });
}

/// Sweeps the micro-kernel over one packed `(jc, lc, ic)` block — the
/// inner two loops shared by the per-call and prepacked drivers. `lc` is
/// only used to document the block; the panels already hold that slice.
#[allow(clippy::too_many_arguments)]
fn micro_sweep(
    m: usize,
    n: usize,
    out: &mut [f32],
    zero_rows: &[bool],
    ap: &[f32],
    bp: &[f32],
    jc: usize,
    _lc: usize,
    ic: usize,
    nc: usize,
    kc: usize,
    mc: usize,
) {
    let n_panels = nc.div_ceil(NR);
    let m_panels = mc.div_ceil(MR);
    for pj in 0..n_panels {
        let j0 = jc + pj * NR;
        let nr = NR.min(n - j0);
        let bpanel = &bp[pj * kc * NR..(pj + 1) * kc * NR];
        for pi in 0..m_panels {
            let i0 = ic + pi * MR;
            let mr = MR.min(m - i0);
            if !zero_rows.is_empty() && zero_rows[i0..i0 + mr].iter().all(|&z| z) {
                continue;
            }
            let apanel = &ap[pi * kc * MR..(pi + 1) * kc * MR];
            let mut acc = [[0.0f32; NR]; MR];
            for (r, row) in acc.iter_mut().enumerate().take(mr) {
                let o = (i0 + r) * n + j0;
                row[..nr].copy_from_slice(&out[o..o + nr]);
            }
            micro_kernel(kc, apanel, bpanel, &mut acc);
            for (r, row) in acc.iter().enumerate().take(mr) {
                let o = (i0 + r) * n + j0;
                out[o..o + nr].copy_from_slice(&row[..nr]);
            }
        }
    }
}

/// Flags rows of the row-major `[m, k]` matrix `a` that are entirely zero.
/// Early-exits per row, so dense inputs cost ~one read per row.
fn zero_rows(a: &[f32], m: usize, k: usize) -> Vec<bool> {
    (0..m).map(|i| a[i * k..(i + 1) * k].iter().all(|&v| v == 0.0)).collect()
}

/// The pack-free small-m kernel: the naive `ikj` loop with the `l` loop
/// hoisted outermost (unrolled ×4) and `j` tiled to an
/// [`OUT_TILE_F32`]-budgeted width. Per j-tile, B streams through exactly
/// once (the blocked driver *and* the naive loop both re-read it per
/// output row) while the `m × tile` output tile stays in L1 across the
/// whole reduction; the 4-way unroll cuts the per-`l` C reload/store
/// traffic to a quarter. Each `out[i][j]` still accumulates
/// `a(i,l)·b(l,j)` with `l` strictly ascending, one rounding per step —
/// bit-identical to [`Mat::matmul_ref`]. Whole-zero A rows are skipped
/// (`+0.0`-preserving, see the module docs).
///
/// [`Mat::matmul_ref`]: crate::mat::Mat::matmul_ref
pub fn gemm_nn_smallm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let zr = zero_rows(a, m, k);
    let jt = (OUT_TILE_F32 / m.max(1)).max(SMALL_J);
    let mut jb = 0;
    while jb < n {
        let je = (jb + jt).min(n);
        let w = je - jb;
        let mut l = 0;
        while l < k {
            let lu = (k - l).min(4);
            for i in 0..m {
                if zr[i] {
                    continue;
                }
                let arow = &a[i * k + l..i * k + l + lu];
                let crow = &mut out[i * n + jb..i * n + je];
                if lu == 4 {
                    let (a0, a1, a2, a3) = (arow[0], arow[1], arow[2], arow[3]);
                    let b0 = &b[l * n + jb..l * n + je];
                    let b1 = &b[(l + 1) * n + jb..(l + 1) * n + je];
                    let b2 = &b[(l + 2) * n + jb..(l + 2) * n + je];
                    let b3 = &b[(l + 3) * n + jb..(l + 3) * n + je];
                    for j in 0..w {
                        let mut c = crow[j];
                        c += a0 * b0[j];
                        c += a1 * b1[j];
                        c += a2 * b2[j];
                        c += a3 * b3[j];
                        crow[j] = c;
                    }
                } else {
                    for (u, &alu) in arow.iter().enumerate() {
                        let brow = &b[(l + u) * n + jb..(l + u) * n + je];
                        for (c, &bv) in crow.iter_mut().zip(brow) {
                            *c += alu * bv;
                        }
                    }
                }
            }
            l += lu;
        }
        jb = je;
    }
}

/// `out = a @ b` for row-major `a: [m, k]`, `b: [k, n]`. `out` must be
/// zeroed (or hold a partial sum over earlier `l`, per the K-order
/// contract). Products with `m <= SMALL_M` rows dispatch to the
/// pack-free [`gemm_nn_smallm`]; both variants are bit-identical.
pub fn gemm_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    if m <= SMALL_M {
        return gemm_nn_smallm(m, k, n, a, b, out);
    }
    let zr = zero_rows(a, m, k);
    gemm_driver(
        m,
        k,
        n,
        out,
        &zr,
        |buf, ic, mc, lc, kc| {
            for ri in 0..mc {
                let (pi, r) = (ri / MR, ri % MR);
                let src = &a[(ic + ri) * k + lc..(ic + ri) * k + lc + kc];
                let panel = pi * kc * MR;
                for (l, &v) in src.iter().enumerate() {
                    buf[panel + l * MR + r] = v;
                }
            }
        },
        |buf, jc, nc, lc, kc| {
            for l in 0..kc {
                let src = &b[(lc + l) * n + jc..(lc + l) * n + jc + nc];
                for (ci, &v) in src.iter().enumerate() {
                    let (pj, c) = (ci / NR, ci % NR);
                    buf[pj * kc * NR + l * NR + c] = v;
                }
            }
        },
    );
}

/// `out = aᵀ @ b` for row-major `a: [k, m]`, `b: [k, n]` — the transpose
/// is absorbed into the A-panel packing, never materialized.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    gemm_driver(
        m,
        k,
        n,
        out,
        &[],
        |buf, ic, mc, lc, kc| {
            for l in 0..kc {
                let src = &a[(lc + l) * m + ic..(lc + l) * m + ic + mc];
                for (ri, &v) in src.iter().enumerate() {
                    let (pi, r) = (ri / MR, ri % MR);
                    buf[pi * kc * MR + l * MR + r] = v;
                }
            }
        },
        |buf, jc, nc, lc, kc| {
            for l in 0..kc {
                let src = &b[(lc + l) * n + jc..(lc + l) * n + jc + nc];
                for (ci, &v) in src.iter().enumerate() {
                    let (pj, c) = (ci / NR, ci % NR);
                    buf[pj * kc * NR + l * NR + c] = v;
                }
            }
        },
    );
}

/// `out = a @ bᵀ` for row-major `a: [m, k]`, `b: [n, k]` — the transpose
/// is absorbed into the B-panel packing, never materialized.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    let zr = zero_rows(a, m, k);
    gemm_driver(
        m,
        k,
        n,
        out,
        &zr,
        |buf, ic, mc, lc, kc| {
            for ri in 0..mc {
                let (pi, r) = (ri / MR, ri % MR);
                let src = &a[(ic + ri) * k + lc..(ic + ri) * k + lc + kc];
                let panel = pi * kc * MR;
                for (l, &v) in src.iter().enumerate() {
                    buf[panel + l * MR + r] = v;
                }
            }
        },
        |buf, jc, nc, lc, kc| {
            for ci in 0..nc {
                let (pj, c) = (ci / NR, ci % NR);
                let src = &b[(jc + ci) * k + lc..(jc + ci) * k + lc + kc];
                let panel = pj * kc * NR;
                for (l, &v) in src.iter().enumerate() {
                    buf[panel + l * NR + c] = v;
                }
            }
        },
    );
}

// ---------------------------------------------------------------------------
// Prepacked B: pack the weight side once, at model load.
// ---------------------------------------------------------------------------

/// A row-major `[k, n]` matrix repacked once into the exact `[kc][NR]`
/// panel sequence the blocked driver builds per call, stored in the
/// driver's `(jc, lc)` block iteration order. [`gemm_prepacked_nn`]
/// consumes it without ever touching `pack_b`, so the per-call cost of a
/// weight GEMM is A-packing plus micro-kernels — which is what makes
/// small-m (few uncached paths per request) track the hardware instead of
/// the packing overhead.
#[derive(Debug, Clone)]
pub struct PackedB {
    k: usize,
    n: usize,
    data: Vec<f32>,
}

/// Total panel floats for a `[k, n]` prepack (zero-padded edge panels
/// included).
fn packed_len(k: usize, n: usize) -> usize {
    let mut total = 0;
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        total += nc.div_ceil(NR) * NR * k;
        jc += nc;
    }
    total
}

impl PackedB {
    /// Packs row-major `b: [k, n]` into driver panel order.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != k * n`.
    pub fn pack(b: &[f32], k: usize, n: usize) -> PackedB {
        assert_eq!(b.len(), k * n, "PackedB shape/data mismatch");
        let mut data = vec![0.0f32; packed_len(k, n)];
        let mut off = 0;
        let mut jc = 0;
        while jc < n {
            let nc = NC.min(n - jc);
            let n_panels = nc.div_ceil(NR);
            let mut lc = 0;
            while lc < k {
                let kc = KC.min(k - lc);
                let buf = &mut data[off..off + n_panels * kc * NR];
                for l in 0..kc {
                    let src = &b[(lc + l) * n + jc..(lc + l) * n + jc + nc];
                    for (ci, &v) in src.iter().enumerate() {
                        let (pj, c) = (ci / NR, ci % NR);
                        buf[pj * kc * NR + l * NR + c] = v;
                    }
                }
                off += n_panels * kc * NR;
                lc += kc;
            }
            jc += nc;
        }
        PackedB { k, n, data }
    }

    /// Reduction depth (rows of the original B).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output width (columns of the original B).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Resident bytes of the packed panels.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

/// `out = a @ B` against a prepacked B — the blocked driver with the
/// `pack_b` stage deleted. Runs the identical `(jc, lc, ic)` block
/// schedule and micro-kernels as [`gemm_nn`]'s driver, so the result is
/// bit-identical to [`gemm_nn`] and the naive reference at every shape.
///
/// # Panics
///
/// Panics if `a.len() != m * pb.k()` or `out.len() != m * pb.n()`.
pub fn gemm_prepacked_nn(m: usize, a: &[f32], pb: &PackedB, out: &mut [f32]) {
    let (k, n) = (pb.k, pb.n);
    assert_eq!(a.len(), m * k, "prepacked A shape");
    assert_eq!(out.len(), m * n, "prepacked out shape");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let zr = zero_rows(a, m, k);
    if m < MR {
        return gemm_prepacked_smallm(m, a, pb, out, &zr);
    }
    let ap_len = MC.min(m).div_ceil(MR) * MR * KC.min(k);
    with_pack_scratch(ap_len, 0, |ap, _| {
        let mut off = 0;
        let mut jc = 0;
        while jc < n {
            let nc = NC.min(n - jc);
            let n_panels = nc.div_ceil(NR);
            let mut lc = 0;
            while lc < k {
                let kc = KC.min(k - lc);
                let bp = &pb.data[off..off + n_panels * kc * NR];
                let mut ic = 0;
                while ic < m {
                    let mc = MC.min(m - ic);
                    let m_panels = mc.div_ceil(MR);
                    ap[..m_panels * kc * MR].fill(0.0);
                    for ri in 0..mc {
                        let (pi, r) = (ri / MR, ri % MR);
                        let src = &a[(ic + ri) * k + lc..(ic + ri) * k + lc + kc];
                        let panel = pi * kc * MR;
                        for (l, &v) in src.iter().enumerate() {
                            ap[panel + l * MR + r] = v;
                        }
                    }
                    micro_sweep(m, n, out, &zr, ap, bp, jc, lc, ic, nc, kc, mc);
                    ic += mc;
                }
                off += n_panels * kc * NR;
                lc += kc;
            }
            jc += nc;
        }
    });
}

/// Strip-walking small-m path over a prepacked B. For `m < MR` the padded
/// micro-kernel spends `MR / m`× its flops on all-zero A rows, so instead
/// each output row carries a `[f32; NR]` register tile straight down every
/// `[kc][NR]` panel strip — one fully sequential pass over the packed
/// stream per row, no A packing at all. The `(jc, lc)` block order and
/// ascending-`l` per-step rounding match the blocked driver exactly, so
/// results stay bit-identical to [`gemm_nn`] and the naive reference.
fn gemm_prepacked_smallm(m: usize, a: &[f32], pb: &PackedB, out: &mut [f32], zr: &[bool]) {
    let (k, n) = (pb.k, pb.n);
    let mut off = 0;
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let n_panels = nc.div_ceil(NR);
        let mut lc = 0;
        while lc < k {
            let kc = KC.min(k - lc);
            for pj in 0..n_panels {
                let j0 = jc + pj * NR;
                let w = NR.min(n - j0);
                let strip = &pb.data[off + pj * kc * NR..off + (pj + 1) * kc * NR];
                for i in 0..m {
                    if zr[i] {
                        continue;
                    }
                    let arow = &a[i * k + lc..i * k + lc + kc];
                    let o = i * n + j0;
                    let mut acc = [0.0f32; NR];
                    acc[..w].copy_from_slice(&out[o..o + w]);
                    for (l, &av) in arow.iter().enumerate() {
                        let brow = &strip[l * NR..(l + 1) * NR];
                        for (c, &bv) in acc.iter_mut().zip(brow) {
                            *c += av * bv;
                        }
                    }
                    out[o..o + w].copy_from_slice(&acc[..w]);
                }
            }
            off += n_panels * kc * NR;
            lc += kc;
        }
        jc += nc;
    }
}

// ---------------------------------------------------------------------------
// Int8 prepack: the experimental quantized inference path (SNS_INT8=1).
// ---------------------------------------------------------------------------

/// A weight matrix quantized to `i8` with one symmetric scale per output
/// column (`scale[j] = max|B[:,j]| / 127`), stored as `[k][NR]` panels.
/// Consumed by [`gemm_prepacked_int8`], which quantizes each activation
/// row symmetrically on the fly and accumulates in `i32` — exact integer
/// arithmetic, so the path is deterministic and batch-invariant, but the
/// quantization itself makes results differ from f32 by a bounded
/// relative error (validated by the conformance tolerance oracle, never
/// bit-compared).
#[derive(Debug, Clone)]
pub struct PackedBInt8 {
    k: usize,
    n: usize,
    /// `[n.div_ceil(NR)]` panels of `[k][NR]` quantized weights
    /// (zero-padded edge columns).
    q: Vec<i8>,
    /// Per-output-column dequantization scales (`n` entries).
    scales: Vec<f32>,
}

impl PackedBInt8 {
    /// Quantizes and packs row-major `b: [k, n]`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != k * n` or the `i32` accumulator could
    /// overflow (`k > 133152`, far beyond any model shape here).
    pub fn pack(b: &[f32], k: usize, n: usize) -> PackedBInt8 {
        assert_eq!(b.len(), k * n, "PackedBInt8 shape/data mismatch");
        assert!(
            k as u64 * 127 * 127 < i32::MAX as u64,
            "int8 GEMM accumulator would overflow at k={k}"
        );
        let mut scales = vec![0.0f32; n];
        for j in 0..n {
            let mut maxabs = 0.0f32;
            for l in 0..k {
                maxabs = maxabs.max(b[l * n + j].abs());
            }
            scales[j] = maxabs / 127.0;
        }
        let n_panels = n.div_ceil(NR);
        let mut q = vec![0i8; n_panels * k * NR];
        for l in 0..k {
            for j in 0..n {
                let (pj, c) = (j / NR, j % NR);
                let s = scales[j];
                let v = if s == 0.0 { 0.0 } else { (b[l * n + j] / s).round() };
                q[pj * k * NR + l * NR + c] = v.clamp(-127.0, 127.0) as i8;
            }
        }
        PackedBInt8 { k, n, q, scales }
    }

    /// Reduction depth.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output width.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Resident bytes of the quantized panels + scales.
    pub fn bytes(&self) -> usize {
        self.q.len() + self.scales.len() * std::mem::size_of::<f32>()
    }
}

/// `out = a @ B` against an int8-prepacked B: each activation row is
/// quantized symmetrically (`scale = max|row| / 127`, round-half-away,
/// clamp to ±127), the dot products run in exact `i32`, and the result is
/// dequantized per element as `(row_scale · col_scale) · acc`. Per-row
/// arithmetic depends only on that row, so outputs are bit-stable across
/// batch compositions and thread counts — just not bit-equal to f32.
///
/// # Panics
///
/// Panics if `a.len() != m * pb.k()` or `out.len() != m * pb.n()`.
pub fn gemm_prepacked_int8(m: usize, a: &[f32], pb: &PackedBInt8, out: &mut [f32]) {
    let (k, n) = (pb.k, pb.n);
    assert_eq!(a.len(), m * k, "int8 A shape");
    assert_eq!(out.len(), m * n, "int8 out shape");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let n_panels = n.div_ceil(NR);
    let mut qa = vec![0i8; k];
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let mut maxabs = 0.0f32;
        for &v in arow {
            maxabs = maxabs.max(v.abs());
        }
        let sa = maxabs / 127.0;
        if sa == 0.0 {
            out[i * n..(i + 1) * n].fill(0.0);
            continue;
        }
        for (q, &v) in qa.iter_mut().zip(arow) {
            *q = (v / sa).round().clamp(-127.0, 127.0) as i8;
        }
        for pj in 0..n_panels {
            let panel = &pb.q[pj * k * NR..(pj + 1) * k * NR];
            let mut acc = [0i32; NR];
            for (l, &qv) in qa.iter().enumerate() {
                let al = qv as i32;
                let brow = &panel[l * NR..(l + 1) * NR];
                for (c, &bq) in brow.iter().enumerate() {
                    acc[c] += al * bq as i32;
                }
            }
            let j0 = pj * NR;
            let nr = NR.min(n - j0);
            let orow = &mut out[i * n + j0..i * n + j0 + nr];
            for (c, o) in orow.iter_mut().enumerate() {
                *o = (sa * pb.scales[j0 + c]) * acc[c] as f32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{gemm_prepacked_int8, gemm_prepacked_nn, PackedB, PackedBInt8};
    use crate::mat::Mat;
    use sns_rt::rng::StdRng;

    fn rand_mat(rng: &mut StdRng, rows: usize, cols: usize) -> Mat {
        let mut m = Mat::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = rng.gen_range(-1.0f32..1.0);
        }
        m
    }

    /// Blocked kernels are bit-identical to the naive references across
    /// shapes that hit every tile-edge case (1, MR±1, NR±1, > blocks) —
    /// including the small-m jammed dispatch (every m <= SMALL_M here).
    #[test]
    fn blocked_kernels_match_references_bitwise() {
        let dims = [1usize, 3, 4, 5, 15, 16, 17, 33];
        let mut rng = StdRng::seed_from_u64(42);
        for &m in &dims {
            for &k in &dims {
                for &n in &dims {
                    let a = rand_mat(&mut rng, m, k);
                    let b = rand_mat(&mut rng, k, n);
                    assert_bits(&a.matmul(&b), &a.matmul_ref(&b), "nn", m, k, n);
                    let at = rand_mat(&mut rng, k, m);
                    assert_bits(&at.matmul_tn(&b), &at.matmul_tn_ref(&b), "tn", m, k, n);
                    let bt = rand_mat(&mut rng, n, k);
                    assert_bits(&a.matmul_nt(&bt), &a.matmul_nt_ref(&bt), "nt", m, k, n);
                }
            }
        }
    }

    /// The jammed small-m kernel across its j-tile boundary and the
    /// blocked/smallm dispatch edge (m = 16 vs 17), against wide B.
    #[test]
    fn small_m_dispatch_matches_references_bitwise() {
        let mut rng = StdRng::seed_from_u64(17);
        for &m in &[1usize, 2, 5, 16, 17] {
            for &k in &[7usize, 128] {
                for &n in &[255usize, 256, 257, 700] {
                    let a = rand_mat(&mut rng, m, k);
                    let b = rand_mat(&mut rng, k, n);
                    assert_bits(&a.matmul(&b), &a.matmul_ref(&b), "nn-small", m, k, n);
                }
            }
        }
    }

    fn assert_bits(x: &Mat, y: &Mat, kind: &str, m: usize, k: usize, n: usize) {
        assert_eq!((x.rows(), x.cols()), (y.rows(), y.cols()), "{kind} {m}x{k}x{n}");
        for (i, (a, b)) in x.as_slice().iter().zip(y.as_slice()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{kind} {m}x{k}x{n} elem {i}: blocked {a} vs reference {b}"
            );
        }
    }

    /// The row-sparse fast path gives the same values as the dense
    /// reference when whole A rows are zero (the gradient-scatter shape).
    #[test]
    fn zero_rows_fast_path_matches_reference() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut a = rand_mat(&mut rng, 9, 6);
        for r in [0usize, 2, 3, 5, 8] {
            a.row_mut(r).fill(0.0);
        }
        let b = rand_mat(&mut rng, 6, 21);
        assert_eq!(a.matmul(&b), a.matmul_ref(&b));
        let bt = rand_mat(&mut rng, 21, 6);
        assert_eq!(a.matmul_nt(&bt), a.matmul_nt_ref(&bt));
    }

    /// Prepacked GEMM is bit-identical to the per-call paths at shapes
    /// spanning micro-tile edges, multiple KC chunks and multiple NC
    /// blocks (k = 300 > KC, n = 600 > NC).
    #[test]
    fn prepacked_matches_references_bitwise() {
        let mut rng = StdRng::seed_from_u64(99);
        for &m in &[1usize, 2, 3, 16, 33, 130] {
            for &(k, n) in &[(5usize, 17usize), (128, 512), (300, 600), (64, 2304)] {
                let a = rand_mat(&mut rng, m, k);
                let b = rand_mat(&mut rng, k, n);
                let pb = PackedB::pack(b.as_slice(), k, n);
                let mut out = Mat::zeros(m, n);
                gemm_prepacked_nn(m, a.as_slice(), &pb, out.as_mut_slice());
                assert_bits(&out, &a.matmul_ref(&b), "prepacked", m, k, n);
                assert!(pb.bytes() >= k * n * 4);
            }
        }
    }

    /// The int8 path is deterministic, batch-invariant per row, and close
    /// to f32 in relative terms.
    #[test]
    fn int8_is_deterministic_and_close_to_f32() {
        let mut rng = StdRng::seed_from_u64(5);
        let (m, k, n) = (7usize, 96usize, 48usize);
        let a = rand_mat(&mut rng, m, k);
        let b = rand_mat(&mut rng, k, n);
        let pb = PackedBInt8::pack(b.as_slice(), k, n);
        let mut q1 = Mat::zeros(m, n);
        let mut q2 = Mat::zeros(m, n);
        gemm_prepacked_int8(m, a.as_slice(), &pb, q1.as_mut_slice());
        gemm_prepacked_int8(m, a.as_slice(), &pb, q2.as_mut_slice());
        assert_eq!(q1, q2, "int8 GEMM must be deterministic");
        // Row 3 alone must reproduce row 3 of the batch bit-for-bit.
        let solo = a.rows_slice(3, 4);
        let mut qs = Mat::zeros(1, n);
        gemm_prepacked_int8(1, solo.as_slice(), &pb, qs.as_mut_slice());
        assert_eq!(qs.row(0), q1.row(3), "int8 rows must be batch-invariant");
        // Against f32: small relative error on a well-conditioned product.
        let f = a.matmul_ref(&b);
        let (mut num, mut den) = (0.0f64, 0.0f64);
        for (qv, fv) in q1.as_slice().iter().zip(f.as_slice()) {
            num += (*qv as f64 - *fv as f64).powi(2);
            den += (*fv as f64).powi(2);
        }
        let rel = (num / den.max(1e-30)).sqrt();
        assert!(rel < 0.05, "int8 relative error {rel} too large");
        // All-zero activation rows stay exactly zero.
        let z = Mat::zeros(2, k);
        let mut qz = Mat::full(2, n, 7.0);
        gemm_prepacked_int8(2, z.as_slice(), &pb, qz.as_mut_slice());
        assert!(qz.as_slice().iter().all(|&v| v == 0.0));
    }
}
