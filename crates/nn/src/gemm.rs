//! Cache-blocked, register-tiled GEMM kernels for the inference hot loop.
//!
//! Three kernels back [`Mat::matmul`], [`Mat::matmul_tn`] and
//! [`Mat::matmul_nt`]. All share one packed-panel driver built around an
//! `MR × NR` register micro-kernel (GotoBLAS/BLIS structure: pack a
//! `KC × NC` panel of B and an `MC × KC` panel of A into contiguous
//! micro-panels, then sweep the micro-kernel over the block).
//!
//! # The K-order contract
//!
//! Every output element is produced by the *same additive reduction as the
//! naive triple loop*: `out[i][j] = ((0 + a(i,0)·b(0,j)) + a(i,1)·b(1,j)) + …`
//! with `l` strictly ascending, every intermediate rounded to `f32`. The
//! blocking machinery only re-tiles the `i`/`j` loops and splits `l` into
//! ascending `KC` chunks (partial sums are stored to the output and
//! reloaded, which is exactly what the naive loop's memory accumulator
//! does), so results are **bit-identical** to the retained references
//! [`Mat::matmul_ref`], [`Mat::matmul_tn_ref`] and [`Mat::matmul_nt_ref`]
//! at every shape. Tile edges are handled by zero-padding the packed
//! panels: padded lanes accumulate into accumulator slots that are never
//! written back, so real elements see no extra additions.
//!
//! The old element-level `a == 0.0` skip is gone — on dense embedding
//! activations it was a branch per multiply that blocked vectorization.
//! What remains is a *row*-level sparse fast path: output rows whose
//! entire A row is zero (CLS-only gradient scatters, padded rows) are
//! detected up front in one cheap scan and skipped as whole micro-tiles.
//! A zero A row contributes only `±0.0` products whose running sum stays
//! `+0.0`, so the skip is value-identical too.

/// Micro-kernel rows (register tile height).
pub const MR: usize = 4;
/// Micro-kernel columns (register tile width; 16 f32 = two AVX vectors).
pub const NR: usize = 16;
/// K-dimension block: one packed panel's reduction depth.
const KC: usize = 256;
/// N-dimension block: columns of B packed per panel.
const NC: usize = 512;
/// M-dimension block: rows of A packed per panel.
const MC: usize = 128;

/// The portable register micro-kernel:
/// `acc[r][c] += Σ_l ap[l][r] · bp[l][c]` with `l` ascending. `ap` is an
/// `[kc][MR]` panel, `bp` an `[kc][NR]` panel.
#[inline(always)]
fn micro_kernel_generic(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    for l in 0..kc {
        let b: &[f32; NR] = bp[l * NR..l * NR + NR].try_into().expect("NR panel");
        let a: &[f32; MR] = ap[l * MR..l * MR + MR].try_into().expect("MR panel");
        for r in 0..MR {
            let ar = a[r];
            for c in 0..NR {
                acc[r][c] += ar * b[c];
            }
        }
    }
}

/// The AVX micro-kernel: the same 4×16 tile held in eight 256-bit
/// accumulators. Deliberately `vmulps` **then** `vaddps` — never
/// `vfmadd` — so each lane performs exactly the scalar `round(a·b)` then
/// `round(acc + ·)` sequence and the result stays bit-identical to
/// [`micro_kernel_generic`] and the naive references.
///
/// # Safety
///
/// Caller must guarantee AVX is available (checked via
/// `is_x86_feature_detected!` in [`micro_kernel`]) and the panel-length
/// invariants of [`micro_kernel_generic`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn micro_kernel_avx(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    let mut acc_v = [[_mm256_setzero_ps(); 2]; MR];
    for (r, row) in acc.iter().enumerate() {
        acc_v[r][0] = _mm256_loadu_ps(row.as_ptr());
        acc_v[r][1] = _mm256_loadu_ps(row.as_ptr().add(8));
    }
    let mut a_ptr = ap.as_ptr();
    let mut b_ptr = bp.as_ptr();
    for _ in 0..kc {
        let b0 = _mm256_loadu_ps(b_ptr);
        let b1 = _mm256_loadu_ps(b_ptr.add(8));
        for (r, accs) in acc_v.iter_mut().enumerate() {
            let ar = _mm256_broadcast_ss(&*a_ptr.add(r));
            accs[0] = _mm256_add_ps(accs[0], _mm256_mul_ps(ar, b0));
            accs[1] = _mm256_add_ps(accs[1], _mm256_mul_ps(ar, b1));
        }
        a_ptr = a_ptr.add(MR);
        b_ptr = b_ptr.add(NR);
    }
    for (r, row) in acc.iter_mut().enumerate() {
        _mm256_storeu_ps(row.as_mut_ptr(), acc_v[r][0]);
        _mm256_storeu_ps(row.as_mut_ptr().add(8), acc_v[r][1]);
    }
}

/// Dispatches to the fastest bit-identical micro-kernel the host supports.
/// (`is_x86_feature_detected!` caches its probe, so the check is one
/// atomic load per tile.)
#[inline(always)]
fn micro_kernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: AVX probed above; panel sizes checked by the callee's
        // debug assertions and guaranteed by the driver's packing.
        unsafe { micro_kernel_avx(kc, ap, bp, acc) };
        return;
    }
    micro_kernel_generic(kc, ap, bp, acc);
}

/// The shared blocked driver. `pack_a(buf, ic, mc, lc, kc)` must fill
/// `buf` with `[mc.div_ceil(MR)]` micro-panels of layout `[kc][MR]`
/// holding the logical `A[ic..ic+mc, lc..lc+kc]` block (zero-padded);
/// `pack_b` the analogous `[kc][NR]` panels of `B[lc..lc+kc, jc..jc+nc]`.
/// `zero_rows`, when non-empty, flags output rows whose whole logical A
/// row is zero; micro-tiles made only of such rows are skipped.
fn gemm_driver<PA, PB>(
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    zero_rows: &[bool],
    pack_a: PA,
    pack_b: PB,
) where
    PA: Fn(&mut [f32], usize, usize, usize, usize),
    PB: Fn(&mut [f32], usize, usize, usize, usize),
{
    if m == 0 || n == 0 {
        return;
    }
    debug_assert_eq!(out.len(), m * n);
    if k == 0 {
        return; // out stays zero, matching an empty reduction
    }
    let mut bp = vec![0.0f32; NC.min(n).div_ceil(NR) * NR * KC.min(k)];
    let mut ap = vec![0.0f32; MC.min(m).div_ceil(MR) * MR * KC.min(k)];
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let n_panels = nc.div_ceil(NR);
        let mut lc = 0;
        while lc < k {
            let kc = KC.min(k - lc);
            bp[..n_panels * kc * NR].fill(0.0);
            pack_b(&mut bp, jc, nc, lc, kc);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                let m_panels = mc.div_ceil(MR);
                ap[..m_panels * kc * MR].fill(0.0);
                pack_a(&mut ap, ic, mc, lc, kc);
                for pj in 0..n_panels {
                    let j0 = jc + pj * NR;
                    let nr = NR.min(n - j0);
                    let bpanel = &bp[pj * kc * NR..(pj + 1) * kc * NR];
                    for pi in 0..m_panels {
                        let i0 = ic + pi * MR;
                        let mr = MR.min(m - i0);
                        if !zero_rows.is_empty() && zero_rows[i0..i0 + mr].iter().all(|&z| z) {
                            continue;
                        }
                        let apanel = &ap[pi * kc * MR..(pi + 1) * kc * MR];
                        let mut acc = [[0.0f32; NR]; MR];
                        for (r, row) in acc.iter_mut().enumerate().take(mr) {
                            let o = (i0 + r) * n + j0;
                            row[..nr].copy_from_slice(&out[o..o + nr]);
                        }
                        micro_kernel(kc, apanel, bpanel, &mut acc);
                        for (r, row) in acc.iter().enumerate().take(mr) {
                            let o = (i0 + r) * n + j0;
                            out[o..o + nr].copy_from_slice(&row[..nr]);
                        }
                    }
                }
                ic += mc;
            }
            lc += kc;
        }
        jc += nc;
    }
}

/// Flags rows of the row-major `[m, k]` matrix `a` that are entirely zero.
/// Early-exits per row, so dense inputs cost ~one read per row.
fn zero_rows(a: &[f32], m: usize, k: usize) -> Vec<bool> {
    (0..m).map(|i| a[i * k..(i + 1) * k].iter().all(|&v| v == 0.0)).collect()
}

/// `out = a @ b` for row-major `a: [m, k]`, `b: [k, n]`. `out` must be
/// zeroed (or hold a partial sum over earlier `l`, per the K-order
/// contract).
pub fn gemm_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let zr = zero_rows(a, m, k);
    gemm_driver(
        m,
        k,
        n,
        out,
        &zr,
        |buf, ic, mc, lc, kc| {
            for ri in 0..mc {
                let (pi, r) = (ri / MR, ri % MR);
                let src = &a[(ic + ri) * k + lc..(ic + ri) * k + lc + kc];
                let panel = pi * kc * MR;
                for (l, &v) in src.iter().enumerate() {
                    buf[panel + l * MR + r] = v;
                }
            }
        },
        |buf, jc, nc, lc, kc| {
            for l in 0..kc {
                let src = &b[(lc + l) * n + jc..(lc + l) * n + jc + nc];
                for (ci, &v) in src.iter().enumerate() {
                    let (pj, c) = (ci / NR, ci % NR);
                    buf[pj * kc * NR + l * NR + c] = v;
                }
            }
        },
    );
}

/// `out = aᵀ @ b` for row-major `a: [k, m]`, `b: [k, n]` — the transpose
/// is absorbed into the A-panel packing, never materialized.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    gemm_driver(
        m,
        k,
        n,
        out,
        &[],
        |buf, ic, mc, lc, kc| {
            for l in 0..kc {
                let src = &a[(lc + l) * m + ic..(lc + l) * m + ic + mc];
                for (ri, &v) in src.iter().enumerate() {
                    let (pi, r) = (ri / MR, ri % MR);
                    buf[pi * kc * MR + l * MR + r] = v;
                }
            }
        },
        |buf, jc, nc, lc, kc| {
            for l in 0..kc {
                let src = &b[(lc + l) * n + jc..(lc + l) * n + jc + nc];
                for (ci, &v) in src.iter().enumerate() {
                    let (pj, c) = (ci / NR, ci % NR);
                    buf[pj * kc * NR + l * NR + c] = v;
                }
            }
        },
    );
}

/// `out = a @ bᵀ` for row-major `a: [m, k]`, `b: [n, k]` — the transpose
/// is absorbed into the B-panel packing, never materialized.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    let zr = zero_rows(a, m, k);
    gemm_driver(
        m,
        k,
        n,
        out,
        &zr,
        |buf, ic, mc, lc, kc| {
            for ri in 0..mc {
                let (pi, r) = (ri / MR, ri % MR);
                let src = &a[(ic + ri) * k + lc..(ic + ri) * k + lc + kc];
                let panel = pi * kc * MR;
                for (l, &v) in src.iter().enumerate() {
                    buf[panel + l * MR + r] = v;
                }
            }
        },
        |buf, jc, nc, lc, kc| {
            for ci in 0..nc {
                let (pj, c) = (ci / NR, ci % NR);
                let src = &b[(jc + ci) * k + lc..(jc + ci) * k + lc + kc];
                let panel = pj * kc * NR;
                for (l, &v) in src.iter().enumerate() {
                    buf[panel + l * NR + c] = v;
                }
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use crate::mat::Mat;
    use sns_rt::rng::StdRng;

    fn rand_mat(rng: &mut StdRng, rows: usize, cols: usize) -> Mat {
        let mut m = Mat::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = rng.gen_range(-1.0f32..1.0);
        }
        m
    }

    /// Blocked kernels are bit-identical to the naive references across
    /// shapes that hit every tile-edge case (1, MR±1, NR±1, > blocks).
    #[test]
    fn blocked_kernels_match_references_bitwise() {
        let dims = [1usize, 3, 4, 5, 15, 16, 17, 33];
        let mut rng = StdRng::seed_from_u64(42);
        for &m in &dims {
            for &k in &dims {
                for &n in &dims {
                    let a = rand_mat(&mut rng, m, k);
                    let b = rand_mat(&mut rng, k, n);
                    assert_bits(&a.matmul(&b), &a.matmul_ref(&b), "nn", m, k, n);
                    let at = rand_mat(&mut rng, k, m);
                    assert_bits(&at.matmul_tn(&b), &at.matmul_tn_ref(&b), "tn", m, k, n);
                    let bt = rand_mat(&mut rng, n, k);
                    assert_bits(&a.matmul_nt(&bt), &a.matmul_nt_ref(&bt), "nt", m, k, n);
                }
            }
        }
    }

    fn assert_bits(x: &Mat, y: &Mat, kind: &str, m: usize, k: usize, n: usize) {
        assert_eq!((x.rows(), x.cols()), (y.rows(), y.cols()), "{kind} {m}x{k}x{n}");
        for (i, (a, b)) in x.as_slice().iter().zip(y.as_slice()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{kind} {m}x{k}x{n} elem {i}: blocked {a} vs reference {b}"
            );
        }
    }

    /// The row-sparse fast path gives the same values as the dense
    /// reference when whole A rows are zero (the gradient-scatter shape).
    #[test]
    fn zero_rows_fast_path_matches_reference() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut a = rand_mat(&mut rng, 9, 6);
        for r in [0usize, 2, 3, 5, 8] {
            a.row_mut(r).fill(0.0);
        }
        let b = rand_mat(&mut rng, 6, 21);
        assert_eq!(a.matmul(&b), a.matmul_ref(&b));
        let bt = rand_mat(&mut rng, 21, 6);
        assert_eq!(a.matmul_nt(&bt), a.matmul_nt_ref(&bt));
    }
}
