//! Optimizers: SGD with momentum and Adam (the two the paper's Table 6
//! uses).

use std::collections::HashMap;

use crate::mat::Mat;
use crate::param::{Grads, Param, ParamId};

/// Common interface over optimizers.
pub trait Optimizer {
    /// Applies one update to a single parameter given its gradient buffer.
    fn update(&mut self, param: &mut Param, grads: &Grads);

    /// Advances internal schedules after a full step over all parameters
    /// (e.g. Adam's bias-correction step counter).
    fn tick(&mut self) {}

    /// Convenience: updates every parameter the `visit` closure yields,
    /// then ticks.
    ///
    /// ```rust
    /// # use sns_nn::*;
    /// # let mut rng = sns_rt::rng::StdRng::seed_from_u64(0);
    /// # let mut reg = ParamRegistry::new();
    /// # let mut layer = Linear::new(&mut reg, 2, 2, &mut rng);
    /// # let grads = Grads::new(&reg);
    /// let mut opt = Sgd::new(0.1, 0.9);
    /// opt.step_visit(&grads, |f| layer.visit_mut(f));
    /// ```
    fn step_visit(&mut self, grads: &Grads, mut visit: impl FnMut(&mut dyn FnMut(&mut Param)))
    where
        Self: Sized,
    {
        visit(&mut |p: &mut Param| self.update(p, grads));
        self.tick();
    }
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocity: HashMap<ParamId, Mat>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, velocity: HashMap::new() }
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, param: &mut Param, grads: &Grads) {
        let g = grads.get(param.id);
        if self.momentum == 0.0 {
            for (v, gi) in param.value.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *v -= self.lr * gi;
            }
            return;
        }
        let vel = self
            .velocity
            .entry(param.id)
            .or_insert_with(|| Mat::zeros(g.rows(), g.cols()));
        for ((v, gi), m) in param
            .value
            .as_mut_slice()
            .iter_mut()
            .zip(g.as_slice())
            .zip(vel.as_mut_slice())
        {
            *m = self.momentum * *m + gi;
            *v -= self.lr * *m;
        }
    }
}

/// Adam (Kingma & Ba 2014) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    t: i32,
    m: HashMap<ParamId, Mat>,
    v: HashMap<ParamId, Mat>,
}

impl Adam {
    /// Creates Adam with the standard β₁ = 0.9, β₂ = 0.999.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: HashMap::new(), v: HashMap::new() }
    }
}

impl Optimizer for Adam {
    fn update(&mut self, param: &mut Param, grads: &Grads) {
        let g = grads.get(param.id);
        let m = self.m.entry(param.id).or_insert_with(|| Mat::zeros(g.rows(), g.cols()));
        let v = self.v.entry(param.id).or_insert_with(|| Mat::zeros(g.rows(), g.cols()));
        let t = (self.t + 1) as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for (((p, gi), mi), vi) in param
            .value
            .as_mut_slice()
            .iter_mut()
            .zip(g.as_slice())
            .zip(m.as_mut_slice())
            .zip(v.as_mut_slice())
        {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            let mhat = *mi / bc1;
            let vhat = *vi / bc2;
            *p -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn tick(&mut self) {
        self.t += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamRegistry;

    fn quadratic_setup() -> (ParamRegistry, Param) {
        let mut reg = ParamRegistry::new();
        let p = reg.alloc("x", Mat::from_rows(&[&[5.0, -3.0]]));
        (reg, p)
    }

    /// Minimize f(x) = 0.5 x² — gradient is x itself.
    fn run<O: Optimizer>(opt: &mut O, steps: usize) -> f32 {
        let (reg, mut p) = quadratic_setup();
        for _ in 0..steps {
            let mut g = Grads::new(&reg);
            let grad = p.value.clone();
            g.accumulate(p.id, &grad);
            opt.update(&mut p, &g);
            opt.tick();
        }
        p.value.norm()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(run(&mut Sgd::new(0.1, 0.0), 100) < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges_faster_than_plain() {
        let plain = run(&mut Sgd::new(0.02, 0.0), 60);
        let momentum = run(&mut Sgd::new(0.02, 0.9), 60);
        assert!(momentum < plain, "momentum {momentum} vs plain {plain}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(run(&mut Adam::new(0.2), 200) < 1e-2);
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction, the first Adam step is ≈ lr in each coord.
        let (reg, mut p) = quadratic_setup();
        let before = p.value.clone();
        let mut g = Grads::new(&reg);
        g.accumulate(p.id, &p.value.clone());
        let mut opt = Adam::new(0.1);
        opt.update(&mut p, &g);
        for (b, a) in before.as_slice().iter().zip(p.value.as_slice()) {
            assert!(((b - a).abs() - 0.1).abs() < 1e-3, "step {}", (b - a).abs());
        }
    }
}
