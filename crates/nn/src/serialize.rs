//! Parameter serialization via serde.
//!
//! Models expose `visit`/`visit_mut`; serialization snapshots every
//! parameter by name. The format is a plain serde structure, so any serde
//! format works (the workspace uses JSON for its small trained models).

use serde::{Deserialize, Serialize};

use crate::mat::Mat;
use crate::param::Param;

/// A serializable snapshot of model parameters.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ModelState {
    /// `(name, rows, cols, data)` per parameter, in visit order.
    pub tensors: Vec<(String, usize, usize, Vec<f32>)>,
}

/// Captures all parameters yielded by `visit` into a [`ModelState`].
///
/// # Example
///
/// ```rust
/// use sns_nn::{save_params, load_params, Linear, ParamRegistry};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut reg = ParamRegistry::new();
/// let mut layer = Linear::new(&mut reg, 4, 2, &mut rng);
/// let state = save_params(|f| layer.visit(f));
/// let mut layer2 = Linear::new(&mut reg, 4, 2, &mut rng);
/// load_params(&state, |f| layer2.visit_mut(f)).unwrap();
/// let s2 = save_params(|f| layer2.visit(f));
/// assert_eq!(state, s2);
/// ```
pub fn save_params(mut visit: impl FnMut(&mut dyn FnMut(&Param))) -> ModelState {
    let mut tensors = Vec::new();
    visit(&mut |p: &Param| {
        tensors.push((p.name.clone(), p.value.rows(), p.value.cols(), p.value.as_slice().to_vec()));
    });
    ModelState { tensors }
}

/// Restores parameters in visit order from a [`ModelState`].
///
/// # Errors
///
/// Returns a description of the first mismatch (count or shape) — partial
/// restores are applied up to that point.
pub fn load_params(
    state: &ModelState,
    mut visit: impl FnMut(&mut dyn FnMut(&mut Param)),
) -> Result<(), String> {
    let mut idx = 0usize;
    let mut error: Option<String> = None;
    visit(&mut |p: &mut Param| {
        if error.is_some() {
            return;
        }
        let Some((name, rows, cols, data)) = state.tensors.get(idx) else {
            error = Some(format!("state has only {} tensors", state.tensors.len()));
            return;
        };
        if (*rows, *cols) != (p.value.rows(), p.value.cols()) {
            error = Some(format!(
                "tensor `{name}` shape {}x{} does not match parameter `{}` {}x{}",
                rows,
                cols,
                p.name,
                p.value.rows(),
                p.value.cols()
            ));
            return;
        }
        p.value = Mat::from_vec(*rows, *cols, data.clone());
        idx += 1;
    });
    if let Some(e) = error {
        return Err(e);
    }
    if idx != state.tensors.len() {
        return Err(format!("model consumed {idx} of {} tensors", state.tensors.len()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::param::ParamRegistry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_through_json() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut reg = ParamRegistry::new();
        let l = Linear::new(&mut reg, 3, 3, &mut rng);
        let state = save_params(|f| l.visit(f));
        let json = serde_json::to_string(&state).unwrap();
        let back: ModelState = serde_json::from_str(&json).unwrap();
        assert_eq!(state, back);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut reg = ParamRegistry::new();
        let small = Linear::new(&mut reg, 2, 2, &mut rng);
        let mut big = Linear::new(&mut reg, 4, 4, &mut rng);
        let state = save_params(|f| small.visit(f));
        let err = load_params(&state, |f| big.visit_mut(f)).unwrap_err();
        assert!(err.contains("shape"), "{err}");
    }

    #[test]
    fn too_few_tensors_is_an_error() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut reg = ParamRegistry::new();
        let l = Linear::new(&mut reg, 2, 2, &mut rng);
        let mut two = (
            Linear::new(&mut reg, 2, 2, &mut rng),
            Linear::new(&mut reg, 2, 2, &mut rng),
        );
        let state = save_params(|f| l.visit(f));
        let err = load_params(&state, |f| {
            two.0.visit_mut(f);
            two.1.visit_mut(f);
        })
        .unwrap_err();
        assert!(err.contains("only"), "{err}");
    }
}
