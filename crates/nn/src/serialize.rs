//! Parameter serialization.
//!
//! Models expose `visit`/`visit_mut`; serialization snapshots every
//! parameter by name. The on-disk format is JSON via [`sns_rt::json`],
//! shape-compatible with what the earlier serde-based code wrote
//! (`{"tensors":[[name,rows,cols,[data...]],...]}`), so existing model
//! files still load.

use sns_rt::json::{Json, JsonError};

use crate::mat::Mat;
use crate::param::Param;

/// A serializable snapshot of model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelState {
    /// `(name, rows, cols, data)` per parameter, in visit order.
    pub tensors: Vec<(String, usize, usize, Vec<f32>)>,
}

impl ModelState {
    /// The JSON form (tuples become arrays, as serde did).
    pub fn to_json(&self) -> Json {
        let tensors = self
            .tensors
            .iter()
            .map(|(name, rows, cols, data)| {
                Json::Arr(vec![
                    Json::Str(name.clone()),
                    Json::Int(*rows as i64),
                    Json::Int(*cols as i64),
                    Json::from_f32_slice(data),
                ])
            })
            .collect();
        Json::obj(vec![("tensors", Json::Arr(tensors))])
    }

    /// Reconstructs a state from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns the first structural mismatch.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut tensors = Vec::new();
        for entry in v.get("tensors")?.as_arr()? {
            let fields = entry.as_arr()?;
            if fields.len() != 4 {
                return Err(JsonError(format!(
                    "tensor entry has {} fields, expected 4",
                    fields.len()
                )));
            }
            let rows = fields[1].as_usize()?;
            let cols = fields[2].as_usize()?;
            let data = fields[3].as_f32_vec()?;
            if data.len() != rows * cols {
                return Err(JsonError(format!(
                    "tensor `{}` claims {rows}x{cols} but carries {} values",
                    fields[0].as_str().unwrap_or("?"),
                    data.len()
                )));
            }
            tensors.push((fields[0].as_str()?.to_string(), rows, cols, data));
        }
        Ok(ModelState { tensors })
    }

    /// Serializes to a JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().print()
    }

    /// Parses a JSON string produced by [`ModelState::to_json_string`].
    ///
    /// # Errors
    ///
    /// Returns a parse or structure error message.
    pub fn from_json_str(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&sns_rt::json::parse(text)?)
    }
}

/// Captures all parameters yielded by `visit` into a [`ModelState`].
///
/// # Example
///
/// ```rust
/// use sns_nn::{save_params, load_params, Linear, ParamRegistry};
///
/// let mut rng = sns_rt::rng::StdRng::seed_from_u64(0);
/// let mut reg = ParamRegistry::new();
/// let mut layer = Linear::new(&mut reg, 4, 2, &mut rng);
/// let state = save_params(|f| layer.visit(f));
/// let mut layer2 = Linear::new(&mut reg, 4, 2, &mut rng);
/// load_params(&state, |f| layer2.visit_mut(f)).unwrap();
/// let s2 = save_params(|f| layer2.visit(f));
/// assert_eq!(state, s2);
/// ```
pub fn save_params(mut visit: impl FnMut(&mut dyn FnMut(&Param))) -> ModelState {
    let mut tensors = Vec::new();
    visit(&mut |p: &Param| {
        tensors.push((p.name.clone(), p.value.rows(), p.value.cols(), p.value.as_slice().to_vec()));
    });
    ModelState { tensors }
}

/// Restores parameters in visit order from a [`ModelState`].
///
/// # Errors
///
/// Returns a description of the first mismatch (count or shape) — partial
/// restores are applied up to that point.
pub fn load_params(
    state: &ModelState,
    mut visit: impl FnMut(&mut dyn FnMut(&mut Param)),
) -> Result<(), String> {
    let mut idx = 0usize;
    let mut error: Option<String> = None;
    visit(&mut |p: &mut Param| {
        if error.is_some() {
            return;
        }
        let Some((name, rows, cols, data)) = state.tensors.get(idx) else {
            error = Some(format!("state has only {} tensors", state.tensors.len()));
            return;
        };
        if (*rows, *cols) != (p.value.rows(), p.value.cols()) {
            error = Some(format!(
                "tensor `{name}` shape {}x{} does not match parameter `{}` {}x{}",
                rows,
                cols,
                p.name,
                p.value.rows(),
                p.value.cols()
            ));
            return;
        }
        p.value = Mat::from_vec(*rows, *cols, data.clone());
        idx += 1;
    });
    if let Some(e) = error {
        return Err(e);
    }
    if idx != state.tensors.len() {
        return Err(format!("model consumed {idx} of {} tensors", state.tensors.len()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::param::ParamRegistry;
    use sns_rt::rng::StdRng;

    #[test]
    fn round_trip_through_json() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut reg = ParamRegistry::new();
        let l = Linear::new(&mut reg, 3, 3, &mut rng);
        let state = save_params(|f| l.visit(f));
        let json = state.to_json_string();
        let back = ModelState::from_json_str(&json).unwrap();
        assert_eq!(state, back);
    }

    #[test]
    fn json_shape_matches_the_serde_era_format() {
        let state = ModelState {
            tensors: vec![("t".to_string(), 1, 2, vec![0.5, -1.5])],
        };
        assert_eq!(state.to_json_string(), r#"{"tensors":[["t",1,2,[0.5,-1.5]]]}"#);
        // And a literal file written by the old serde code parses.
        let legacy = r#"{"tensors":[["t",1,2,[0.5,-1.5]]]}"#;
        assert_eq!(ModelState::from_json_str(legacy).unwrap(), state);
    }

    #[test]
    fn corrupt_json_is_an_error() {
        assert!(ModelState::from_json_str("{not json").is_err());
        assert!(ModelState::from_json_str(r#"{"tensors":[["t",2,2,[1.0]]]}"#).is_err());
        assert!(ModelState::from_json_str(r#"{"wrong":[]}"#).is_err());
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut reg = ParamRegistry::new();
        let small = Linear::new(&mut reg, 2, 2, &mut rng);
        let mut big = Linear::new(&mut reg, 4, 4, &mut rng);
        let state = save_params(|f| small.visit(f));
        let err = load_params(&state, |f| big.visit_mut(f)).unwrap_err();
        assert!(err.contains("shape"), "{err}");
    }

    #[test]
    fn too_few_tensors_is_an_error() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut reg = ParamRegistry::new();
        let l = Linear::new(&mut reg, 2, 2, &mut rng);
        let mut two = (
            Linear::new(&mut reg, 2, 2, &mut rng),
            Linear::new(&mut reg, 2, 2, &mut rng),
        );
        let state = save_params(|f| l.visit(f));
        let err = load_params(&state, |f| {
            two.0.visit_mut(f);
            two.1.visit_mut(f);
        })
        .unwrap_err();
        assert!(err.contains("only"), "{err}");
    }
}
