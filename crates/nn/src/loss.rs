//! Losses, each returning `(loss, dLoss/dInput)`.

use crate::mat::Mat;

/// Mean-squared error over all elements.
///
/// Returns `(L, dL/dpred)` with `L = mean((pred - target)²)`.
///
/// # Panics
///
/// Panics on a shape mismatch.
///
/// # Example
///
/// ```rust
/// use sns_nn::{mse_loss, Mat};
///
/// let (l, g) = mse_loss(&Mat::from_rows(&[&[1.0]]), &Mat::from_rows(&[&[3.0]]));
/// assert_eq!(l, 4.0);
/// assert_eq!(g.get(0, 0), -4.0); // 2*(1-3)/1
/// ```
pub fn mse_loss(pred: &Mat, target: &Mat) -> (f32, Mat) {
    assert_eq!(
        (pred.rows(), pred.cols()),
        (target.rows(), target.cols()),
        "mse shapes differ"
    );
    let n = (pred.rows() * pred.cols()) as f32;
    let mut loss = 0.0;
    let mut grad = Mat::zeros(pred.rows(), pred.cols());
    for i in 0..pred.as_slice().len() {
        let d = pred.as_slice()[i] - target.as_slice()[i];
        loss += d * d;
        grad.as_mut_slice()[i] = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Binary cross-entropy on logits (numerically stable).
///
/// `targets` are 0/1 per element; returns the mean loss and the gradient
/// w.r.t. the logits (`sigmoid(z) - t`, scaled by 1/n).
///
/// # Panics
///
/// Panics on a shape mismatch.
pub fn bce_with_logits_loss(logits: &Mat, targets: &Mat) -> (f32, Mat) {
    assert_eq!(
        (logits.rows(), logits.cols()),
        (targets.rows(), targets.cols()),
        "bce shapes differ"
    );
    let n = (logits.rows() * logits.cols()) as f32;
    let mut loss = 0.0;
    let mut grad = Mat::zeros(logits.rows(), logits.cols());
    for i in 0..logits.as_slice().len() {
        let z = logits.as_slice()[i];
        let t = targets.as_slice()[i];
        // max(z,0) - z*t + ln(1 + e^{-|z|})
        loss += z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
        let s = 1.0 / (1.0 + (-z).exp());
        grad.as_mut_slice()[i] = (s - t) / n;
    }
    (loss / n, grad)
}

/// Softmax + cross-entropy over rows of `logits` with integer class
/// targets. Returns the mean loss and the gradient w.r.t. the logits.
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()` or a target class is out of
/// range.
pub fn softmax_cross_entropy(logits: &Mat, targets: &[usize]) -> (f32, Mat) {
    assert_eq!(targets.len(), logits.rows(), "one target per row");
    let probs = logits.softmax_rows();
    let n = logits.rows() as f32;
    let mut loss = 0.0;
    let mut grad = probs.clone();
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < logits.cols(), "target class {t} out of range");
        loss += -probs.get(r, t).max(1e-12).ln();
        grad.set(r, t, grad.get(r, t) - 1.0);
    }
    (loss / n, grad.scale(1.0 / n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_at_perfect_prediction() {
        let p = Mat::from_rows(&[&[1.0, 2.0]]);
        let (l, g) = mse_loss(&p, &p);
        assert_eq!(l, 0.0);
        assert_eq!(g.sum(), 0.0);
    }

    #[test]
    fn bce_is_low_for_confident_correct_predictions() {
        let z = Mat::from_rows(&[&[8.0, -8.0]]);
        let t = Mat::from_rows(&[&[1.0, 0.0]]);
        let (l, _) = bce_with_logits_loss(&z, &t);
        assert!(l < 0.01, "loss {l}");
        let t_wrong = Mat::from_rows(&[&[0.0, 1.0]]);
        let (lw, _) = bce_with_logits_loss(&z, &t_wrong);
        assert!(lw > 4.0, "loss {lw}");
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let z = Mat::from_rows(&[&[0.3, -1.2, 2.0]]);
        let t = Mat::from_rows(&[&[1.0, 0.0, 1.0]]);
        let (_, g) = bce_with_logits_loss(&z, &t);
        let eps = 1e-3;
        for c in 0..3 {
            let mut zp = z.clone();
            zp.set(0, c, z.get(0, c) + eps);
            let mut zm = z.clone();
            zm.set(0, c, z.get(0, c) - eps);
            let fd = (bce_with_logits_loss(&zp, &t).0 - bce_with_logits_loss(&zm, &t).0)
                / (2.0 * eps);
            assert!((fd - g.get(0, c)).abs() < 1e-3, "c={c}");
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let z = Mat::from_rows(&[&[0.5, -0.3, 1.2], &[2.0, 0.0, -1.0]]);
        let t = [2usize, 0usize];
        let (_, g) = softmax_cross_entropy(&z, &t);
        let eps = 1e-3;
        for r in 0..2 {
            for c in 0..3 {
                let mut zp = z.clone();
                zp.set(r, c, z.get(r, c) + eps);
                let mut zm = z.clone();
                zm.set(r, c, z.get(r, c) - eps);
                let fd = (softmax_cross_entropy(&zp, &t).0 - softmax_cross_entropy(&zm, &t).0)
                    / (2.0 * eps);
                assert!((fd - g.get(r, c)).abs() < 1e-3, "[{r}][{c}]");
            }
        }
    }
}
