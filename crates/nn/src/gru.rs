//! A single-layer GRU with full backpropagation through time.
//!
//! This is the recurrent backbone of the SeqGAN generator and
//! discriminator in `sns-genmodel` (the paper uses the SeqGAN reference
//! implementation; its recurrent cells play the same role).

use sns_rt::rng::StdRng;

use crate::act::sigmoid;
use crate::gemm::PackedB;
use crate::linear::Linear;
use crate::mat::Mat;
use crate::param::{Grads, Param, ParamRegistry};

/// Gated recurrent unit processing one sequence at a time.
///
/// `forward` maps `[T, in]` inputs to `[T, hidden]` hidden states (h₀ = 0);
/// `backward` runs BPTT and returns the input gradients.
#[derive(Debug, Clone)]
pub struct Gru {
    // Input projections (x → gates) and recurrent projections (h → gates).
    wz: Linear,
    wr: Linear,
    wh: Linear,
    uz: Linear,
    ur: Linear,
    uh: Linear,
    hidden: usize,
}

/// Saved forward state for [`Gru::backward`].
#[derive(Debug, Clone)]
pub struct GruCtx {
    xs: Mat,
    h_prev: Vec<Mat>, // h_{t-1}, per step (1 x hidden)
    z: Vec<Mat>,
    r: Vec<Mat>,
    n: Vec<Mat>,
    rh: Vec<Mat>, // r ⊙ h_{t-1}
}

impl Gru {
    /// Creates a GRU mapping `in_dim` inputs to `hidden` state size.
    pub fn new(reg: &mut ParamRegistry, in_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        Gru {
            wz: Linear::new(reg, in_dim, hidden, rng),
            wr: Linear::new(reg, in_dim, hidden, rng),
            wh: Linear::new(reg, in_dim, hidden, rng),
            uz: Linear::new(reg, hidden, hidden, rng),
            ur: Linear::new(reg, hidden, hidden, rng),
            uh: Linear::new(reg, hidden, hidden, rng),
            hidden,
        }
    }

    /// Hidden-state size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Runs the GRU over `xs` of shape `[T, in_dim]`.
    pub fn forward(&self, xs: &Mat) -> (Mat, GruCtx) {
        let t_len = xs.rows();
        let mut hs = Mat::zeros(t_len, self.hidden);
        let mut ctx = GruCtx {
            xs: xs.clone(),
            h_prev: Vec::with_capacity(t_len),
            z: Vec::with_capacity(t_len),
            r: Vec::with_capacity(t_len),
            n: Vec::with_capacity(t_len),
            rh: Vec::with_capacity(t_len),
        };
        let mut h = Mat::zeros(1, self.hidden);
        for t in 0..t_len {
            let x = xs.rows_slice(t, t + 1);
            let (zx, _) = self.wz.forward(&x);
            let (zh, _) = self.uz.forward(&h);
            let z = zx.add(&zh).map(sigmoid);
            let (rx, _) = self.wr.forward(&x);
            let (rh_lin, _) = self.ur.forward(&h);
            let r = rx.add(&rh_lin).map(sigmoid);
            let rh = r.hadamard(&h);
            let (nx, _) = self.wh.forward(&x);
            let (nh, _) = self.uh.forward(&rh);
            let n = nx.add(&nh).map(f32::tanh);
            let one_minus_z = z.map(|v| 1.0 - v);
            let new_h = one_minus_z.hadamard(&n).add(&z.hadamard(&h));
            ctx.h_prev.push(h.clone());
            ctx.z.push(z);
            ctx.r.push(r);
            ctx.n.push(n);
            ctx.rh.push(rh);
            hs.row_mut(t).copy_from_slice(new_h.row(0));
            h = new_h;
        }
        (hs, ctx)
    }

    /// Inference-only forward: the same recurrence as
    /// [`forward`](Self::forward) (bit-identical hidden states) without
    /// cloning inputs and gate activations into a BPTT context.
    pub fn infer(&self, xs: &Mat) -> Mat {
        let t_len = xs.rows();
        let mut hs = Mat::zeros(t_len, self.hidden);
        let mut h = Mat::zeros(1, self.hidden);
        for t in 0..t_len {
            let x = xs.rows_slice(t, t + 1);
            let z = self.wz.infer(&x).add(&self.uz.infer(&h)).map(sigmoid);
            let r = self.wr.infer(&x).add(&self.ur.infer(&h)).map(sigmoid);
            let rh = r.hadamard(&h);
            let n = self.wh.infer(&x).add(&self.uh.infer(&rh)).map(f32::tanh);
            let one_minus_z = z.map(|v| 1.0 - v);
            let new_h = one_minus_z.hadamard(&n).add(&z.hadamard(&h));
            hs.row_mut(t).copy_from_slice(new_h.row(0));
            h = new_h;
        }
        hs
    }

    /// BPTT over the whole sequence; `dhs` has shape `[T, hidden]`.
    pub fn backward(&self, ctx: &GruCtx, dhs: &Mat, grads: &mut Grads) -> Mat {
        let t_len = dhs.rows();
        let mut dxs = Mat::zeros(t_len, ctx.xs.cols());
        let mut carry = Mat::zeros(1, self.hidden);
        for t in (0..t_len).rev() {
            let dh = dhs.rows_slice(t, t + 1).add(&carry);
            let z = &ctx.z[t];
            let r = &ctx.r[t];
            let n = &ctx.n[t];
            let h_prev = &ctx.h_prev[t];
            let rh = &ctx.rh[t];
            let x = ctx.xs.rows_slice(t, t + 1);

            // h = (1-z)·n + z·h_prev
            let dz = dh.hadamard(&h_prev.add(&n.scale(-1.0)));
            let dn = dh.hadamard(&z.map(|v| 1.0 - v));
            let dz_pre = dz.hadamard(&z.map(|v| v * (1.0 - v)));
            let dn_pre = dn.hadamard(&n.map(|v| 1.0 - v * v));

            // n pre-activation = x·Wh + rh·Uh
            let (_, wh_ctx) = self.wh.forward(&x);
            let (_, uh_ctx) = self.uh.forward(rh);
            let dx_n = self.wh.backward(&wh_ctx, &dn_pre, grads);
            let drh = self.uh.backward(&uh_ctx, &dn_pre, grads);
            let dr = drh.hadamard(h_prev);
            let dr_pre = dr.hadamard(&r.map(|v| v * (1.0 - v)));

            let (_, wz_ctx) = self.wz.forward(&x);
            let (_, uz_ctx) = self.uz.forward(h_prev);
            let (_, wr_ctx) = self.wr.forward(&x);
            let (_, ur_ctx) = self.ur.forward(h_prev);
            let dx_z = self.wz.backward(&wz_ctx, &dz_pre, grads);
            let dh_z = self.uz.backward(&uz_ctx, &dz_pre, grads);
            let dx_r = self.wr.backward(&wr_ctx, &dr_pre, grads);
            let dh_r = self.ur.backward(&ur_ctx, &dr_pre, grads);

            let dx = dx_n.add(&dx_z).add(&dx_r);
            dxs.row_mut(t).copy_from_slice(dx.row(0));

            carry = dh
                .hadamard(z)
                .add(&drh.hadamard(r))
                .add(&dh_z)
                .add(&dh_r);
        }
        dxs
    }

    /// Visits all six projections' parameters.
    pub fn visit(&self, f: &mut dyn FnMut(&Param)) {
        self.wz.visit(f);
        self.wr.visit(f);
        self.wh.visit(f);
        self.uz.visit(f);
        self.ur.visit(f);
        self.uh.visit(f);
    }

    /// Visits all six projections' parameters mutably.
    pub fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wz.visit_mut(f);
        self.wr.visit_mut(f);
        self.wh.visit_mut(f);
        self.uz.visit_mut(f);
        self.ur.visit_mut(f);
        self.uh.visit_mut(f);
    }
}

/// An inference-only snapshot of a [`Gru`] with prepacked, fused
/// projections:
///
/// * the three input projections Wz|Wr|Wh become one `[in, 3·hidden]`
///   prepacked GEMM evaluated for **all** timesteps up front (each output
///   row's reduction is row-independent, so batching over `T` is
///   bit-identical to the per-step products);
/// * the recurrent Uz|Ur pair becomes one `[hidden, 2·hidden]` prepacked
///   GEMM per step, and Uh (which applies to `r ⊙ h`, not `h`) stays its
///   own prepacked matrix.
///
/// Gate arithmetic replicates [`Gru::forward`]'s exact op order, so
/// hidden states are bit-identical. The GRU always runs f32 — it is a
/// tiny fraction of inference time, so the int8 path does not extend here.
#[derive(Debug, Clone)]
pub struct PackedGru {
    wx: PackedB,
    bx: Vec<f32>,
    uzr: PackedB,
    bzr: Vec<f32>,
    uh: PackedB,
    bh: Vec<f32>,
    hidden: usize,
}

impl PackedGru {
    /// Snapshots `g`, fusing and prepacking its projections.
    pub fn pack(g: &Gru) -> PackedGru {
        let h = g.hidden;
        let in_dim = g.wz.in_dim();
        let mut wx = Mat::zeros(in_dim, 3 * h);
        for l in 0..in_dim {
            let row = wx.row_mut(l);
            row[..h].copy_from_slice(g.wz.weight().row(l));
            row[h..2 * h].copy_from_slice(g.wr.weight().row(l));
            row[2 * h..].copy_from_slice(g.wh.weight().row(l));
        }
        let mut bx = Vec::with_capacity(3 * h);
        bx.extend_from_slice(g.wz.bias());
        bx.extend_from_slice(g.wr.bias());
        bx.extend_from_slice(g.wh.bias());
        let mut uzr = Mat::zeros(h, 2 * h);
        for l in 0..h {
            let row = uzr.row_mut(l);
            row[..h].copy_from_slice(g.uz.weight().row(l));
            row[h..].copy_from_slice(g.ur.weight().row(l));
        }
        let mut bzr = Vec::with_capacity(2 * h);
        bzr.extend_from_slice(g.uz.bias());
        bzr.extend_from_slice(g.ur.bias());
        PackedGru {
            wx: PackedB::pack(wx.as_slice(), in_dim, 3 * h),
            bx,
            uzr: PackedB::pack(uzr.as_slice(), h, 2 * h),
            bzr,
            uh: PackedB::pack(g.uh.weight().as_slice(), h, h),
            bh: g.uh.bias().to_vec(),
            hidden: h,
        }
    }

    /// Hidden-state size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Resident bytes of the packed projections.
    pub fn bytes(&self) -> usize {
        self.wx.bytes() + self.uzr.bytes() + self.uh.bytes()
    }

    /// Runs the GRU over `xs` of shape `[T, in_dim]` — bit-identical to
    /// [`Gru::forward`]'s hidden-state output.
    pub fn infer(&self, xs: &Mat) -> Mat {
        let t_len = xs.rows();
        let hd = self.hidden;
        let gates_x = xs.matmul_prepacked(&self.wx).add_row_broadcast(&self.bx);
        let mut hs = Mat::zeros(t_len, hd);
        let mut h = Mat::zeros(1, hd);
        for t in 0..t_len {
            let zr = h.matmul_prepacked(&self.uzr).add_row_broadcast(&self.bzr);
            let gx = gates_x.row(t);
            let mut z = Mat::zeros(1, hd);
            let mut r = Mat::zeros(1, hd);
            for j in 0..hd {
                z.row_mut(0)[j] = sigmoid(gx[j] + zr.row(0)[j]);
                r.row_mut(0)[j] = sigmoid(gx[hd + j] + zr.row(0)[hd + j]);
            }
            let rh = r.hadamard(&h);
            let nh = rh.matmul_prepacked(&self.uh).add_row_broadcast(&self.bh);
            let mut n = Mat::zeros(1, hd);
            for j in 0..hd {
                n.row_mut(0)[j] = (gx[2 * hd + j] + nh.row(0)[j]).tanh();
            }
            let one_minus_z = z.map(|v| 1.0 - v);
            let new_h = one_minus_z.hadamard(&n).add(&z.hadamard(&h));
            hs.row_mut(t).copy_from_slice(new_h.row(0));
            h = new_h;
        }
        hs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(in_dim: usize, hidden: usize) -> (ParamRegistry, Gru) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut reg = ParamRegistry::new();
        let g = Gru::new(&mut reg, in_dim, hidden, &mut rng);
        (reg, g)
    }

    #[test]
    fn forward_shapes_and_state_evolution() {
        let (_, gru) = setup(3, 5);
        let xs = Mat::full(4, 3, 0.5);
        let (hs, _) = gru.forward(&xs);
        assert_eq!((hs.rows(), hs.cols()), (4, 5));
        // State must evolve step to step even with constant input.
        assert_ne!(hs.row(0), hs.row(1));
    }

    #[test]
    fn hidden_state_is_bounded() {
        let (_, gru) = setup(2, 4);
        let xs = Mat::full(50, 2, 10.0);
        let (hs, _) = gru.forward(&xs);
        for v in hs.as_slice() {
            assert!(v.abs() <= 1.0 + 1e-5, "GRU state escaped [-1, 1]: {v}");
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let (reg, gru) = setup(2, 3);
        let xs = Mat::from_rows(&[&[0.3, -0.5], &[0.8, 0.1], &[-0.2, 0.4]]);
        let loss = |xs: &Mat| gru.forward(xs).0.sum();
        let (hs, ctx) = gru.forward(&xs);
        let dhs = Mat::full(hs.rows(), hs.cols(), 1.0);
        let mut grads = Grads::new(&reg);
        let dxs = gru.backward(&ctx, &dhs, &mut grads);
        let eps = 1e-3;
        for r in 0..3 {
            for c in 0..2 {
                let mut xp = xs.clone();
                xp.set(r, c, xs.get(r, c) + eps);
                let mut xm = xs.clone();
                xm.set(r, c, xs.get(r, c) - eps);
                let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps);
                let got = dxs.get(r, c);
                assert!((fd - got).abs() < 2e-2, "[{r}][{c}]: fd={fd} got={got}");
            }
        }
    }

    #[test]
    fn weight_gradients_flow_to_recurrent_matrices() {
        let (reg, gru) = setup(2, 3);
        let xs = Mat::from_rows(&[&[0.3, -0.5], &[0.8, 0.1]]);
        let (hs, ctx) = gru.forward(&xs);
        let mut grads = Grads::new(&reg);
        gru.backward(&ctx, &Mat::full(hs.rows(), hs.cols(), 1.0), &mut grads);
        let mut nonzero = 0;
        gru.visit(&mut |p| {
            if grads.get(p.id).norm() > 0.0 {
                nonzero += 1;
            }
        });
        // All six projections (w + b each) should receive gradient; the
        // recurrent ones only via t=1, but they must be nonzero.
        assert!(nonzero >= 10, "only {nonzero} parameter tensors got gradient");
    }

    /// Ctx-free and packed inference are bit-identical to the training
    /// forward's hidden states, including at T = 0.
    #[test]
    fn infer_and_packed_match_forward_bitwise() {
        let (_, gru) = setup(3, 5);
        let packed = PackedGru::pack(&gru);
        assert_eq!(packed.hidden(), 5);
        assert!(packed.bytes() >= (3 * 15 + 5 * 10 + 25) * 4);
        let mut rng = StdRng::seed_from_u64(23);
        for &t_len in &[0usize, 1, 4, 19] {
            let mut xs = Mat::zeros(t_len, 3);
            for v in xs.as_mut_slice() {
                *v = rng.gen_range(-1.0f32..1.0);
            }
            let (want, _) = gru.forward(&xs);
            for got in [gru.infer(&xs), packed.infer(&xs)] {
                assert_eq!((got.rows(), got.cols()), (t_len, 5));
                for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "T={t_len}");
                }
            }
        }
    }
}
