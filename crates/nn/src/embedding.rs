//! Token embedding lookup.

use sns_rt::rng::StdRng;

use crate::mat::Mat;
use crate::param::{Grads, Param, ParamRegistry};

/// An embedding table mapping token ids to learned vectors.
///
/// Used twice in the Circuitformer: token embeddings over the 79-entry
/// GraphIR vocabulary and learned positional embeddings over the 512
/// positions.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: Param,
    dim: usize,
}

/// Saved forward state for [`Embedding::backward`].
#[derive(Debug, Clone)]
pub struct EmbeddingCtx {
    ids: Vec<usize>,
}

impl Embedding {
    /// Creates a table of `vocab` rows of dimension `dim`, N(0, 0.02).
    pub fn new(reg: &mut ParamRegistry, vocab: usize, dim: usize, rng: &mut StdRng) -> Self {
        let mut t = Mat::zeros(vocab, dim);
        for v in t.as_mut_slice() {
            *v = rng.normal_f32(0.02);
        }
        Embedding { table: reg.alloc(format!("embedding{vocab}x{dim}"), t), dim }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows (vocabulary size).
    pub fn vocab(&self) -> usize {
        self.table.value.rows()
    }

    /// Looks up a sequence of token ids, producing `[len, dim]`.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn forward(&self, ids: &[usize]) -> (Mat, EmbeddingCtx) {
        (self.infer(ids), EmbeddingCtx { ids: ids.to_vec() })
    }

    /// Inference-only lookup: same rows as [`forward`](Self::forward)
    /// without recording the ids for backward.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn infer(&self, ids: &[usize]) -> Mat {
        let mut out = Mat::zeros(ids.len(), self.dim);
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < self.table.value.rows(), "token id {id} out of range");
            out.row_mut(r).copy_from_slice(self.table.value.row(id));
        }
        out
    }

    /// Scatters `dy` back into the table gradient.
    pub fn backward(&self, ctx: &EmbeddingCtx, dy: &Mat, grads: &mut Grads) {
        let g = grads.get_mut(self.table.id);
        for (r, &id) in ctx.ids.iter().enumerate() {
            for (gv, dv) in g.row_mut(id).iter_mut().zip(dy.row(r)) {
                *gv += dv;
            }
        }
    }

    /// Visits the table parameter.
    pub fn visit(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.table);
    }

    /// Visits the table parameter mutably.
    pub fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_copies_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut reg = ParamRegistry::new();
        let e = Embedding::new(&mut reg, 10, 4, &mut rng);
        let (out, _) = e.forward(&[3, 3, 7]);
        assert_eq!(out.rows(), 3);
        assert_eq!(out.row(0), out.row(1));
        assert_ne!(out.row(0), out.row(2));
        assert_eq!(e.vocab(), 10);
        assert_eq!(e.dim(), 4);
    }

    #[test]
    fn backward_scatters_and_accumulates() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut reg = ParamRegistry::new();
        let e = Embedding::new(&mut reg, 5, 2, &mut rng);
        let (_, ctx) = e.forward(&[1, 1, 2]);
        let mut grads = Grads::new(&reg);
        let dy = Mat::from_rows(&[&[1.0, 0.0], &[1.0, 0.0], &[0.0, 5.0]]);
        e.backward(&ctx, &dy, &mut grads);
        let mut gid = None;
        e.visit(&mut |p| gid = Some(p.id));
        let g = grads.get(gid.unwrap());
        assert_eq!(g.row(1), &[2.0, 0.0]); // two hits on token 1
        assert_eq!(g.row(2), &[0.0, 5.0]);
        assert_eq!(g.row(0), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_token_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut reg = ParamRegistry::new();
        let e = Embedding::new(&mut reg, 3, 2, &mut rng);
        let _ = e.forward(&[3]);
    }
}
