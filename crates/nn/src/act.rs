//! Elementwise activations with exact backward passes.

use crate::mat::Mat;

/// Rectified linear unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Relu;

/// Hyperbolic tangent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tanh;

/// Logistic sigmoid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sigmoid;

/// GELU (tanh approximation, as used by Transformer FFNs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gelu;

/// Forward context for activations: the saved pre-activation input.
#[derive(Debug, Clone)]
pub struct ActCtx {
    x: Mat,
}

impl Relu {
    /// `max(0, x)`.
    pub fn forward(&self, x: &Mat) -> (Mat, ActCtx) {
        (self.infer(x), ActCtx { x: x.clone() })
    }

    /// Inference-only forward (no saved context).
    pub fn infer(&self, x: &Mat) -> Mat {
        x.map(|v| v.max(0.0))
    }

    /// Backward pass.
    pub fn backward(&self, ctx: &ActCtx, dy: &Mat) -> Mat {
        let mask = ctx.x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        dy.hadamard(&mask)
    }
}

impl Tanh {
    /// `tanh(x)`.
    pub fn forward(&self, x: &Mat) -> (Mat, ActCtx) {
        (self.infer(x), ActCtx { x: x.clone() })
    }

    /// Inference-only forward (no saved context).
    pub fn infer(&self, x: &Mat) -> Mat {
        x.map(f32::tanh)
    }

    /// Backward pass.
    pub fn backward(&self, ctx: &ActCtx, dy: &Mat) -> Mat {
        let d = ctx.x.map(|v| {
            let t = v.tanh();
            1.0 - t * t
        });
        dy.hadamard(&d)
    }
}

impl Sigmoid {
    /// `1 / (1 + e^{-x})`.
    pub fn forward(&self, x: &Mat) -> (Mat, ActCtx) {
        (self.infer(x), ActCtx { x: x.clone() })
    }

    /// Inference-only forward (no saved context).
    pub fn infer(&self, x: &Mat) -> Mat {
        x.map(sigmoid)
    }

    /// Backward pass.
    pub fn backward(&self, ctx: &ActCtx, dy: &Mat) -> Mat {
        let d = ctx.x.map(|v| {
            let s = sigmoid(v);
            s * (1.0 - s)
        });
        dy.hadamard(&d)
    }
}

/// Scalar logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)

impl Gelu {
    /// GELU via the tanh approximation.
    pub fn forward(&self, x: &Mat) -> (Mat, ActCtx) {
        (self.infer(x), ActCtx { x: x.clone() })
    }

    /// Inference-only forward (no saved context).
    pub fn infer(&self, x: &Mat) -> Mat {
        x.map(gelu)
    }

    /// Backward pass (derivative of the tanh approximation).
    pub fn backward(&self, ctx: &ActCtx, dy: &Mat) -> Mat {
        let d = ctx.x.map(gelu_deriv);
        dy.hadamard(&d)
    }
}

fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + 0.044715 * x * x * x)).tanh())
}

fn gelu_deriv(x: f32) -> f32 {
    let u = GELU_C * (x + 0.044715 * x * x * x);
    let t = u.tanh();
    let du = GELU_C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_fd(fwd: impl Fn(&Mat) -> Mat, bwd: impl Fn(&Mat, &Mat) -> Mat) {
        // Avoid x = 0 exactly: ReLU is not differentiable there.
        let x = Mat::from_rows(&[&[-2.0, -0.5, 0.05, 0.7, 3.0]]);
        let dy = Mat::from_rows(&[&[1.0, 1.0, 1.0, 1.0, 1.0]]);
        let dx = bwd(&x, &dy);
        let eps = 1e-3;
        for c in 0..5 {
            let mut xp = x.clone();
            xp.set(0, c, x.get(0, c) + eps);
            let mut xm = x.clone();
            xm.set(0, c, x.get(0, c) - eps);
            let fd = (fwd(&xp).get(0, c) - fwd(&xm).get(0, c)) / (2.0 * eps);
            assert!((fd - dx.get(0, c)).abs() < 2e-2, "col {c}: fd={fd} got={}", dx.get(0, c));
        }
    }

    #[test]
    fn relu_matches_finite_difference() {
        check_fd(
            |x| Relu.forward(x).0,
            |x, dy| {
                let (_, c) = Relu.forward(x);
                Relu.backward(&c, dy)
            },
        );
    }

    #[test]
    fn tanh_matches_finite_difference() {
        check_fd(
            |x| Tanh.forward(x).0,
            |x, dy| {
                let (_, c) = Tanh.forward(x);
                Tanh.backward(&c, dy)
            },
        );
    }

    #[test]
    fn sigmoid_matches_finite_difference() {
        check_fd(
            |x| Sigmoid.forward(x).0,
            |x, dy| {
                let (_, c) = Sigmoid.forward(x);
                Sigmoid.backward(&c, dy)
            },
        );
    }

    #[test]
    fn gelu_matches_finite_difference() {
        check_fd(
            |x| Gelu.forward(x).0,
            |x, dy| {
                let (_, c) = Gelu.forward(x);
                Gelu.backward(&c, dy)
            },
        );
    }

    #[test]
    fn gelu_known_values() {
        assert!(gelu(0.0).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!(gelu(-5.0).abs() < 1e-3);
    }
}
