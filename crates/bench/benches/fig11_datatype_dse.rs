//! **Figure 11** — DianNao design-space exploration over datatypes:
//! cheaper datatypes greatly improve area and power efficiency, and
//! beyond int16 the task accuracy does not improve — which is why the
//! original DianNao chose int16.

use sns_bench::{headline, standard_model, write_csv};
use sns_casestudies::diannao::{alexnet_like, classification_accuracy, simulate_diannao};
use sns_designs::diannao::{diannao, DataType, DianNaoParams};
use sns_netlist::parse_and_elaborate;

fn main() {
    headline("Figure 11: DianNao DSE over datatypes (Tn=16)");
    let (model, _) = standard_model();
    let layers = alexnet_like();

    println!(
        "\n{:>6} {:>12} {:>10} {:>14} {:>14} {:>10}",
        "dtype", "area um2", "power mW", "infer/s/mm2", "uJ/inference", "accuracy"
    );
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for dt in DataType::ALL {
        let p = DianNaoParams { tn: 16, datatype: dt, ..Default::default() };
        let d = diannao(&p);
        let nl = parse_and_elaborate(&d.verilog, &d.top).expect("generator output");
        let perf = simulate_diannao(&p, &layers, &nl);
        let pred = model.predict_netlist(&nl, Some(&perf.activity));
        let freq_ghz = 1000.0 / pred.timing_ps;
        let throughput = perf.throughput(freq_ghz);
        let area_eff = throughput / (pred.area_um2 / 1e6);
        let energy_uj = pred.power_mw * 1e-3 / throughput * 1e6;
        let acc = classification_accuracy(dt, 42);
        println!(
            "{:>6} {:>12.0} {:>10.3} {:>14.1} {:>14.4} {:>9.1}%",
            dt.tag(),
            pred.area_um2,
            pred.power_mw,
            area_eff,
            energy_uj,
            100.0 * acc
        );
        rows.push(format!(
            "{},{},{},{area_eff},{energy_uj},{acc}",
            dt.tag(),
            pred.area_um2,
            pred.power_mw
        ));
        results.push((dt, pred.area_um2, area_eff, acc));
    }

    // Shape checks from the paper.
    let area = |dt: DataType| results.iter().find(|r| r.0 == dt).expect("present").1;
    let acc = |dt: DataType| results.iter().find(|r| r.0 == dt).expect("present").3;
    println!("\nshape checks:");
    println!(
        "  int8 < int16 < fp32 area: {}",
        if area(DataType::Int8) < area(DataType::Int16)
            && area(DataType::Int16) < area(DataType::Fp32)
        {
            "yes (cheaper datatypes are cheaper hardware)"
        } else {
            "NO"
        }
    );
    println!(
        "  accuracy saturates at int16: int8 {:.1}% < int16 {:.1}% ~= fp32 {:.1}% : {}",
        100.0 * acc(DataType::Int8),
        100.0 * acc(DataType::Int16),
        100.0 * acc(DataType::Fp32),
        if acc(DataType::Int8) < acc(DataType::Int16)
            && (acc(DataType::Int16) - acc(DataType::Fp32)).abs() < 0.03
        {
            "yes — int16 is optimal, as the original DianNao chose"
        } else {
            "NO"
        }
    );

    write_csv(
        "fig11_datatype_dse.csv",
        "dtype,area_um2,power_mw,infer_per_s_per_mm2,uj_per_inference,accuracy",
        &rows,
    );
}
