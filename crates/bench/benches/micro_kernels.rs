//! Micro-benchmarks for the hot paths of the SNS pipeline: Verilog
//! front-end, GraphIR construction, path sampling, Circuitformer
//! inference, unit characterization, and virtual-synthesizer STA.
//!
//! Run with `cargo bench -p sns-bench --bench micro_kernels`.

use sns_bench::timing::{bench, csv_header};
use sns_rt::rng::StdRng;

use sns_circuitformer::{Circuitformer, CircuitformerConfig};
use sns_designs::cores;
use sns_graphir::{GraphIr, VocabType};
use sns_netlist::{parse_and_elaborate, parse_source};
use sns_sampler::{PathSampler, SampleConfig};
use sns_vsynth::{unit_physical, CellLibrary, SynthOptions, VirtualSynthesizer};

fn main() {
    sns_bench::headline("micro-kernels");
    let mut results = Vec::new();

    // Front end.
    let design = cores::rocket_like(32);
    results.push(bench("parse_rocket32", || {
        parse_source(&design.verilog).expect("parses")
    }));
    results.push(bench("elaborate_rocket32", || {
        parse_and_elaborate(&design.verilog, &design.top).expect("elaborates")
    }));

    // GraphIR and path sampling.
    let nl = parse_and_elaborate(&design.verilog, &design.top).expect("elaborates");
    results.push(bench("graphir_rocket32", || GraphIr::from_netlist(&nl)));
    let g = GraphIr::from_netlist(&nl);
    let sampler = PathSampler::new(SampleConfig::paper_default().with_max_paths(500));
    results.push(bench("sample_paths_rocket32_k5", || sampler.sample(&g)));

    // Circuitformer inference.
    let mut rng = StdRng::seed_from_u64(1);
    let model = Circuitformer::new(CircuitformerConfig::fast(), &mut rng);
    let short: Vec<usize> = vec![3, 40, 44, 9];
    let long: Vec<usize> = (0..64).map(|i| i % 79).collect();
    results.push(bench("circuitformer_infer_len4", || model.predict_raw(&short)));
    results.push(bench("circuitformer_infer_len64", || model.predict_raw(&long)));

    // Virtual synthesizer.
    let lib = CellLibrary::freepdk15();
    results.push(bench("unit_physical_mul32", || unit_physical(VocabType::Mul, 32, &lib)));
    let synth = VirtualSynthesizer::new(SynthOptions::default());
    results.push(bench("vsynth_rocket32_full", || synth.synthesize(&nl)));

    let rows: Vec<String> = results.iter().map(|r| r.csv_row()).collect();
    sns_bench::write_csv("micro_kernels.csv", csv_header(), &rows);
}
