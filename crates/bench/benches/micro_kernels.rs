//! Criterion micro-benchmarks for the hot paths of the SNS pipeline:
//! Verilog front-end, GraphIR construction, path sampling, Circuitformer
//! inference, unit characterization, and virtual-synthesizer STA.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

use sns_circuitformer::{Circuitformer, CircuitformerConfig};
use sns_designs::cores;
use sns_graphir::{GraphIr, VocabType};
use sns_netlist::{parse_and_elaborate, parse_source};
use sns_sampler::{PathSampler, SampleConfig};
use sns_vsynth::{unit_physical, CellLibrary, SynthOptions, VirtualSynthesizer};

fn bench_frontend(c: &mut Criterion) {
    let design = cores::rocket_like(32);
    c.bench_function("parse_rocket32", |b| {
        b.iter(|| parse_source(&design.verilog).expect("parses"))
    });
    c.bench_function("elaborate_rocket32", |b| {
        b.iter(|| parse_and_elaborate(&design.verilog, &design.top).expect("elaborates"))
    });
}

fn bench_graphir_and_sampling(c: &mut Criterion) {
    let design = cores::rocket_like(32);
    let nl = parse_and_elaborate(&design.verilog, &design.top).expect("elaborates");
    c.bench_function("graphir_rocket32", |b| b.iter(|| GraphIr::from_netlist(&nl)));
    let g = GraphIr::from_netlist(&nl);
    let sampler = PathSampler::new(SampleConfig::paper_default().with_max_paths(500));
    c.bench_function("sample_paths_rocket32_k5", |b| b.iter(|| sampler.sample(&g)));
}

fn bench_circuitformer(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let model = Circuitformer::new(CircuitformerConfig::fast(), &mut rng);
    let short: Vec<usize> = vec![3, 40, 44, 9];
    let long: Vec<usize> = (0..64).map(|i| i % 79).collect();
    c.bench_function("circuitformer_infer_len4", |b| b.iter(|| model.predict_raw(&short)));
    c.bench_function("circuitformer_infer_len64", |b| b.iter(|| model.predict_raw(&long)));
}

fn bench_vsynth(c: &mut Criterion) {
    let lib = CellLibrary::freepdk15();
    c.bench_function("unit_physical_mul32", |b| {
        b.iter(|| unit_physical(VocabType::Mul, 32, &lib))
    });
    let design = cores::rocket_like(32);
    let nl = parse_and_elaborate(&design.verilog, &design.top).expect("elaborates");
    let synth = VirtualSynthesizer::new(SynthOptions::default());
    c.bench_function("vsynth_rocket32_full", |b| b.iter(|| synth.synthesize(&nl)));
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_frontend, bench_graphir_and_sampling, bench_circuitformer, bench_vsynth
}
criterion_main!(kernels);
