//! Micro-benchmarks for the hot paths of the SNS pipeline: Verilog
//! front-end, GraphIR construction, path sampling, Circuitformer
//! inference, unit characterization, and virtual-synthesizer STA.
//!
//! Run with `cargo bench -p sns-bench --bench micro_kernels`.

use sns_bench::timing::{bench, csv_header, results_to_json};
use sns_rt::json::Json;
use sns_rt::rng::StdRng;

use sns_circuitformer::{Circuitformer, CircuitformerConfig};
use sns_designs::cores;
use sns_graphir::{GraphIr, VocabType};
use sns_netlist::{parse_and_elaborate, parse_source};
use sns_nn::Mat;
use sns_sampler::{PathSampler, SampleConfig};
use sns_vsynth::{unit_physical, CellLibrary, SynthOptions, VirtualSynthesizer};

fn rand_mat(rng: &mut StdRng, rows: usize, cols: usize) -> Mat {
    let mut m = Mat::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-1.0f32..1.0);
    }
    m
}

fn main() {
    sns_bench::headline("micro-kernels");
    let mut results = Vec::new();

    // GEMM kernel layer: blocked (with small-m dispatch) and prepacked-B
    // vs. the retained naive reference on the shapes the Circuitformer
    // actually hits — [m,128] activations against the 128×128 Q/K/V/O
    // projections and the 128×512 (fast) / 128×2304 (paper) FFN
    // expansion. m ≤ 16 is the serving regime (small micro-batches, ECO
    // recomputes) where per-call B-packing used to dominate; the larger
    // m keep the training-shape trajectory visible.
    let mut gemm_rng = StdRng::seed_from_u64(2);
    let mut speedup_rows = Vec::new();
    for &t in &[1usize, 4, 8, 16, 64, 256, 512] {
        for &n in &[128usize, 512, 2304] {
            let a = rand_mat(&mut gemm_rng, t, 128);
            let b = rand_mat(&mut gemm_rng, 128, n);
            let pb = sns_nn::PackedB::pack(b.as_slice(), 128, n);
            let blocked = bench(&format!("gemm_blocked_{t}x128x{n}"), || a.matmul(&b));
            let prepacked =
                bench(&format!("gemm_prepacked_{t}x128x{n}"), || a.matmul_prepacked(&pb));
            let naive = bench(&format!("gemm_naive_{t}x128x{n}"), || a.matmul_ref(&b));
            let speedup = naive.min.as_nanos() as f64 / blocked.min.as_nanos() as f64;
            let prepacked_speedup = naive.min.as_nanos() as f64 / prepacked.min.as_nanos() as f64;
            println!(
                "    -> {t}x128x{n}: blocked {speedup:.2}x, prepacked {prepacked_speedup:.2}x \
                 the naive kernel"
            );
            speedup_rows.push(Json::obj(vec![
                ("m", Json::UInt(t as u64)),
                ("k", Json::UInt(128)),
                ("n", Json::UInt(n as u64)),
                ("speedup", Json::Num(speedup)),
                ("prepacked_speedup", Json::Num(prepacked_speedup)),
            ]));
            results.push(blocked);
            results.push(prepacked);
            results.push(naive);
        }
    }

    // The gated int8 path on the serving shape (informational — the f32
    // prepacked path is the production one).
    {
        let a = rand_mat(&mut gemm_rng, 16, 128);
        let b = rand_mat(&mut gemm_rng, 128, 2304);
        let qb = sns_nn::PackedBInt8::pack(b.as_slice(), 128, 2304);
        results.push(bench("gemm_int8_16x128x2304", || a.matmul_prepacked_int8(&qb)));
    }

    // Front end.
    let design = cores::rocket_like(32);
    results.push(bench("parse_rocket32", || {
        parse_source(&design.verilog).expect("parses")
    }));
    results.push(bench("elaborate_rocket32", || {
        parse_and_elaborate(&design.verilog, &design.top).expect("elaborates")
    }));

    // GraphIR and path sampling.
    let nl = parse_and_elaborate(&design.verilog, &design.top).expect("elaborates");
    results.push(bench("graphir_rocket32", || GraphIr::from_netlist(&nl)));
    let g = GraphIr::from_netlist(&nl);
    let sampler = PathSampler::new(SampleConfig::paper_default().with_max_paths(500));
    results.push(bench("sample_paths_rocket32_k5", || sampler.sample(&g)));

    // Circuitformer inference.
    let mut rng = StdRng::seed_from_u64(1);
    let model = Circuitformer::new(CircuitformerConfig::fast(), &mut rng);
    let short: Vec<usize> = vec![3, 40, 44, 9];
    let long: Vec<usize> = (0..64).map(|i| i % 79).collect();
    results.push(bench("circuitformer_infer_len4", || model.predict_raw(&short)));
    results.push(bench("circuitformer_infer_len64", || model.predict_raw(&long)));
    // The end-to-end serving unit: one path through the prepacked
    // fused-QKV/tiled-attention batch path (what a cache-miss recompute
    // or an ECO invalidation actually costs).
    results.push(bench("circuitformer_single_path", || model.predict_batch(&[long.as_slice()])));

    // Batched inference: 32 paths through one packed forward vs. 32
    // sequential predict_raw calls (identical outputs, bigger GEMMs). Short
    // paths are the representative case — sampled circuit paths are mostly
    // a handful of tokens, where per-call overhead dominates; at length 64
    // the GEMMs are already tall enough that packing is roughly a wash.
    let mut batch_speedups = Vec::new();
    for &len in &[8usize, 64] {
        let batch_paths: Vec<Vec<usize>> =
            (0..32).map(|s| (0..len).map(|i| (s * 7 + i) % 79).collect()).collect();
        let batch_refs: Vec<&[usize]> = batch_paths.iter().map(|p| p.as_slice()).collect();
        let batched =
            bench(&format!("circuitformer_batch32_len{len}"), || model.predict_batch(&batch_refs));
        let sequential = bench(&format!("circuitformer_seq32_len{len}"), || {
            batch_refs.iter().map(|p| model.predict_raw(p)).collect::<Vec<_>>()
        });
        let speedup = sequential.min.as_nanos() as f64 / batched.min.as_nanos() as f64;
        println!("    -> len-{len}: batch-32 packed forward is {speedup:.2}x sequential predict_raw");
        batch_speedups.push(Json::obj(vec![
            ("len", Json::UInt(len as u64)),
            ("batch", Json::UInt(32)),
            ("speedup_vs_sequential", Json::Num(speedup)),
        ]));
        results.push(batched);
        results.push(sequential);
    }

    // Virtual synthesizer.
    let lib = CellLibrary::freepdk15();
    results.push(bench("unit_physical_mul32", || unit_physical(VocabType::Mul, 32, &lib)));
    let synth = VirtualSynthesizer::new(SynthOptions::default());
    results.push(bench("vsynth_rocket32_full", || synth.synthesize(&nl)));

    let rows: Vec<String> = results.iter().map(|r| r.csv_row()).collect();
    sns_bench::write_csv("micro_kernels.csv", csv_header(), &rows);

    // Machine-readable artifact at the repo root so the kernel-perf
    // trajectory is tracked across PRs.
    let mut doc = results_to_json("micro_kernels", &results);
    if let Json::Obj(fields) = &mut doc {
        fields.push(("gemm_speedups".to_string(), Json::Arr(speedup_rows)));
        fields.push(("batch_speedups".to_string(), Json::Arr(batch_speedups)));
    }
    sns_bench::write_root_json("BENCH_kernels.json", &doc);
}
