//! **Figure 7** — SNS runtime vs. synthesizer runtime per design.
//!
//! The baseline is the virtual synthesizer at "DC effort" (a long
//! timing-closure loop); SNS is the trained model's full prediction flow
//! (parse → GraphIR → sample → Circuitformer → aggregate). The paper's
//! absolute 760× does not transfer — our baseline is orders of magnitude
//! faster than Synopsys DC — but the *shape* (speedup grows with design
//! size; the 16-core stencil shows the largest gap) is what this bench
//! reports. See EXPERIMENTS.md.

use std::collections::HashSet;
use std::time::Instant;

use sns_bench::{headline, standard_model, write_csv, write_root_json};
use sns_rt::json::Json;
use sns_designs::{misc, mlaccel, nonlinear, Design};
use sns_graphir::GraphIr;
use sns_netlist::parse_and_elaborate;
use sns_sampler::{PathSampler, SampleConfig};
use sns_vsynth::{SynthOptions, VirtualSynthesizer};

fn dc_effort() -> SynthOptions {
    SynthOptions { sizing_iterations: 50, ..SynthOptions::default() }
}

fn main() {
    headline("Figure 7: SNS runtime vs synthesizer runtime");
    let (model, dataset) = standard_model();

    // The paper highlights: a small lookup table, an in-order core, and a
    // large 16-core FP stencil accelerator. Use the catalog plus those
    // highlights (the large ones are extra, not in the training set).
    let mut designs: Vec<Design> = dataset.entries.iter().map(|e| e.design.clone()).collect();
    designs.push(mlaccel::systolic_array(12, 16));
    designs.push(misc::stencil2d(8, 32));
    designs.push(misc::stencil2d(16, 32));
    let highlights = [
        nonlinear::lut(128, 8).name,
        "sodor_32".to_string(),
        misc::stencil2d(16, 32).name,
    ];

    let synth = VirtualSynthesizer::new(dc_effort());
    println!(
        "\n{:<26} {:>10} {:>12} {:>12} {:>9}",
        "design", "gates", "synth ms", "sns ms", "speedup"
    );
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut sized: Vec<(u64, f64)> = Vec::new();
    for d in &designs {
        let nl = parse_and_elaborate(&d.verilog, &d.top).expect("catalog design");
        let report = synth.synthesize(&nl);
        let t0 = Instant::now();
        let _pred = model.predict_netlist(&nl, None);
        let sns_ms = t0.elapsed().as_secs_f64() * 1e3;
        let synth_ms = report.runtime.as_secs_f64() * 1e3;
        let speedup = synth_ms / sns_ms;
        speedups.push(speedup);
        sized.push((report.gate_count, speedup));
        let mark = if highlights.contains(&d.name) { "  <-- paper highlight" } else { "" };
        println!(
            "{:<26} {:>10} {:>12.2} {:>12.2} {:>8.2}x{mark}",
            d.name, report.gate_count, synth_ms, sns_ms, speedup
        );
        rows.push(format!("{},{},{synth_ms},{sns_ms},{speedup}", d.name, report.gate_count));
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    println!("\naverage speedup: {avg:.1}x (paper, vs Synopsys DC: 760x)");

    // Shape check: speedup should grow with design size.
    sized.sort_by_key(|&(g, _)| g);
    let small_avg: f64 =
        sized[..sized.len() / 3].iter().map(|&(_, s)| s).sum::<f64>() / (sized.len() / 3) as f64;
    let large_avg: f64 = sized[2 * sized.len() / 3..].iter().map(|&(_, s)| s).sum::<f64>()
        / (sized.len() - 2 * sized.len() / 3) as f64;
    println!(
        "shape: mean speedup small third {small_avg:.2}x vs large third {large_avg:.2}x — {}",
        if large_avg > small_avg {
            "larger designs benefit more (matches the paper)"
        } else {
            "no size trend at this scale"
        }
    );
    write_csv("fig7_runtime.csv", "design,gates,synth_ms,sns_ms,speedup", &rows);

    // ---- Thread scaling of the parallel path-inference stage ----
    // Unique token sequences fan out across the `sns_rt::pool` workers
    // (`SNS_THREADS`); the reduction is serial, so results are
    // bit-identical at every thread count. The BOOM-like core is the
    // least regular design in the suite (>1k unique sequences), so it
    // exercises the fan-out rather than the cache.
    let d = sns_designs::boomlike::boom_like(&Default::default());
    let nl = parse_and_elaborate(&d.verilog, &d.top).expect("boom design");
    let graph = GraphIr::from_netlist(&nl);
    let paths =
        PathSampler::new(SampleConfig::paper_default().with_max_paths(30_000)).sample(&graph);
    let unique: HashSet<Vec<usize>> = paths
        .iter()
        .map(|p| p.token_ids(&graph, &sns_graphir::Vocab::new()))
        .collect();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "\nthread scaling on {}: {} paths, {} unique token sequences, {} core(s)",
        d.name,
        paths.len(),
        unique.len(),
        cores
    );
    if cores < 2 {
        println!("  (single-core machine: speedups are bounded at ~1x here;");
        println!("   the pool still runs and results stay bit-identical)");
    }
    let mut scale_rows = Vec::new();
    let mut baseline_ms = 0.0f64;
    let mut baseline_aggs = None;
    for threads in [1usize, 2, 4, 8] {
        std::env::set_var("SNS_THREADS", threads.to_string());
        model.clear_cache();
        let t0 = Instant::now();
        let (aggs, critical) = model.path_aggregates(&graph, &paths, None);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        match &baseline_aggs {
            None => {
                baseline_ms = ms;
                baseline_aggs = Some((aggs, critical));
            }
            Some((base, base_crit)) => {
                assert_eq!(*base, aggs, "thread count changed the aggregates");
                assert_eq!(*base_crit, critical, "thread count changed the critical path");
            }
        }
        println!(
            "  SNS_THREADS={threads}: {ms:>9.1} ms  ({:.2}x vs 1 thread)",
            baseline_ms / ms
        );
        scale_rows.push(format!("{threads},{ms},{}", baseline_ms / ms));
    }
    std::env::remove_var("SNS_THREADS");
    write_csv("fig7_thread_scaling.csv", "threads,path_aggregates_ms,speedup", &scale_rows);

    // ---- Batch scaling of the packed Circuitformer forward ----
    // `SNS_BATCH` controls how many same-length sequences share one packed
    // forward pass (one set of tall GEMMs instead of many short ones).
    // Predictions are bit-identical at every batch size — asserted below —
    // so batching is purely a throughput knob, even on one thread.
    println!("\nbatch scaling on {} (SNS_THREADS=1):", d.name);
    std::env::set_var("SNS_THREADS", "1");
    let mut batch_rows = Vec::new();
    let mut batch_json = Vec::new();
    let mut batch1_ms = 0.0f64;
    let mut batch_base = None;
    for batch in [1usize, 4, 32] {
        std::env::set_var("SNS_BATCH", batch.to_string());
        model.clear_cache();
        let t0 = Instant::now();
        let (aggs, critical) = model.path_aggregates(&graph, &paths, None);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        match &batch_base {
            None => {
                batch1_ms = ms;
                batch_base = Some((aggs, critical));
            }
            Some((base, base_crit)) => {
                assert_eq!(*base, aggs, "batch size changed the aggregates");
                assert_eq!(*base_crit, critical, "batch size changed the critical path");
            }
        }
        let paths_per_s = unique.len() as f64 / (ms / 1e3);
        println!(
            "  SNS_BATCH={batch:<3}: {ms:>9.1} ms  {paths_per_s:>9.0} unique paths/s  ({:.2}x vs batch 1)",
            batch1_ms / ms
        );
        batch_rows.push(format!("{batch},{ms},{paths_per_s},{}", batch1_ms / ms));
        batch_json.push(Json::obj(vec![
            ("batch", Json::Int(batch as i64)),
            ("path_aggregates_ms", Json::Num(ms)),
            ("unique_paths_per_s", Json::Num(paths_per_s)),
            ("speedup_vs_batch1", Json::Num(batch1_ms / ms)),
        ]));
    }
    std::env::remove_var("SNS_BATCH");
    std::env::remove_var("SNS_THREADS");
    write_csv("fig7_batch_scaling.csv", "batch,path_aggregates_ms,paths_per_s,speedup", &batch_rows);

    let design_json: Vec<Json> = sized
        .iter()
        .map(|&(gates, speedup)| {
            Json::obj(vec![
                ("gates", Json::UInt(gates)),
                ("speedup_vs_synth", Json::Num(speedup)),
            ])
        })
        .collect();
    write_root_json(
        "BENCH_runtime.json",
        &Json::obj(vec![
            ("suite", Json::Str("fig7_runtime".to_string())),
            ("designs", Json::Int(designs.len() as i64)),
            ("avg_speedup_vs_synth", Json::Num(avg)),
            ("per_design", Json::Arr(design_json)),
            ("batch_scaling", Json::Arr(batch_json)),
        ]),
    );
}
