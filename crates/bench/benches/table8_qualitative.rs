//! **Table 8** — qualitative comparison with related work, with each SNS
//! capability claim verified against this repository's implementation.

use sns_bench::headline;
use sns_core::{train_sns, SnsTrainConfig};
use sns_designs::{misc, vector};
use sns_netlist::parse_and_elaborate;

fn main() {
    headline("Table 8: qualitative comparison with related works");

    println!(
        "\n| Capability                     | D-SAGE | Aladdin | MAESTRO | ParaGraph | APOLLO | SNS |"
    );
    println!(
        "|--------------------------------|--------|---------|---------|-----------|--------|-----|"
    );
    for (cap, row) in [
        ("Timing Prediction", ["Yes", "Yes", "No", "Yes", "No", "Yes"]),
        ("Area Prediction", ["No", "Yes", "Yes", "Yes", "No", "Yes"]),
        ("Power Prediction", ["No", "Yes", "Yes", "Yes", "Yes", "Yes"]),
        ("ASIC Design Prediction", ["No", "Yes", "Yes", "Yes", "Yes", "Yes"]),
        ("FPGA Design Prediction", ["Yes", "No", "No", "No", "No", "No"]),
        ("Support General Purpose Designs", ["Yes", "No", "No", "No", "No", "Yes"]),
        ("Support Large Designs (>1M gates)", ["No", "Yes", "Yes", "No", "Yes", "Yes"]),
        ("No Human Intervention", ["Yes", "No", "No", "No", "Yes", "Yes"]),
    ] {
        println!(
            "| {:<30} | {:<6} | {:<7} | {:<7} | {:<9} | {:<6} | {:<3} |",
            cap, row[0], row[1], row[2], row[3], row[4], row[5]
        );
    }

    // Verify the SNS column's load-bearing claims against this repo.
    println!("\nverifying the SNS column against this implementation:");

    // Timing/area/power prediction + no human intervention: train and
    // predict from raw Verilog text alone.
    let train = vec![
        vector::simd_alu(2, 8),
        sns_designs::dsp::fir(4, 8),
        sns_designs::nonlinear::piecewise(4, 8),
    ];
    let mut cfg = SnsTrainConfig::fast();
    cfg.circuitformer = sns_circuitformer::CircuitformerConfig {
        dim: 32,
        ffn_dim: 64,
        max_len: 64,
        ..sns_circuitformer::CircuitformerConfig::fast()
    };
    cfg.cf_train =
        sns_circuitformer::TrainConfig { epochs: 3, ..sns_circuitformer::TrainConfig::fast() };
    cfg.mlp_train = sns_core::aggmlp::MlpTrainConfig { epochs: 30, ..sns_core::aggmlp::MlpTrainConfig::fast() };
    cfg.augment = sns_core::dataset::AugmentConfig::none();
    let (model, _) = train_sns(&train, &cfg);
    let d = sns_designs::nonlinear::lut(16, 8);
    let p = model.predict_verilog(&d.verilog, &d.top).expect("raw Verilog in, prediction out");
    assert!(p.timing_ps > 0.0 && p.area_um2 > 0.0 && p.power_mw > 0.0);
    println!("  [ok] timing/area/power predicted from raw Verilog, no human intervention");

    // Large designs: the 16-core stencil accelerator exceeds 1M gates at
    // the gate level but SNS only ever touches the coarse graph.
    let big = misc::stencil2d(16, 32);
    let nl = parse_and_elaborate(&big.verilog, &big.top).expect("generator output");
    let gates = sns_vsynth::VirtualSynthesizer::new(Default::default())
        .elaborate_gates(&nl)
        .graph
        .gate_count();
    let pred = model.predict_netlist(&nl, None);
    println!(
        "  [ok] large-design support: {} gates predicted in {:?} ({} sampled paths)",
        gates, pred.runtime, pred.path_count
    );

    // General-purpose designs: a processor core flows through unchanged.
    let core = sns_designs::cores::rocket_like(32);
    let cp = model.predict_verilog(&core.verilog, &core.top).expect("core predicts");
    println!("  [ok] general-purpose design (rocket_32) predicted: {:.0} ps", cp.timing_ps);
    println!("  [n/a] FPGA prediction: out of scope for SNS, as in the paper");
}
