//! **Table 7** — SNS prediction accuracy (RRSE / MAEP) at the 50 % and
//! 30 % training splits, 2-fold cross-validated, compared against the
//! D-SAGE reference point. Also writes the Figure 6 scatter data.

use sns_bench::{bench_train_config, headline, labeled_catalog, write_csv};
use sns_core::eval::{cross_validate, evaluate_split};

fn main() {
    headline("Table 7: evaluation accuracy (lower is better) + Figure 6 data");
    let dataset = labeled_catalog();
    let config = bench_train_config();

    println!("\nrunning 2-fold cross validation (50% split)...");
    let cv50 = cross_validate(&dataset, &config, 42);
    println!("running 30%/70% split...");
    let cv30 = evaluate_split(&dataset, 0.3, &config, 42);

    println!("\n| SNS Prediction Error | 50% train | 30% train | D-SAGE |");
    println!("|----------------------|-----------|-----------|--------|");
    println!(
        "| Timing RRSE          | {:>9.2} | {:>9.2} | 0.83   |  (paper: 0.67 / 0.82)",
        cv50.rrse[0], cv30.rrse[0]
    );
    println!(
        "| Power  RRSE          | {:>9.2} | {:>9.2} | -      |  (paper: 0.60 / 1.02)",
        cv50.rrse[2], cv30.rrse[2]
    );
    println!(
        "| Area   RRSE          | {:>9.2} | {:>9.2} | -      |  (paper: 0.22 / 0.26)",
        cv50.rrse[1], cv30.rrse[1]
    );
    println!(
        "| Timing MAEP          | {:>8.2}% | {:>8.2}% | -      |  (paper: 38.00% / 61.46%)",
        cv50.maep[0], cv30.maep[0]
    );
    println!(
        "| Power  MAEP          | {:>8.2}% | {:>8.2}% | -      |  (paper: 48.72% / 71.35%)",
        cv50.maep[2], cv30.maep[2]
    );
    println!(
        "| Area   MAEP          | {:>8.2}% | {:>8.2}% | -      |  (paper: 54.57% / 52.02%)",
        cv50.maep[1], cv30.maep[1]
    );
    println!(
        "\nheadline mean RRSE (50% split): {:.4}   (paper abstract: 0.4998)",
        cv50.mean_rrse()
    );

    // Shape checks the paper's Table 7 exhibits.
    let mut notes = Vec::new();
    if cv50.rrse[1] <= cv50.rrse[0] && cv50.rrse[1] <= cv50.rrse[2] {
        notes.push("area is the easiest target (matches the paper)");
    }
    if cv30.rrse[0] >= cv50.rrse[0] {
        notes.push("timing degrades with less training data (matches the paper)");
    }
    for n in notes {
        println!("  shape: {n}");
    }

    // Figure 6 scatter artifact (consumed by fig6_accuracy_scatter).
    let rows: Vec<String> = cv50
        .points
        .iter()
        .map(|p| {
            format!(
                "{},{},{},{},{},{},{}",
                p.name, p.truth[0], p.pred[0], p.truth[1], p.pred[1], p.truth[2], p.pred[2]
            )
        })
        .collect();
    write_csv(
        "fig6_scatter.csv",
        "design,timing_truth_ps,timing_pred_ps,area_truth_um2,area_pred_um2,power_truth_mw,power_pred_mw",
        &rows,
    );
    let t7 = vec![
        format!("timing_rrse,{},{}", cv50.rrse[0], cv30.rrse[0]),
        format!("power_rrse,{},{}", cv50.rrse[2], cv30.rrse[2]),
        format!("area_rrse,{},{}", cv50.rrse[1], cv30.rrse[1]),
        format!("timing_maep,{},{}", cv50.maep[0], cv30.maep[0]),
        format!("power_maep,{},{}", cv50.maep[2], cv30.maep[2]),
        format!("area_maep,{},{}", cv50.maep[1], cv30.maep[1]),
        format!("mean_rrse_50,{},", cv50.mean_rrse()),
    ];
    write_csv("table7_accuracy.csv", "metric,split50,split30", &t7);
}
