//! **Figure 10** — DianNao design-space exploration over Tn ∈ {4,8,16,32}:
//! area/power rise with Tn while area efficiency (throughput per area) and
//! energy per inference are both best at Tn = 16, explaining the original
//! DianNao choice.

use sns_bench::{headline, standard_model, write_csv};
use sns_casestudies::diannao::{alexnet_like, simulate_diannao};
use sns_designs::diannao::{diannao, DianNaoParams};
use sns_netlist::parse_and_elaborate;

fn main() {
    headline("Figure 10: DianNao DSE over Tn (int16)");
    let (model, _) = standard_model();
    let layers = alexnet_like();

    println!(
        "\n{:>4} {:>12} {:>10} {:>10} {:>14} {:>14}",
        "Tn", "area um2", "power mW", "GHz", "infer/s/mm2", "uJ/inference"
    );
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for tn in [4u32, 8, 16, 32] {
        let p = DianNaoParams { tn, ..Default::default() };
        let d = diannao(&p);
        let nl = parse_and_elaborate(&d.verilog, &d.top).expect("generator output");
        let perf = simulate_diannao(&p, &layers, &nl);
        let pred = model.predict_netlist(&nl, Some(&perf.activity));
        let freq_ghz = 1000.0 / pred.timing_ps;
        let throughput = perf.throughput(freq_ghz); // inferences/s
        let area_mm2 = pred.area_um2 / 1e6;
        let area_eff = throughput / area_mm2;
        let energy_uj = pred.power_mw * 1e-3 / throughput * 1e6;
        println!(
            "{:>4} {:>12.0} {:>10.3} {:>10.2} {:>14.1} {:>14.4}",
            tn, pred.area_um2, pred.power_mw, freq_ghz, area_eff, energy_uj
        );
        rows.push(format!(
            "{tn},{},{},{freq_ghz},{area_eff},{energy_uj}",
            pred.area_um2, pred.power_mw
        ));
        results.push((tn, pred.area_um2, pred.power_mw, area_eff, energy_uj));
    }

    // Shape checks from the paper.
    let areas: Vec<f64> = results.iter().map(|r| r.1).collect();
    let monotone_area = areas.windows(2).all(|w| w[1] > w[0]);
    println!(
        "\nshape: area increases with Tn: {}",
        if monotone_area { "yes (matches Figure 10a)" } else { "NO" }
    );
    let best_eff = results
        .iter()
        .max_by(|a, b| a.3.partial_cmp(&b.3).expect("finite"))
        .expect("nonempty");
    let best_energy = results
        .iter()
        .min_by(|a, b| a.4.partial_cmp(&b.4).expect("finite"))
        .expect("nonempty");
    println!(
        "shape: best area efficiency at Tn={} (paper: 16); lowest energy/inference at Tn={} (paper: 16)",
        best_eff.0, best_energy.0
    );
    println!("(the original DianNao design — the red dot in Figure 10 — chose Tn = 16)");

    write_csv(
        "fig10_tn_dse.csv",
        "tn,area_um2,power_mw,freq_ghz,infer_per_s_per_mm2,uj_per_inference",
        &rows,
    );
}
