//! **Figure 6** — predicted vs. ground-truth scatter for area, power and
//! timing. Consumes the cross-validation artifact written by
//! `table7_accuracy` if present (to avoid re-training), otherwise runs its
//! own 2-fold cross validation, then renders ASCII log-log scatter plots.

use sns_bench::{bench_train_config, headline, labeled_catalog, out_dir, write_csv};
use sns_core::eval::cross_validate;

struct Point {
    truth: [f64; 3],
    pred: [f64; 3],
}

fn load_cached() -> Option<Vec<Point>> {
    let path = out_dir().join("fig6_scatter.csv");
    let text = std::fs::read_to_string(path).ok()?;
    let mut out = Vec::new();
    for line in text.lines().skip(1) {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 7 {
            return None;
        }
        let v = |i: usize| f[i].parse::<f64>().ok();
        out.push(Point {
            truth: [v(1)?, v(3)?, v(5)?],
            pred: [v(2)?, v(4)?, v(6)?],
        });
    }
    (!out.is_empty()).then_some(out)
}

/// Renders one log-log ASCII scatter with the x = y diagonal.
fn plot(name: &str, unit: &str, pts: &[(f64, f64)]) {
    const W: usize = 48;
    const H: usize = 16;
    let lo = pts
        .iter()
        .flat_map(|&(a, b)| [a, b])
        .fold(f64::INFINITY, f64::min)
        .max(1e-9);
    let hi = pts.iter().flat_map(|&(a, b)| [a, b]).fold(0.0f64, f64::max);
    let (llo, lhi) = (lo.ln(), (hi * 1.01).ln());
    let scale = |v: f64| ((v.ln() - llo) / (lhi - llo)).clamp(0.0, 1.0);
    let mut grid = vec![vec![' '; W]; H];
    // Diagonal.
    for c in 0..W {
        let r = H - 1 - (c * (H - 1)) / (W - 1);
        grid[r][c] = '.';
    }
    for &(truth, pred) in pts {
        let c = (scale(truth) * (W - 1) as f64).round() as usize;
        let r = H - 1 - (scale(pred) * (H - 1) as f64).round() as usize;
        grid[r][c] = 'o';
    }
    println!("\n  {name} — predicted (y) vs ground truth (x), log-log [{unit}]");
    for row in grid {
        println!("  |{}|", row.iter().collect::<String>());
    }
    println!("  (points on the dotted diagonal are perfect predictions)");
}

fn main() {
    headline("Figure 6: SNS prediction accuracy scatter");
    let points = match load_cached() {
        Some(p) => {
            println!("\nusing cached cross-validation artifact from table7_accuracy");
            p
        }
        None => {
            println!("\nno cached artifact — running 2-fold cross validation...");
            let dataset = labeled_catalog();
            let cv = cross_validate(&dataset, &bench_train_config(), 42);
            let rows: Vec<String> = cv
                .points
                .iter()
                .map(|p| {
                    format!(
                        "{},{},{},{},{},{},{}",
                        p.name, p.truth[0], p.pred[0], p.truth[1], p.pred[1], p.truth[2],
                        p.pred[2]
                    )
                })
                .collect();
            write_csv(
                "fig6_scatter.csv",
                "design,timing_truth_ps,timing_pred_ps,area_truth_um2,area_pred_um2,power_truth_mw,power_pred_mw",
                &rows,
            );
            cv.points
                .iter()
                .map(|p| Point { truth: p.truth, pred: p.pred })
                .collect()
        }
    };

    for (d, name, unit) in [(1usize, "Area", "um2"), (2, "Power", "mW"), (0, "Timing", "ps")] {
        let pts: Vec<(f64, f64)> = points.iter().map(|p| (p.truth[d], p.pred[d])).collect();
        plot(name, unit, &pts);
        // Fraction within 2x of the diagonal — the paper's qualitative
        // "few hard-to-predict designs" claim.
        let within: usize = pts
            .iter()
            .filter(|&&(t, p)| p > 0.0 && t > 0.0 && (p / t).max(t / p) < 2.0)
            .count();
        println!("  within 2x of truth: {}/{}", within, pts.len());
    }
}
