//! **Figure 8 + Tables 10/11** — the BOOM design-space exploration:
//! sweep the Table 10 grid with SNS, score CoreMark with the performance
//! model, verify a random sample against the virtual synthesizer, and
//! pick the HighPerf / PowerEff / AreaEff Pareto designs.
//!
//! The full 2592-point grid runs with `SNS_PAPER=1`; the default strides
//! the grid down to ~324 points for a single-core box. Set
//! `SNS_BOOM_STRIDE=n` to override.

use sns_rt::rng::{SliceRandom, StdRng};

use sns_bench::{headline, paper_scale, standard_model, write_csv};
use sns_casestudies::boom::{coremark_score, pareto_front, BoomDsePoint};
use sns_core::metrics::maep;
use sns_designs::boomlike::{boom_like, BoomParams};
use sns_netlist::parse_and_elaborate;
use sns_vsynth::{SynthOptions, VirtualSynthesizer};

fn main() {
    headline("Figure 8 / Tables 10-11: BOOM design space exploration");
    let (model, _) = standard_model();

    let grid = BoomParams::grid();
    println!("\nTable 10 grid: {} configurations", grid.len());
    let stride: usize = std::env::var("SNS_BOOM_STRIDE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if paper_scale() { 1 } else { 8 });
    let subset: Vec<&BoomParams> = grid.iter().step_by(stride).collect();
    println!("exploring {} configurations (stride {stride})...", subset.len());

    let t0 = std::time::Instant::now();
    let mut points = Vec::with_capacity(subset.len());
    for (i, p) in subset.iter().enumerate() {
        let d = boom_like(p);
        let nl = parse_and_elaborate(&d.verilog, &d.top).expect("generator output");
        let pred = model.predict_netlist(&nl, None);
        let freq_ghz = 1000.0 / pred.timing_ps;
        points.push(BoomDsePoint {
            performance: coremark_score(p) * freq_ghz,
            power_mw: pred.power_mw,
            area_um2: pred.area_um2,
            timing_ps: pred.timing_ps,
            params: (*p).clone(),
        });
        if (i + 1) % 50 == 0 {
            println!("  {}/{} ({:.1?} elapsed)", i + 1, subset.len(), t0.elapsed());
        }
    }
    println!(
        "DSE of {} designs took {:.1?} (paper: 2592 designs in 2.1 h; DC would need ~45 days)",
        subset.len(),
        t0.elapsed()
    );
    let max_perf = points.iter().map(|p| p.performance).fold(0.0, f64::max);
    for p in &mut points {
        p.performance /= max_perf;
    }

    // Pareto picks (Table 11 analogue).
    let perf_power = pareto_front(&points, |p| p.performance, |p| p.power_mw);
    let perf_area = pareto_front(&points, |p| p.performance, |p| p.area_um2);
    let high_perf = &points[*perf_power.last().expect("nonempty front")];
    let power_eff = perf_power
        .iter()
        .map(|&i| &points[i])
        .max_by(|a, b| {
            (a.performance / a.power_mw)
                .partial_cmp(&(b.performance / b.power_mw))
                .expect("finite")
        })
        .expect("nonempty");
    let area_eff = perf_area
        .iter()
        .map(|&i| &points[i])
        .max_by(|a, b| {
            (a.performance / a.area_um2)
                .partial_cmp(&(b.performance / b.area_um2))
                .expect("finite")
        })
        .expect("nonempty");

    println!("\nTable 11 (selected configurations):");
    println!("{:<20} {:>10} {:>10} {:>10}", "parameter", "HighPerf", "PowerEff", "AreaEff");
    let rows: Vec<(&str, Box<dyn Fn(&BoomParams) -> String>)> = vec![
        ("Branch Predictor", Box::new(|p: &BoomParams| p.predictor.tag().to_string())),
        ("Core Width", Box::new(|p| p.core_width.to_string())),
        ("Memory Ports", Box::new(|p| p.mem_ports.to_string())),
        ("Fetch Width", Box::new(|p| p.fetch_width.to_string())),
        ("ROB Size", Box::new(|p| p.rob_size.to_string())),
        ("Integer Registers", Box::new(|p| p.int_regs.to_string())),
        ("Issue Slots", Box::new(|p| p.issue_slots.to_string())),
        ("L1D Ways", Box::new(|p| p.dcache_ways.to_string())),
    ];
    for (name, f) in &rows {
        println!(
            "{:<20} {:>10} {:>10} {:>10}",
            name,
            f(&high_perf.params),
            f(&power_eff.params),
            f(&area_eff.params)
        );
    }
    println!(
        "{:<20} {:>10.3} {:>10.3} {:>10.3}",
        "norm. performance", high_perf.performance, power_eff.performance, area_eff.performance
    );

    // Paper's §5.6 observations as checks.
    println!("\nobservations:");
    let near_best: Vec<&BoomDsePoint> =
        points.iter().filter(|p| p.performance > 0.97 * high_perf.performance).collect();
    let single_port = near_best.iter().filter(|p| p.params.mem_ports == 1).count();
    println!(
        "  near-Pareto designs with a single memory port: {}/{} (paper: all — CoreMark is not memory bound)",
        single_port,
        near_best.len()
    );
    println!(
        "  PowerEff is within {:.0}% of HighPerf's performance with {}x fewer issue slots",
        100.0 * (1.0 - power_eff.performance / high_perf.performance),
        high_perf.params.issue_slots / power_eff.params.issue_slots.max(1)
    );

    // Verification against the virtual synthesizer (paper: 20 random
    // designs, MAEP 12.58% area / 29.61% power / 19.78% timing).
    let n_verify = if paper_scale() { 20 } else { 6 };
    println!("\nverifying {n_verify} random DSE points against the virtual synthesizer...");
    let mut rng = StdRng::seed_from_u64(99);
    let mut sample: Vec<&BoomDsePoint> = points.iter().collect();
    sample.shuffle(&mut rng);
    let synth = VirtualSynthesizer::new(SynthOptions::default());
    let (mut pt, mut pa, mut pp, mut tt, mut ta, mut tp) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for p in sample.iter().take(n_verify) {
        let d = boom_like(&p.params);
        let nl = parse_and_elaborate(&d.verilog, &d.top).expect("generator output");
        let truth = synth.synthesize(&nl);
        pt.push(p.timing_ps);
        tt.push(truth.timing_ps);
        pa.push(p.area_um2);
        ta.push(truth.area_um2);
        pp.push(p.power_mw);
        tp.push(truth.power_mw);
    }
    println!(
        "  MAEP: area {:.2}%, power {:.2}%, timing {:.2}%  (paper: 12.58%, 29.61%, 19.78%)",
        maep(&pa, &ta),
        maep(&pp, &tp),
        maep(&pt, &tt)
    );

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{},{},{},{},{}",
                p.params.name(),
                p.performance,
                p.power_mw,
                p.area_um2,
                p.timing_ps
            )
        })
        .collect();
    write_csv("fig8_boom_dse.csv", "design,norm_perf,power_mw,area_um2,timing_ps", &rows);
}
