//! **Table 12** — SNS's synthesis prediction for DianNao: the published
//! 65 nm synthesis result, its Stillmaker–Baas scaling to 15 nm, the SNS
//! prediction, and (extra) this repo's virtual-synthesizer ground truth.

use sns_bench::{headline, standard_model, write_csv};
use sns_casestudies::diannao::{alexnet_like, simulate_diannao};
use sns_core::maep;
use sns_designs::diannao::{diannao, DianNaoParams};
use sns_netlist::parse_and_elaborate;
use sns_vsynth::{scale_area, scale_delay, scale_power, SynthOptions, TechNode, VirtualSynthesizer};

fn main() {
    headline("Table 12: SNS synthesis prediction for DianNao (Tn=16, int16)");
    let (model, _) = standard_model();

    // Row 1: the published 65 nm DianNao synthesis result.
    let (pow65, area65_mm2, t65_ns) = (132.0, 0.846563, 1.02);
    // Row 2: scaled to the 15 nm node SNS targets.
    let pow15 = scale_power(pow65, TechNode::N65, TechNode::N15);
    let area15 = scale_area(area65_mm2, TechNode::N65, TechNode::N15);
    let t15 = scale_delay(t65_ns, TechNode::N65, TechNode::N15);

    // Row 3: SNS prediction with power gating from the cycle-accurate
    // performance model (§5.7).
    let p = DianNaoParams::default(); // Tn = 16, int16 — the published config
    let d = diannao(&p);
    let nl = parse_and_elaborate(&d.verilog, &d.top).expect("generator output");
    let perf = simulate_diannao(&p, &alexnet_like(), &nl);
    let pred = model.predict_netlist(&nl, Some(&perf.activity));

    // Extra row: this repo's ground truth for the same design.
    let truth = VirtualSynthesizer::new(SynthOptions {
        register_activity: Some(perf.activity.clone()),
        ..SynthOptions::default()
    })
    .synthesize(&nl);

    println!("\n|                          | Power (mW) | Area (mm2)  | Timing (ns) |");
    println!("|--------------------------|------------|-------------|-------------|");
    println!("| Synthesis result (65nm)  | {pow65:>10.2} | {area65_mm2:>11.6} | {t65_ns:>11.2} |");
    println!("| Scaled result (15nm)     | {pow15:>10.2} | {area15:>11.6} | {t15:>11.2} |");
    println!(
        "| SNS prediction (15nm)    | {:>10.2} | {:>11.6} | {:>11.2} |",
        pred.power_mw,
        pred.area_um2 / 1e6,
        pred.timing_ps / 1e3
    );
    println!(
        "| virtual synth (this repo)| {:>10.2} | {:>11.6} | {:>11.2} |",
        truth.power_mw,
        truth.area_um2 / 1e6,
        truth.timing_ps / 1e3
    );
    println!("\n(paper row 2: 65.90 mW, 0.097302 mm2, 0.33 ns — reproduced by the scaling model)");
    println!("(paper row 3: 59.26 mW, 0.070269 mm2, 0.36 ns — errors of 10.1%, 27.8%, 9.1%)");

    // Our apples-to-apples error: SNS vs this repo's ground truth.
    let err = [
        maep(&[pred.power_mw], &[truth.power_mw]),
        maep(&[pred.area_um2], &[truth.area_um2]),
        maep(&[pred.timing_ps], &[truth.timing_ps]),
    ];
    println!(
        "\nSNS vs virtual-synthesizer ground truth: power {:.1}%, area {:.1}%, timing {:.1}% error",
        err[0], err[1], err[2]
    );
    println!(
        "performance model: {} cycles/inference, utilization {:.1}%",
        perf.cycles,
        100.0 * perf.utilization
    );

    write_csv(
        "table12_diannao.csv",
        "row,power_mw,area_mm2,timing_ns",
        &[
            format!("synthesis_65nm,{pow65},{area65_mm2},{t65_ns}"),
            format!("scaled_15nm,{pow15},{area15},{t15}"),
            format!("sns_15nm,{},{},{}", pred.power_mw, pred.area_um2 / 1e6, pred.timing_ps / 1e3),
            format!(
                "vsynth_15nm,{},{},{}",
                truth.power_mw,
                truth.area_um2 / 1e6,
                truth.timing_ps / 1e3
            ),
        ],
    );
}
