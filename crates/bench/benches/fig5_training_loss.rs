//! **Figure 5** — Circuitformer training loss vs. validation loss over
//! epochs. Builds the Circuit Path Dataset exactly as the training flow
//! does, trains the Circuitformer alone, and prints/archives the curves.

use sns_rt::rng::StdRng;

use sns_bench::{bench_train_config, headline, write_csv};
use sns_circuitformer::{train, Circuitformer, LabelScaler};
use sns_core::dataset::CircuitPathDataset;
use sns_designs::catalog;

fn main() {
    headline("Figure 5: Circuitformer training vs validation loss");
    let config = bench_train_config();

    let designs = catalog();
    let refs: Vec<_> = designs.iter().collect();
    println!("\nbuilding the circuit path dataset...");
    let paths = CircuitPathDataset::build(
        &refs,
        &config.sample,
        &config.augment,
        &config.synth.library,
    );
    println!(
        "  {} paths ({} direct, {} markov, {} seqgan) — the paper trains on 684 + 4096",
        paths.len(),
        paths.direct_count,
        paths.markov_count,
        paths.seqgan_count
    );

    let scaler = LabelScaler::fit(&paths.examples.iter().map(|(_, l)| *l).collect::<Vec<_>>());
    let examples: Vec<(Vec<usize>, [f32; 3])> = paths
        .examples
        .iter()
        .map(|(ids, l)| (ids.clone(), scaler.transform(*l)))
        .collect();
    let (train_idx, val_idx) = paths.train_val_split(0.15, 5);
    let train_set: Vec<_> = train_idx.iter().map(|&i| examples[i].clone()).collect();
    let val_set: Vec<_> = val_idx.iter().map(|&i| examples[i].clone()).collect();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut model = Circuitformer::new(config.circuitformer.clone(), &mut rng);
    println!(
        "  circuitformer: {} parameters (Table 2 paper config: ~1.4M)",
        model.parameter_count()
    );
    println!("\ntraining {} epochs...", config.cf_train.epochs);
    let history = train(&mut model, &train_set, &val_set, &config.cf_train);

    println!("\n{:>6} {:>12} {:>12}", "epoch", "train loss", "val loss");
    let step = (history.epochs.len() / 16).max(1);
    for (i, e) in history.epochs.iter().enumerate() {
        if i % step == 0 || i + 1 == history.epochs.len() {
            println!("{:>6} {:>12.5} {:>12.5}", i, e.train_loss, e.val_loss);
        }
    }
    let first = history.epochs.first().expect("nonempty");
    let last = history.epochs.last().expect("nonempty");
    println!(
        "\nshape: train {:.4} -> {:.4}, val {:.4} -> {:.4} (both descending, small gap — as in Figure 5)",
        first.train_loss, last.train_loss, first.val_loss, last.val_loss
    );

    let rows: Vec<String> = history
        .epochs
        .iter()
        .enumerate()
        .map(|(i, e)| format!("{i},{},{}", e.train_loss, e.val_loss))
        .collect();
    write_csv("fig5_training_loss.csv", "epoch,train_loss,val_loss", &rows);
}
