//! **Serve load** — throughput and latency of the `sns-serve` HTTP
//! daemon under K concurrent clients.
//!
//! Each round drives the same total number of `/predict` requests (over
//! the same design pool, with the path cache cleared first) at a
//! different concurrency, so the K = 1 round *is* the sequential
//! baseline: any req/s gain at K ≥ 4 comes from request pipelining and
//! the cross-request micro-batcher coalescing concurrent requests' path
//! sequences into shared packed forwards.
//!
//! Artifact: `BENCH_serve.json` at the repo root (req/s, client-side
//! p50/p99, and per-round batcher stats for every concurrency level).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use sns_bench::{headline, write_root_json};
use sns_circuitformer::{CircuitformerConfig, TrainConfig};
use sns_core::dataset::AugmentConfig;
use sns_core::{train_sns, SnsTrainConfig};
use sns_designs::{dsp, nonlinear, sort, vector, Design};
use sns_rt::json::Json;
use sns_sampler::SampleConfig;
use sns_serve::{ServeConfig, Server};

const CONCURRENCY: &[usize] = &[1, 4, 16];
const TOTAL_REQUESTS: usize = 48; // divisible by every level above

fn serving_model_config() -> SnsTrainConfig {
    let mut c = SnsTrainConfig::fast();
    c.circuitformer =
        CircuitformerConfig { dim: 32, ffn_dim: 64, max_len: 64, ..CircuitformerConfig::fast() };
    c.cf_train = TrainConfig { epochs: 8, batch_size: 32, threads: 1, ..TrainConfig::fast() };
    c.augment = AugmentConfig::none();
    c.sample = SampleConfig::paper_default().with_max_paths(250);
    c
}

/// A pool of distinct parameterized designs: enough variety that rounds
/// start cold, enough repeats (TOTAL_REQUESTS > pool) that the cache and
/// batcher dedup see realistic traffic.
fn design_pool() -> Vec<Design> {
    let mut pool = Vec::new();
    for lanes in [2u32, 4, 8] {
        for width in [8u32, 12, 16] {
            pool.push(vector::simd_alu(lanes, width));
        }
    }
    for taps in [4u32, 8, 16] {
        for width in [8u32, 16] {
            pool.push(dsp::fir(taps, width));
        }
    }
    for width in [8u32, 12] {
        pool.push(dsp::conv2d(2, width));
    }
    for segments in [2u32, 4, 8] {
        pool.push(nonlinear::piecewise(segments, 8));
    }
    for entries in [16u32, 32, 64] {
        pool.push(nonlinear::lut(entries, 8));
    }
    for lanes in [2u32, 4, 8] {
        pool.push(sort::radix_sort_stage(lanes, 8));
    }
    pool
}

fn predict_request(addr: SocketAddr, d: &Design) -> String {
    let body = Json::obj(vec![
        ("verilog", Json::Str(d.verilog.clone())),
        ("top", Json::Str(d.top.clone())),
    ])
    .print();
    format!(
        "POST /predict HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// One blocking request; returns the latency in microseconds.
fn timed_request(addr: SocketAddr, raw: &str) -> u64 {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.1 200"), "bad response: {}", &response[..response.len().min(200)]);
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn quantile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1] as f64 / 1000.0
}

fn main() {
    headline("sns-serve: throughput vs concurrency (cross-request micro-batching)");

    let pool = design_pool();
    println!("  [model] training a small serving model ({} pool designs)...", pool.len());
    let (model, _) = train_sns(
        &[
            vector::simd_alu(2, 8),
            vector::simd_alu(8, 16),
            nonlinear::piecewise(4, 8),
            dsp::fir(4, 8),
            sort::radix_sort_stage(4, 8),
            nonlinear::lut(32, 8),
        ],
        &serving_model_config(),
    );
    let model = Arc::new(model);

    // Plenty of HTTP workers at every level: the measured variable is the
    // inference path, not connection handling.
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 16,
        queue_cap: 256,
        cache_cap: None,
        ..ServeConfig::default()
    };
    let server = Server::start_shared(Arc::clone(&model), config.clone()).expect("bind");
    let addr = server.addr();
    let metrics = server.metrics();
    println!(
        "  [serve] {} workers on {addr}, inference threads={}, batch={}",
        config.workers, config.threads, config.batch
    );

    let requests: Vec<String> =
        (0..TOTAL_REQUESTS).map(|i| predict_request(addr, &pool[i % pool.len()])).collect();

    let mut rows = Vec::new();
    let mut baseline_rps = 0.0f64;
    for &k in CONCURRENCY {
        // Same cold start for every level.
        model.cache().clear();
        let rounds_before = metrics.batch_rounds.load(Ordering::Relaxed);
        let jobs_before = metrics.coalesced_jobs.load(Ordering::Relaxed);
        let seqs_before = metrics.batched_seqs.load(Ordering::Relaxed);

        let wall = Instant::now();
        let per_client = TOTAL_REQUESTS / k;
        let handles: Vec<_> = (0..k)
            .map(|c| {
                let slice: Vec<String> =
                    requests[c * per_client..(c + 1) * per_client].to_vec();
                std::thread::spawn(move || {
                    slice.iter().map(|r| timed_request(addr, r)).collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut lat_us: Vec<u64> =
            handles.into_iter().flat_map(|h| h.join().expect("client")).collect();
        let wall_s = wall.elapsed().as_secs_f64();
        lat_us.sort_unstable();

        let rps = TOTAL_REQUESTS as f64 / wall_s;
        if k == 1 {
            baseline_rps = rps;
        }
        let rounds = metrics.batch_rounds.load(Ordering::Relaxed) - rounds_before;
        let jobs = metrics.coalesced_jobs.load(Ordering::Relaxed) - jobs_before;
        let seqs = metrics.batched_seqs.load(Ordering::Relaxed) - seqs_before;
        println!(
            "  [k={k:>2}] {rps:7.2} req/s ({:.2}x vs k=1) | p50 {:7.1} ms  p99 {:7.1} ms | {jobs} jobs in {rounds} rounds ({:.1} jobs/round, {seqs} seqs)",
            rps / baseline_rps,
            quantile(&lat_us, 0.50),
            quantile(&lat_us, 0.99),
            if rounds == 0 { 0.0 } else { jobs as f64 / rounds as f64 },
        );
        rows.push(Json::obj(vec![
            ("concurrency", Json::UInt(k as u64)),
            ("requests", Json::UInt(TOTAL_REQUESTS as u64)),
            ("wall_s", Json::Num(wall_s)),
            ("req_per_s", Json::Num(rps)),
            ("speedup_vs_sequential", Json::Num(rps / baseline_rps)),
            ("p50_ms", Json::Num(quantile(&lat_us, 0.50))),
            ("p99_ms", Json::Num(quantile(&lat_us, 0.99))),
            ("batch_rounds", Json::UInt(rounds)),
            ("coalesced_jobs", Json::UInt(jobs)),
            ("batched_seqs", Json::UInt(seqs)),
        ]));
    }

    let doc = Json::obj(vec![
        ("bench", Json::Str("serve_load".into())),
        ("total_requests_per_level", Json::UInt(TOTAL_REQUESTS as u64)),
        ("design_pool", Json::UInt(design_pool().len() as u64)),
        ("inference_threads", Json::UInt(config.threads as u64)),
        ("batch", Json::UInt(config.batch as u64)),
        ("levels", Json::Arr(rows)),
    ]);
    write_root_json("BENCH_serve.json", &doc);
    server.join();
}
