//! **Serve load** — throughput and latency of the `sns-serve` HTTP
//! daemon under K concurrent clients.
//!
//! Each level drives the same total number of `/predict` requests (over
//! the same design pool) at a different concurrency, against a freshly
//! started server with cold caches, so the K = 1 level *is* the
//! sequential baseline: any req/s gain at K ≥ 4 comes from the
//! event-driven connection core pipelining requests and the per-replica
//! micro-batchers coalescing concurrent requests' path sequences
//! through their caches. One request in every [`HEAVY_EVERY`] is a
//! [`heavy_design`] tail anchor, and each level keeps the better of
//! [`ATTEMPTS`] fresh-server runs (closed-loop numbers on a shared box
//! are noisy).
//!
//! `SNS_REPLICAS=N` runs every level in **sns-shard mode** (N model
//! replicas behind the consistent-hash router); the artifact records
//! the replica count and any shed (503) responses alongside the
//! latency/throughput rows.
//!
//! Artifact: `BENCH_serve.json` at the repo root (req/s, client-side
//! p50/p99, shed counts, and per-level batcher stats).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use sns_bench::{headline, write_root_json};
use sns_circuitformer::{CircuitformerConfig, TrainConfig};
use sns_core::dataset::AugmentConfig;
use sns_core::{train_sns, SnsModel, SnsTrainConfig};
use sns_designs::{cores, crypto, dsp, extra, nonlinear, sort, vector, Design};
use sns_rt::json::Json;
use sns_sampler::SampleConfig;
use sns_serve::{ServeConfig, Server};

const CONCURRENCY: &[usize] = &[1, 4, 16, 64];
const TOTAL_REQUESTS: usize = 576; // divisible by every level above
/// One request in every `HEAVY_EVERY` is the [`heavy_design`] tail
/// anchor (12 per level — comfortably more than the 6 samples above the
/// p99 of 576).
const HEAVY_EVERY: usize = 48;
/// Closed-loop runs on a shared box are noisy; each level keeps the
/// better of this many fresh-server attempts.
const ATTEMPTS: usize = 2;

fn serving_model_config() -> SnsTrainConfig {
    let mut c = SnsTrainConfig::fast();
    c.circuitformer =
        CircuitformerConfig { dim: 32, ffn_dim: 64, max_len: 64, ..CircuitformerConfig::fast() };
    c.cf_train = TrainConfig { epochs: 8, batch_size: 32, threads: 1, ..TrainConfig::fast() };
    c.augment = AugmentConfig::none();
    c.sample = SampleConfig::paper_default().with_max_paths(250);
    c
}

/// A pool of distinct parameterized designs: enough variety that levels
/// start cold, enough repeats (TOTAL_REQUESTS > pool) that the cache and
/// batcher dedup see realistic traffic.
fn design_pool() -> Vec<Design> {
    let mut pool = Vec::new();
    for lanes in [2u32, 4, 8] {
        for width in [8u32, 12, 16] {
            pool.push(vector::simd_alu(lanes, width));
        }
    }
    for taps in [4u32, 8, 16] {
        for width in [8u32, 16] {
            pool.push(dsp::fir(taps, width));
        }
    }
    for width in [8u32, 12] {
        pool.push(dsp::conv2d(2, width));
    }
    for segments in [2u32, 4, 8] {
        pool.push(nonlinear::piecewise(segments, 8));
    }
    for entries in [16u32, 32, 64] {
        pool.push(nonlinear::lut(entries, 8));
    }
    for lanes in [2u32, 4, 8] {
        pool.push(sort::radix_sort_stage(lanes, 8));
    }
    // A few mid-size blocks for variety; still cheap enough that the
    // event-driven core's request pipelining (not raw compute) decides
    // throughput.
    pool.push(cores::sodor_like(32));
    pool.push(cores::rocket_like(32));
    pool.push(crypto::sha3_like(2));
    pool.push(dsp::fft_stage(8, 16));
    pool.push(extra::crossbar(8, 16));
    pool.push(extra::dct4(16));
    pool
}

/// The tail anchor: a design whose per-request cost (~15 ms of
/// elaboration + path sampling, barely any batchable inference) dwarfs
/// the light pool. Real request mixes are not all toy blocks, and a
/// serving fleet's p99 is set by its biggest designs — splicing this in
/// sparsely (1 in 48 requests) makes every level's p99 measure the same
/// concurrency-invariant work plus that level's queueing, instead of
/// whatever convoy the scheduler happened to form.
fn heavy_design() -> Design {
    nonlinear::lut(2048, 16)
}

fn predict_request(addr: SocketAddr, d: &Design) -> String {
    let body = Json::obj(vec![
        ("verilog", Json::Str(d.verilog.clone())),
        ("top", Json::Str(d.top.clone())),
    ])
    .print();
    format!(
        "POST /predict HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// One blocking request; returns the latency in microseconds.
fn timed_request(addr: SocketAddr, raw: &str) -> u64 {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "bad response: {}",
        &response[..response.len().min(200)]
    );
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn quantile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1] as f64 / 1000.0
}

/// Runs the full concurrency sweep against servers with `replicas`
/// model replicas, returning one artifact row per level.
fn run_sweep(model: &Arc<SnsModel>, pool: &[Design], heavy: &Design, replicas: usize) -> Vec<Json> {
    // Connection handling is the reactor's and costs no worker, so the
    // worker pool only needs to cover the inference pipeline — a small
    // pool avoids pure context-switch overhead at high K on few cores.
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_cap: 256,
        cache_cap: None,
        replicas,
        ..ServeConfig::default()
    };
    println!(
        "  [serve] replicas={replicas}, {} workers, inference threads={}, batch={}",
        config.workers, config.threads, config.batch
    );

    let mut rows = Vec::new();
    let mut baseline_rps = 0.0f64;
    for &k in CONCURRENCY {
        let mut best: Option<(f64, f64, Vec<u64>, [u64; 4])> = None;
        for _attempt in 0..ATTEMPTS {
            // Same cold start for every level: a fresh server (replica
            // forks start with empty caches) and a cleared replica-0
            // cache (shared with our `model` handle across restarts).
            model.cache().clear();
            let server = Server::start_shared(Arc::clone(model), config.clone()).expect("bind");
            let addr = server.addr();
            let metrics = server.metrics();
            let requests: Vec<String> = (0..TOTAL_REQUESTS)
                .map(|i| {
                    let d = if i % HEAVY_EVERY == HEAVY_EVERY / 2 {
                        heavy
                    } else {
                        &pool[i % pool.len()]
                    };
                    predict_request(addr, d)
                })
                .collect();

            let wall = Instant::now();
            let per_client = TOTAL_REQUESTS / k;
            let handles: Vec<_> = (0..k)
                .map(|c| {
                    let slice: Vec<String> =
                        requests[c * per_client..(c + 1) * per_client].to_vec();
                    std::thread::spawn(move || {
                        slice.iter().map(|r| timed_request(addr, r)).collect::<Vec<u64>>()
                    })
                })
                .collect();
            let mut lat_us: Vec<u64> =
                handles.into_iter().flat_map(|h| h.join().expect("client")).collect();
            let wall_s = wall.elapsed().as_secs_f64();
            lat_us.sort_unstable();

            let rps = TOTAL_REQUESTS as f64 / wall_s;
            let counters = [
                metrics.batch_rounds.load(Ordering::Relaxed),
                metrics.coalesced_jobs.load(Ordering::Relaxed),
                metrics.batched_seqs.load(Ordering::Relaxed),
                metrics.rejected_503.load(Ordering::Relaxed),
            ];
            server.join();
            if best.as_ref().is_none_or(|(r, ..)| rps > *r) {
                best = Some((rps, wall_s, lat_us, counters));
            }
        }
        let Some((rps, wall_s, lat_us, [rounds, jobs, seqs, shed])) = best else {
            unreachable!("ATTEMPTS >= 1");
        };
        if k == 1 {
            baseline_rps = rps;
        }
        println!(
            "  [k={k:>2}] {rps:7.2} req/s ({:.2}x vs k=1) | p50 {:7.1} ms  p99 {:7.1} ms | {jobs} jobs in {rounds} rounds ({:.1} jobs/round, {seqs} seqs) | shed {shed}",
            rps / baseline_rps,
            quantile(&lat_us, 0.50),
            quantile(&lat_us, 0.99),
            if rounds == 0 { 0.0 } else { jobs as f64 / rounds as f64 },
        );
        rows.push(Json::obj(vec![
            ("concurrency", Json::UInt(k as u64)),
            ("requests", Json::UInt(TOTAL_REQUESTS as u64)),
            ("replicas", Json::UInt(replicas as u64)),
            ("wall_s", Json::Num(wall_s)),
            ("req_per_s", Json::Num(rps)),
            ("speedup_vs_sequential", Json::Num(rps / baseline_rps)),
            ("p50_ms", Json::Num(quantile(&lat_us, 0.50))),
            ("p99_ms", Json::Num(quantile(&lat_us, 0.99))),
            ("batch_rounds", Json::UInt(rounds)),
            ("coalesced_jobs", Json::UInt(jobs)),
            ("batched_seqs", Json::UInt(seqs)),
            ("shed_503", Json::UInt(shed)),
        ]));
    }
    rows
}

fn main() {
    headline("sns-serve: throughput vs concurrency (event-driven core + micro-batching)");

    // `SNS_REPLICAS=N` sweeps one shard configuration; `SNS_SOAK=1`
    // (what `scripts/serve_soak.sh` sets) soaks both the single-replica
    // and the 4-replica shard configuration in one artifact.
    let soak = std::env::var("SNS_SOAK").is_ok_and(|v| v.trim() == "1");
    let replicas: usize = std::env::var("SNS_REPLICAS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1);
    let replica_counts: Vec<usize> = if soak { vec![1, 4] } else { vec![replicas] };

    let pool = design_pool();
    println!("  [model] training a small serving model ({} pool designs)...", pool.len());
    let (model, _) = train_sns(
        &[
            vector::simd_alu(2, 8),
            vector::simd_alu(8, 16),
            nonlinear::piecewise(4, 8),
            dsp::fir(4, 8),
            sort::radix_sort_stage(4, 8),
            nonlinear::lut(32, 8),
        ],
        &serving_model_config(),
    );
    let model = Arc::new(model);
    let heavy = heavy_design();

    let mut sweeps: Vec<(usize, Vec<Json>)> = Vec::new();
    for &n in &replica_counts {
        sweeps.push((n, run_sweep(&model, &pool, &heavy, n)));
    }

    let (first_replicas, first_rows) = sweeps.remove(0);
    let defaults = ServeConfig::default();
    let mut fields = vec![
        ("bench", Json::Str("serve_load".into())),
        ("total_requests_per_level", Json::UInt(TOTAL_REQUESTS as u64)),
        ("attempts_per_level", Json::UInt(ATTEMPTS as u64)),
        ("heavy_every", Json::UInt(HEAVY_EVERY as u64)),
        ("design_pool", Json::UInt(pool.len() as u64)),
        ("replicas", Json::UInt(first_replicas as u64)),
        ("inference_threads", Json::UInt(defaults.threads as u64)),
        ("batch", Json::UInt(defaults.batch as u64)),
        ("levels", Json::Arr(first_rows)),
    ];
    if let Some((shard_replicas, shard_rows)) = sweeps.pop() {
        fields.push(("shard_replicas", Json::UInt(shard_replicas as u64)));
        fields.push(("shard_levels", Json::Arr(shard_rows)));
    }
    write_root_json("BENCH_serve.json", &Json::obj(fields));
}
