//! **Ablations** — the design choices DESIGN.md calls out:
//!
//! 1. data augmentation mix (none / Markov / SeqGAN / both, §4.2),
//! 2. sampling density `k` (the paper picks k = 5, §3.2),
//! 3. width rounding (79-token vocabulary vs type-only tokens, §3.1),
//! 4. sequence model (Circuitformer vs the §3.3 linear-regression
//!    baseline over vertex counts).

use sns_rt::rng::StdRng;

use sns_bench::{bench_train_config, headline, paper_scale, write_csv};
use sns_circuitformer::{train, Circuitformer, CircuitformerConfig, LabelScaler, TrainConfig};
use sns_core::dataset::{AugmentConfig, CircuitPathDataset};
use sns_designs::catalog;
use sns_genmodel::SeqGanConfig;
use sns_graphir::Vocab;
use sns_nn::{mse_loss, Grads, Linear, Mat, Optimizer, ParamRegistry, Sgd};
use sns_sampler::SampleConfig;
use sns_vsynth::CellLibrary;

fn small_cf() -> CircuitformerConfig {
    if paper_scale() {
        CircuitformerConfig::paper()
    } else {
        CircuitformerConfig { dim: 48, ffn_dim: 96, max_len: 128, ..CircuitformerConfig::fast() }
    }
}

fn cf_schedule() -> TrainConfig {
    if paper_scale() {
        TrainConfig::paper()
    } else {
        TrainConfig { epochs: 6, batch_size: 64, ..TrainConfig::fast() }
    }
}

/// Trains a Circuitformer on a path dataset; returns the final val MSE.
fn cf_val_loss(paths: &CircuitPathDataset, vocab_size: usize, remap: impl Fn(usize) -> usize) -> f32 {
    let scaler = LabelScaler::fit(&paths.examples.iter().map(|(_, l)| *l).collect::<Vec<_>>());
    let examples: Vec<(Vec<usize>, [f32; 3])> = paths
        .examples
        .iter()
        .map(|(ids, l)| (ids.iter().map(|&t| remap(t)).collect(), scaler.transform(*l)))
        .collect();
    let (tr, va) = paths.train_val_split(0.2, 3);
    let train_set: Vec<_> = tr.iter().map(|&i| examples[i].clone()).collect();
    let val_set: Vec<_> = va.iter().map(|&i| examples[i].clone()).collect();
    let mut rng = StdRng::seed_from_u64(17);
    let mut model =
        Circuitformer::new(CircuitformerConfig { vocab: vocab_size, ..small_cf() }, &mut rng);
    let h = train(&mut model, &train_set, &val_set, &cf_schedule());
    h.last().map(|e| e.val_loss).unwrap_or(f32::NAN)
}

/// The §3.3 baseline: linear regression over token counts.
fn linear_val_loss(paths: &CircuitPathDataset, vocab: &Vocab) -> f32 {
    let scaler = LabelScaler::fit(&paths.examples.iter().map(|(_, l)| *l).collect::<Vec<_>>());
    let featurize = |ids: &[usize]| -> Vec<f32> {
        let mut f = vec![0.0f32; vocab.len()];
        for &t in ids {
            f[t] += 1.0;
        }
        f
    };
    let (tr, va) = paths.train_val_split(0.2, 3);
    let xs: Vec<Vec<f32>> = paths.examples.iter().map(|(ids, _)| featurize(ids)).collect();
    let ts: Vec<[f32; 3]> = paths.examples.iter().map(|(_, l)| scaler.transform(*l)).collect();
    let mut reg = ParamRegistry::new();
    let mut rng = StdRng::seed_from_u64(5);
    let mut lin = Linear::new(&mut reg, vocab.len(), 3, &mut rng);
    let mut opt = Sgd::new(0.03, 0.9);
    let x_rows: Vec<&[f32]> = tr.iter().map(|&i| xs[i].as_slice()).collect();
    let x = Mat::from_rows(&x_rows);
    let t_rows: Vec<&[f32]> = tr.iter().map(|&i| ts[i].as_slice()).collect();
    let t = Mat::from_rows(&t_rows);
    for _ in 0..400 {
        let (y, ctx) = lin.forward(&x);
        let (_, dy) = mse_loss(&y, &t);
        let mut grads = Grads::new(&reg);
        lin.backward(&ctx, &dy, &mut grads);
        opt.step_visit(&grads, |f| lin.visit_mut(f));
    }
    let vx_rows: Vec<&[f32]> = va.iter().map(|&i| xs[i].as_slice()).collect();
    let vt_rows: Vec<&[f32]> = va.iter().map(|&i| ts[i].as_slice()).collect();
    let (vy, _) = lin.forward(&Mat::from_rows(&vx_rows));
    let (loss, _) = mse_loss(&vy, &Mat::from_rows(&vt_rows));
    loss
}

fn main() {
    headline("Ablation studies");
    let base = bench_train_config();
    let designs = catalog();
    let refs: Vec<_> = designs.iter().collect();
    let vocab = Vocab::new();
    let lib = CellLibrary::freepdk15();
    let mut csv = Vec::new();

    // ---- 1. augmentation mix ----
    println!("\n[1] data augmentation (final Circuitformer validation MSE, lower better):");
    let mk_aug = |markov: usize, seqgan: usize| AugmentConfig {
        markov_count: markov,
        seqgan_count: seqgan,
        seqgan: SeqGanConfig::fast(),
        ..AugmentConfig::fast()
    };
    for (name, aug) in [
        ("none", mk_aug(0, 0)),
        ("markov-only", mk_aug(300, 0)),
        ("seqgan-only", mk_aug(0, 300)),
        ("both (paper)", mk_aug(150, 150)),
    ] {
        let paths = CircuitPathDataset::build(&refs, &base.sample, &aug, &lib);
        let loss = cf_val_loss(&paths, vocab.len(), |t| t);
        println!(
            "  {:<14} {:>5} paths ({:>4} direct, {:>4} markov, {:>4} seqgan) -> val {:.4}",
            name, paths.len(), paths.direct_count, paths.markov_count, paths.seqgan_count, loss
        );
        csv.push(format!("augmentation,{name},{loss}"));
    }

    // ---- 2. sampling density k ----
    println!("\n[2] sampling density k (paths sampled; k=5 is the paper's choice):");
    for k in [1u32, 2, 5, 10] {
        let sample = SampleConfig::paper_default().with_k(k).with_max_paths(base.sample.max_paths);
        let paths = CircuitPathDataset::build(&refs, &sample, &AugmentConfig::none(), &lib);
        let loss = cf_val_loss(&paths, vocab.len(), |t| t);
        println!("  k={k:<3} {:>6} direct paths -> val {:.4}", paths.direct_count, loss);
        csv.push(format!("k_sweep,{k},{loss}"));
    }

    // ---- 3. width rounding ----
    println!("\n[3] vocabulary: width-rounded (79 tokens) vs type-only (17 tokens):");
    let paths = CircuitPathDataset::build(&refs, &base.sample, &AugmentConfig::none(), &lib);
    let full = cf_val_loss(&paths, vocab.len(), |t| t);
    // Map every token to its type index, discarding width information.
    let type_index = |t: usize| {
        let vt = vocab.vertex(t).vtype;
        sns_graphir::VocabType::ALL.iter().position(|&x| x == vt).expect("type in table")
    };
    let type_only = cf_val_loss(&paths, sns_graphir::VocabType::ALL.len(), type_index);
    println!("  79-token vocabulary:  val {full:.4}");
    println!("  17-token (no widths): val {type_only:.4}");
    println!(
        "  -> width information {}",
        if full < type_only { "helps (keep Table 1's widths)" } else { "did not help at this scale" }
    );
    csv.push(format!("rounding,full79,{full}"));
    csv.push(format!("rounding,type_only17,{type_only}"));

    // ---- 4. sequence model vs linear regression ----
    println!("\n[4] sequence model (the §3.3 motivation):");
    let lin = linear_val_loss(&paths, &vocab);
    println!("  linear regression on vertex counts: val {lin:.4}");
    println!("  circuitformer:                      val {full:.4}");
    println!(
        "  -> the order-aware model {}",
        if full < lin {
            "beats the count-based baseline (as §3.3 argues)"
        } else {
            "did not beat the baseline at this scale"
        }
    );
    csv.push(format!("model,linear,{lin}"));
    csv.push(format!("model,circuitformer,{full}"));

    write_csv("ablation_studies.csv", "study,variant,val_mse", &csv);
}
