//! `vsynth_bench` — times the fast synthesis flow (parallel elaboration,
//! expansion memoization, sparse STA) against the dense single-threaded
//! reference on a catalog suite, and writes `BENCH_vsynth.json` at the
//! repo root.
//!
//! ```text
//! cargo run --release -p sns-bench --bin vsynth_bench
//! SNS_VSYNTH_BENCH_REPS=5 cargo run --release -p sns-bench --bin vsynth_bench
//! ```
//!
//! Per design it reports the reference seconds, the fast-flow seconds at
//! 1 thread and at the pool's thread count, the per-stage breakdown
//! (elaborate / STA / sizing / power), and the resulting speedups; the
//! label bit-identity itself is enforced by the conformance oracle and
//! the `bit_identity` test suite, but the bench double-checks gate counts
//! so a broken build cannot publish a bogus speedup.

use std::time::Instant;

use sns_bench::write_root_json;
use sns_designs::{crypto, dsp, extra, vector, Design};
use sns_netlist::{parse_and_elaborate, Netlist};
use sns_rt::json::Json;
use sns_vsynth::{ExpansionMemo, SynthOptions, SynthReport, VirtualSynthesizer};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

/// Mid-to-large catalog designs: wide datapaths (memoizable expanders),
/// register files, and enough cells to cross the parallel threshold.
fn suite() -> Vec<Design> {
    vec![
        vector::simd_alu(4, 16),
        dsp::fir(16, 16),
        dsp::conv2d(3, 16),
        extra::cordic(12, 24),
        extra::dct4(16),
        crypto::aes_round(),
    ]
}

struct FlowSample {
    elaborate_s: f64,
    sta_s: f64,
    sizing_s: f64,
    power_s: f64,
    total_s: f64,
    report: SynthReport,
}

/// Times one flow end to end, best of `reps` (per-stage numbers come from
/// the best total, so the stages sum to the reported time).
fn time_flow(nl: &Netlist, threads: Option<usize>, reference: bool, reps: usize) -> FlowSample {
    let opts = SynthOptions { threads, ..SynthOptions::default() };
    let vs = VirtualSynthesizer::new(opts);
    let mut best: Option<FlowSample> = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let gl =
            if reference { vs.elaborate_gates_reference(nl) } else { vs.elaborate_gates(nl) };
        let elaborate_s = t0.elapsed().as_secs_f64();
        let (report, bd) = vs.analyze_with_breakdown(&gl, !reference);
        let total_s = t0.elapsed().as_secs_f64();
        let sample = FlowSample {
            elaborate_s,
            sta_s: bd.sta_s,
            sizing_s: bd.sizing_s,
            power_s: bd.power_s,
            total_s,
            report,
        };
        if best.as_ref().is_none_or(|b| sample.total_s < b.total_s) {
            best = Some(sample);
        }
    }
    best.expect("reps >= 1")
}

fn stage_json(s: &FlowSample) -> Json {
    Json::obj(vec![
        ("elaborate_s", Json::Num(s.elaborate_s)),
        ("sta_s", Json::Num(s.sta_s)),
        ("sizing_s", Json::Num(s.sizing_s)),
        ("power_s", Json::Num(s.power_s)),
        ("total_s", Json::Num(s.total_s)),
    ])
}

fn main() {
    let reps = env_usize("SNS_VSYNTH_BENCH_REPS", 3);
    let threads = sns_rt::pool::synth_threads();
    println!("vsynth bench: {} designs, best of {reps}, pool {threads} threads", suite().len());

    let mut rows = Vec::new();
    let mut ref_total = 0.0f64;
    let mut fast_total = 0.0f64;
    let t_all = Instant::now();
    for d in suite() {
        let nl = parse_and_elaborate(&d.verilog, &d.top)
            .unwrap_or_else(|e| panic!("{}: {e}", d.name));
        let reference = time_flow(&nl, Some(1), true, reps);
        let fast1 = time_flow(&nl, Some(1), false, reps);
        let fastn = time_flow(&nl, Some(threads), false, reps);
        assert_eq!(
            reference.report.gate_count, fastn.report.gate_count,
            "{}: fast flow gate count diverged from reference",
            d.name
        );
        ref_total += reference.total_s;
        fast_total += fastn.total_s;
        let speedup1 = reference.total_s / fast1.total_s.max(1e-12);
        let speedup_n = reference.total_s / fastn.total_s.max(1e-12);
        println!(
            "  {:<28} {:>8} gates   ref {:>8.2} ms   fast(1) {:>7.2} ms ({speedup1:>5.2}x)   \
             fast({threads}) {:>7.2} ms ({speedup_n:>5.2}x)",
            d.name,
            reference.report.gate_count,
            reference.total_s * 1e3,
            fast1.total_s * 1e3,
            fastn.total_s * 1e3,
        );
        rows.push(Json::obj(vec![
            ("name", Json::Str(d.name.clone())),
            ("gate_count", Json::UInt(reference.report.gate_count)),
            ("reference", stage_json(&reference)),
            ("fast_1t", stage_json(&fast1)),
            ("fast_nt", stage_json(&fastn)),
            ("speedup_1t", Json::Num(speedup1)),
            ("speedup_nt", Json::Num(speedup_n)),
        ]));
    }
    let wall_s = t_all.elapsed().as_secs_f64();

    let memo = ExpansionMemo::global().map(|m| m.stats());
    let memo_json = match memo {
        Some(s) => Json::obj(vec![
            ("hits", Json::UInt(s.hits)),
            ("misses", Json::UInt(s.misses)),
            ("evictions", Json::UInt(s.evictions)),
            ("templates", Json::UInt(s.templates)),
            ("nodes", Json::UInt(s.nodes)),
        ]),
        None => Json::Null,
    };

    let n = rows.len();
    let report = Json::obj(vec![
        ("bench", Json::Str("vsynth".into())),
        ("designs", Json::UInt(n as u64)),
        ("threads", Json::UInt(threads as u64)),
        ("reps", Json::UInt(reps as u64)),
        ("reference_total_s", Json::Num(ref_total)),
        ("fast_total_s", Json::Num(fast_total)),
        ("overall_speedup", Json::Num(ref_total / fast_total.max(1e-12))),
        ("fast_designs_per_sec", Json::Num(n as f64 / fast_total.max(1e-12))),
        ("reference_designs_per_sec", Json::Num(n as f64 / ref_total.max(1e-12))),
        ("wall_s", Json::Num(wall_s)),
        ("memo", memo_json),
        ("results", Json::Arr(rows)),
    ]);
    println!(
        "overall: ref {:.2} s vs fast {:.2} s  ({:.2}x)",
        ref_total,
        fast_total,
        ref_total / fast_total.max(1e-12)
    );
    write_root_json("BENCH_vsynth.json", &report);
}
