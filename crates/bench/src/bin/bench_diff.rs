//! `bench_diff` — compares two `BENCH_*.json` snapshots and prints the
//! per-benchmark timing deltas and (when present) the `gemm_speedups`
//! movement, so a PR's kernel-perf trajectory is visible at review time.
//!
//! ```text
//! bench_diff <old.json> <new.json>
//! ```
//!
//! Informational by design: the exit code is nonzero only for unreadable
//! or malformed inputs, never for a regression — the acceptance gates on
//! absolute numbers live with the benches themselves, and the tier-1
//! wiring (`scripts/bench_diff.sh`) tolerates a missing baseline.

use std::collections::BTreeMap;
use std::process::ExitCode;

use sns_rt::json::{parse, Json};

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// `results` as a name → min_ns map.
fn result_map(doc: &Json) -> BTreeMap<String, u64> {
    let mut map = BTreeMap::new();
    if let Ok(results) = doc.get("results").and_then(|r| r.as_arr()) {
        for r in results {
            if let (Ok(name), Ok(min)) = (
                r.get("name").and_then(|v| v.as_str().map(str::to_string)),
                r.get("min_ns").and_then(|v| v.as_u64()),
            ) {
                map.insert(name, min);
            }
        }
    }
    map
}

/// `gemm_speedups` as a "mxkxn" → (speedup, prepacked_speedup) map.
/// Older snapshots predate the prepacked column; its entry is `None`.
fn speedup_map(doc: &Json) -> BTreeMap<String, (f64, Option<f64>)> {
    let mut map = BTreeMap::new();
    if let Ok(rows) = doc.get("gemm_speedups").and_then(|r| r.as_arr()) {
        for row in rows {
            let dims = ["m", "k", "n"].map(|d| row.get(d).and_then(|v| v.as_u64()));
            let (Ok(m), Ok(k), Ok(n)) = (&dims[0], &dims[1], &dims[2]) else { continue };
            let Ok(speedup) = row.get("speedup").and_then(|v| v.as_f64()) else { continue };
            let prepacked = row.get("prepacked_speedup").and_then(|v| v.as_f64()).ok();
            map.insert(format!("{m}x{k}x{n}"), (speedup, prepacked));
        }
    }
    map
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "    -".to_string(), |s| format!("{s:5.2}"))
}

fn run(old_path: &str, new_path: &str) -> Result<(), String> {
    let old = load(old_path)?;
    let new = load(new_path)?;

    let old_speedups = speedup_map(&old);
    let new_speedups = speedup_map(&new);
    if !old_speedups.is_empty() || !new_speedups.is_empty() {
        println!("gemm_speedups (vs naive; old -> new):");
        println!("  {:<14} {:>11}  {:>17}", "shape", "blocked", "prepacked");
        for (shape, (ns, np)) in &new_speedups {
            let (os, op) = old_speedups
                .get(shape)
                .map_or((None, None), |&(s, p)| (Some(s), p));
            println!(
                "  {:<14} {} -> {:5.2}  {} -> {}",
                shape,
                fmt_opt(os),
                ns,
                fmt_opt(op),
                fmt_opt(*np),
            );
        }
        for shape in old_speedups.keys().filter(|s| !new_speedups.contains_key(*s)) {
            println!("  {shape:<14} dropped from the new snapshot");
        }
    }

    let old_results = result_map(&old);
    let new_results = result_map(&new);
    println!("benchmarks (min ns; old -> new):");
    for (name, new_ns) in &new_results {
        match old_results.get(name) {
            Some(&old_ns) if old_ns > 0 => {
                let ratio = old_ns as f64 / *new_ns as f64;
                println!("  {name:<36} {old_ns:>12} -> {new_ns:>12}  ({ratio:.2}x)");
            }
            _ => println!("  {name:<36} {:>12} -> {new_ns:>12}  (new)", "-"),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [old_path, new_path] = args.as_slice() else {
        eprintln!("usage: bench_diff <old.json> <new.json>");
        return ExitCode::from(2);
    };
    match run(old_path, new_path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::FAILURE
        }
    }
}
