//! Shared infrastructure for the paper-reproduction bench harnesses.
//!
//! Every bench target regenerates one table or figure from the SNS paper
//! and prints the same rows/series the paper reports, additionally writing
//! CSV artifacts under `target/paper/`.
//!
//! Two scales are supported:
//!
//! * the default **fast** schedule, sized for a single-core CI box (same
//!   pipeline and architecture, reduced epochs/path counts), and
//! * `SNS_PAPER=1`, which switches every knob to the paper's Tables 2/6
//!   values (hours of compute).
//!
//! `EXPERIMENTS.md` records which schedule produced the archived numbers.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use sns_circuitformer::{CircuitformerConfig, TrainConfig};
use sns_core::aggmlp::MlpTrainConfig;
use sns_core::dataset::{AugmentConfig, HardwareDesignDataset};
use sns_core::{load_model, save_model, train_sns_on_labeled, SnsModel, SnsTrainConfig};
use sns_designs::catalog;
use sns_genmodel::SeqGanConfig;
use sns_sampler::SampleConfig;
use sns_vsynth::SynthOptions;

pub use sns_core::train::train_sns_on_labeled as train_on_labeled;

/// Whether the full paper-scale schedule was requested.
pub fn paper_scale() -> bool {
    std::env::var("SNS_PAPER").map(|v| v == "1").unwrap_or(false)
}

/// The artifact directory (`target/paper`), created on demand.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/paper");
    fs::create_dir_all(&dir).expect("create target/paper");
    dir
}

/// The repository root (two levels above the bench crate).
pub fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Writes a machine-readable JSON artifact at the **repo root** (e.g.
/// `BENCH_kernels.json`), so the perf trajectory is tracked across PRs
/// alongside the code, and reports its path.
pub fn write_root_json(name: &str, doc: &sns_rt::json::Json) {
    let path = repo_root().join(name);
    fs::write(&path, doc.print() + "\n").expect("write bench json");
    println!("  [artifact] {}", path.display());
}

/// Writes a CSV artifact and reports its path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = out_dir().join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for r in rows {
        writeln!(f, "{r}").expect("write row");
    }
    println!("  [artifact] {}", path.display());
}

/// The training configuration for the active scale.
pub fn bench_train_config() -> SnsTrainConfig {
    if paper_scale() {
        SnsTrainConfig::paper()
    } else {
        SnsTrainConfig {
            sample: SampleConfig::paper_default().with_max_paths(4000),
            augment: AugmentConfig {
                markov_count: 150,
                seqgan_count: 150,
                seqgan: SeqGanConfig::fast(),
                ..AugmentConfig::fast()
            },
            circuitformer: CircuitformerConfig::fast(),
            cf_train: TrainConfig { epochs: 12, batch_size: 64, ..TrainConfig::fast() },
            mlp_train: MlpTrainConfig { epochs: 2500, ..MlpTrainConfig::fast() },
            synth: SynthOptions::default(),
            cf_path_cap: 1800,
            val_frac: 0.1,
            seed: 0x535E5,
        }
    }
}

/// Labels the full 41-design catalog (cached in-process only; labeling is
/// cheap relative to training).
pub fn labeled_catalog() -> HardwareDesignDataset {
    let designs = catalog();
    HardwareDesignDataset::generate(&designs, &SynthOptions::default())
}

/// Returns the standard shared model: trained on a 50 % base-respecting
/// split of the catalog, cached at `target/paper/model.json` so the DSE
/// and runtime benches don't retrain.
pub fn standard_model() -> (SnsModel, HardwareDesignDataset) {
    let dataset = labeled_catalog();
    let cache = out_dir().join(if paper_scale() { "model_paper.json" } else { "model.json" });
    if let Ok(model) = load_model(&cache) {
        println!("  [model] loaded cached {}", cache.display());
        return (model, dataset);
    }
    let config = bench_train_config();
    let (train_idx, _) = dataset.split(0.5, 42);
    let entries = dataset.select(&train_idx);
    println!("  [model] training on {} designs (cache miss)...", entries.len());
    let (model, report) = train_sns_on_labeled(&entries, &config);
    println!(
        "  [model] {} paths ({} direct / {} markov / {} seqgan), final val loss {:.4}",
        report.path_dataset_size,
        report.direct_paths,
        report.markov_paths,
        report.seqgan_paths,
        report.cf_history.last().map(|e| e.val_loss).unwrap_or(f32::NAN)
    );
    if let Err(e) = save_model(&model, &cache) {
        println!("  [model] cache write failed: {e}");
    }
    (model, dataset)
}

pub mod timing;

/// Pretty-prints a separator headline.
pub fn headline(title: &str) {
    println!("\n================================================================");
    println!("  {title}");
    println!("  scale: {}", if paper_scale() { "PAPER (SNS_PAPER=1)" } else { "fast (set SNS_PAPER=1 for Table 6 schedules)" });
    println!("================================================================");
}
