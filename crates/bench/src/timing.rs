//! A small timing harness for the micro-benchmarks: warmup, then a fixed
//! number of timed samples, reported as min/median per-call times.
//!
//! The min is the best estimate of the kernel's intrinsic cost (least
//! scheduler noise); the median shows the typical run. No external
//! dependencies, so the benches build with the rest of the hermetic
//! workspace.

use std::hint::black_box;
use std::time::{Duration, Instant};

use sns_rt::json::Json;

/// Timed samples per benchmark.
const SAMPLES: usize = 30;
/// Target wall time for one sample (sets the per-sample iteration count).
const SAMPLE_TARGET: Duration = Duration::from_millis(2);
/// Warmup budget before any sample is recorded.
const WARMUP: Duration = Duration::from_millis(100);

/// One benchmark's timing summary (per-call durations).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Calls batched into each timed sample.
    pub iters_per_sample: usize,
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
}

impl BenchResult {
    /// A CSV row matching [`csv_header`].
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{}",
            self.name,
            self.iters_per_sample,
            self.min.as_nanos(),
            self.median.as_nanos()
        )
    }

    /// The machine-readable form of this result, for the `BENCH_*.json`
    /// artifacts tracked across PRs.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("iters_per_sample", Json::UInt(self.iters_per_sample as u64)),
            ("min_ns", Json::UInt(self.min.as_nanos() as u64)),
            ("median_ns", Json::UInt(self.median.as_nanos() as u64)),
        ])
    }
}

/// Bundles a slice of results into one JSON report object.
pub fn results_to_json(suite: &str, results: &[BenchResult]) -> Json {
    Json::obj(vec![
        ("suite", Json::Str(suite.to_string())),
        ("results", Json::Arr(results.iter().map(BenchResult::to_json).collect())),
    ])
}

/// The header for [`BenchResult::csv_row`] artifacts.
pub fn csv_header() -> &'static str {
    "bench,iters_per_sample,min_ns,median_ns"
}

/// Formats a per-call duration with an appropriate unit.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Times `f`: warms up for ~100 ms, picks an iteration count so each
/// sample lasts ~2 ms, then records [`SAMPLES`] samples and reports the
/// min and median per-call time. The result of every call goes through
/// [`black_box`], so the work cannot be optimized away.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> BenchResult {
    // Warmup doubles as calibration: estimate the per-call cost.
    let warm_start = Instant::now();
    let mut calls = 0u32;
    while calls < 3 || warm_start.elapsed() < WARMUP {
        black_box(f());
        calls += 1;
        if warm_start.elapsed() >= 4 * WARMUP {
            break;
        }
    }
    let per_call_ns = (warm_start.elapsed().as_nanos() / u128::from(calls)).max(1);
    let iters = usize::try_from((SAMPLE_TARGET.as_nanos() / per_call_ns).clamp(1, 100_000))
        .expect("iteration count fits usize");

    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        samples.push(t.elapsed() / iters as u32);
    }
    samples.sort_unstable();
    let result = BenchResult {
        name: name.to_string(),
        iters_per_sample: iters,
        min: samples[0],
        median: samples[SAMPLES / 2],
    };
    println!(
        "  {:<32} min {:>12}   median {:>12}   ({} iters/sample)",
        result.name,
        fmt_duration(result.min),
        fmt_duration(result.median),
        result.iters_per_sample
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_sane_times() {
        // The bound goes through black_box so the fold cannot const-fold
        // to a free call (whose per-call time rounds to 0 ns in release).
        let r = bench("spin", || (0..black_box(100u64)).fold(0, |a, b| a ^ b.wrapping_mul(31)));
        assert!(r.min <= r.median);
        assert!(r.min.as_nanos() > 0);
        assert!(r.iters_per_sample >= 1);
    }

    #[test]
    fn csv_row_matches_header() {
        let r = bench("tiny", || 1 + 1);
        assert_eq!(csv_header().split(',').count(), r.csv_row().split(',').count());
    }

    #[test]
    fn fmt_duration_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(120)), "120 ns");
        assert!(fmt_duration(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(20)).ends_with(" s"));
    }
}
