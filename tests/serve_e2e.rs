//! End-to-end tests for the `sns-serve` HTTP daemon: a real trained
//! model behind a real TCP listener, exercised by real sockets.
//!
//! One tiny model is trained once and shared by every test (training
//! dominates runtime); each test boots its own server on an ephemeral
//! port, so the tests are safe under the default parallel test harness.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use sns::circuitformer::{CircuitformerConfig, TrainConfig};
use sns::core::dataset::AugmentConfig;
use sns::core::{save_to_zoo, train_sns, SessionStore, SnsModel, SnsTrainConfig, ZooCheckpointMeta};
use sns::designs::{dsp, nonlinear, sort, vector, Design};
use sns::rt::json::{parse as parse_json, Json};
use sns::sampler::SampleConfig;
use sns::serve::{ServeConfig, Server};
use sns::vsynth::TechNode;

fn tiny_config() -> SnsTrainConfig {
    let mut c = SnsTrainConfig::fast();
    c.circuitformer =
        CircuitformerConfig { dim: 32, ffn_dim: 64, max_len: 64, ..CircuitformerConfig::fast() };
    c.cf_train = TrainConfig { epochs: 8, batch_size: 32, threads: 1, ..TrainConfig::fast() };
    c.mlp_train =
        sns::core::aggmlp::MlpTrainConfig { epochs: 400, ..sns::core::aggmlp::MlpTrainConfig::fast() };
    c.augment = AugmentConfig::none();
    c.sample = SampleConfig::paper_default().with_max_paths(250);
    c
}

/// The model every test serves — trained once, shared by `Arc`. Tests
/// must not reconfigure its cache capacity divergently (they all use
/// `cache_cap: None`), because the cache is shared too.
fn model() -> Arc<SnsModel> {
    static MODEL: OnceLock<Arc<SnsModel>> = OnceLock::new();
    Arc::clone(MODEL.get_or_init(|| {
        let train = vec![
            vector::simd_alu(2, 8),
            vector::simd_alu(8, 16),
            nonlinear::piecewise(4, 8),
            dsp::fir(4, 8),
            sort::radix_sort_stage(4, 8),
            nonlinear::lut(32, 8),
        ];
        Arc::new(train_sns(&train, &tiny_config()).0)
    }))
}

/// Designs the tests predict (distinct from the training set).
fn serve_designs() -> Vec<Design> {
    vec![
        vector::simd_alu(4, 8),
        nonlinear::lut(16, 8),
        dsp::fir(8, 8),
        nonlinear::piecewise(2, 8),
        dsp::conv2d(2, 8),
        sort::radix_sort_stage(2, 8),
    ]
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        cache_cap: None, // shared cache: keep capacity settings idempotent
        read_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    }
}

// ---------------------------------------------------------------- client --

/// Sends raw bytes, returns (status, headers, body-text).
fn http_raw(addr: SocketAddr, raw: &[u8]) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw).expect("send request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8(response).expect("response is UTF-8");
    let (head, body) = text.split_once("\r\n\r\n").expect("response has a header block");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {status_line}"));
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn post_json(addr: SocketAddr, path: &str, body: &str) -> (u16, Json) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    let (status, _, body) = http_raw(addr, raw.as_bytes());
    (status, parse_json(&body).expect("response body is JSON"))
}

fn get(addr: SocketAddr, path: &str) -> (u16, Json) {
    let raw = format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n");
    let (status, _, body) = http_raw(addr, raw.as_bytes());
    (status, parse_json(&body).expect("response body is JSON"))
}

fn predict_body(d: &Design) -> String {
    Json::obj(vec![
        ("verilog", Json::Str(d.verilog.clone())),
        ("top", Json::Str(d.top.clone())),
    ])
    .print()
}

// ----------------------------------------------------------------- tests --

#[test]
fn concurrent_responses_are_bit_identical_to_direct_predictions() {
    let model = model();
    let server = Server::start_shared(Arc::clone(&model), test_config()).unwrap();
    let addr = server.addr();
    let designs = serve_designs();

    // 8 clients × 3 requests each, round-robin over the design pool, all
    // in flight together so the micro-batcher actually coalesces.
    let mut handles = Vec::new();
    for client in 0..8 {
        let designs = designs.clone();
        handles.push(std::thread::spawn(move || {
            (0..3)
                .map(|i| {
                    let d = &designs[(client + i * 3) % designs.len()];
                    let (status, body) = post_json(addr, "/predict", &predict_body(d));
                    assert_eq!(status, 200, "{}: {}", d.name, body.print());
                    (d.name.clone(), body)
                })
                .collect::<Vec<_>>()
        }));
    }
    let responses: Vec<(String, Json)> =
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect();
    assert_eq!(responses.len(), 24);

    // Direct predictions through the very same model — the HTTP path must
    // reproduce every f64 bit-for-bit (the JSON printer is shortest
    // round-trip, so parsing the response recovers the exact bits).
    for d in &designs {
        let direct = model.predict_verilog(&d.verilog, &d.top).unwrap();
        for (name, body) in responses.iter().filter(|(n, _)| n == &d.name) {
            let timing = body.get("timing_ps").unwrap().as_f64().unwrap();
            let area = body.get("area_um2").unwrap().as_f64().unwrap();
            let power = body.get("power_mw").unwrap().as_f64().unwrap();
            assert_eq!(timing.to_bits(), direct.timing_ps.to_bits(), "{name} timing");
            assert_eq!(area.to_bits(), direct.area_um2.to_bits(), "{name} area");
            assert_eq!(power.to_bits(), direct.power_mw.to_bits(), "{name} power");
            assert_eq!(
                body.get("path_count").unwrap().as_u64().unwrap(),
                direct.path_count as u64,
                "{name} path_count"
            );
            let critical: Vec<String> = body
                .get("critical_path")
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .map(|v| v.as_str().unwrap().to_string())
                .collect();
            assert_eq!(critical, direct.critical_path, "{name} critical path");
        }
    }

    // The /metrics document reconciles with what we sent: 24 predictions
    // plus the metrics request itself.
    let (status, m) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(m.get("requests_total").unwrap().as_u64().unwrap(), 25);
    assert_eq!(m.get("predict_requests").unwrap().as_u64().unwrap(), 24);
    assert_eq!(m.get("predict_ok").unwrap().as_u64().unwrap(), 24);
    assert_eq!(m.get("responses").unwrap().get("2xx").unwrap().as_u64().unwrap(), 24);
    assert_eq!(m.get("responses").unwrap().get("4xx").unwrap().as_u64().unwrap(), 0);
    assert_eq!(m.get("responses").unwrap().get("5xx").unwrap().as_u64().unwrap(), 0);
    // Coalescing invariant: every round serves >= 1 job, and the
    // per-stage histograms saw every prediction.
    let batcher = m.get("batcher").unwrap();
    let rounds = batcher.get("rounds").unwrap().as_u64().unwrap();
    let jobs = batcher.get("coalesced_jobs").unwrap().as_u64().unwrap();
    assert!(jobs >= rounds, "jobs {jobs} < rounds {rounds}");
    let stages = m.get("stages_us").unwrap();
    for stage in ["parse", "sample", "infer", "aggregate", "total"] {
        assert_eq!(
            stages.get(stage).unwrap().get("count").unwrap().as_u64().unwrap(),
            24,
            "stage {stage} sample count"
        );
    }
    server.join();
}

#[test]
fn malformed_requests_get_structured_errors_not_hangups() {
    // Big enough for a real design's Verilog, small enough to overflow.
    let server = Server::start_shared(model(), ServeConfig { max_body: 1 << 16, ..test_config() })
        .unwrap();
    let addr = server.addr();

    // Garbage instead of HTTP.
    let (status, _, body) = http_raw(addr, b"this is not http\r\n\r\n");
    assert_eq!(status, 400);
    assert_eq!(parse_json(&body).unwrap().get("kind").unwrap().as_str().unwrap(), "http");

    // Valid HTTP, body is not JSON.
    let (status, body) = post_json(addr, "/predict", "{not json");
    assert_eq!(status, 400);
    assert_eq!(body.get("kind").unwrap().as_str().unwrap(), "json");

    // Valid JSON, missing the required fields.
    let (status, body) = post_json(addr, "/predict", r#"{"verilog": "module m; endmodule"}"#);
    assert_eq!(status, 400);
    assert_eq!(body.get("kind").unwrap().as_str().unwrap(), "json");

    // A clock_ps that is not a positive number.
    let (status, body) = post_json(
        addr,
        "/predict",
        r#"{"verilog": "module m; endmodule", "top": "m", "clock_ps": -5}"#,
    );
    assert_eq!(status, 400);
    assert_eq!(body.get("kind").unwrap().as_str().unwrap(), "json");

    // Well-formed JSON, Verilog that does not elaborate.
    let (status, body) = post_json(
        addr,
        "/predict",
        r#"{"verilog": "module broken (input a; endmodule", "top": "broken"}"#,
    );
    assert_eq!(status, 400);
    assert_eq!(body.get("kind").unwrap().as_str().unwrap(), "verilog");

    // Wrong method / unknown path.
    let (status, _) = get(addr, "/predict");
    assert_eq!(status, 405);
    let (status, _) = get(addr, "/nope");
    assert_eq!(status, 404);

    // Oversized body → 413 before any parsing happens.
    let big = format!(r#"{{"verilog": "{}", "top": "m"}}"#, "x".repeat(100_000));
    let (status, body) = post_json(addr, "/predict", &big);
    assert_eq!(status, 413, "{}", body.print());

    // And after all that abuse, a good request still works.
    let d = &serve_designs()[0];
    let (status, body) = post_json(addr, "/predict", &predict_body(d));
    assert_eq!(status, 200, "{}", body.print());
    assert!(body.get("timing_ps").unwrap().as_f64().unwrap() > 0.0);
    server.join();
}

#[test]
fn clock_target_adds_slack_and_meets_clock() {
    let model = model();
    let server = Server::start_shared(Arc::clone(&model), test_config()).unwrap();
    let d = &serve_designs()[1];
    let direct = model.predict_verilog(&d.verilog, &d.top).unwrap();

    let body = Json::obj(vec![
        ("verilog", Json::Str(d.verilog.clone())),
        ("top", Json::Str(d.top.clone())),
        ("clock_ps", Json::Num(1e9)), // absurdly slow clock: always met
    ])
    .print();
    let (status, resp) = post_json(server.addr(), "/predict", &body);
    assert_eq!(status, 200, "{}", resp.print());
    assert!(resp.get("meets_clock").unwrap().as_bool().unwrap());
    let slack = resp.get("slack_ps").unwrap().as_f64().unwrap();
    assert_eq!(slack.to_bits(), (1e9 - direct.timing_ps).to_bits());
    server.join();
}

#[test]
fn zero_deadline_aborts_with_504_before_inference() {
    let server = Server::start_shared(
        model(),
        ServeConfig { deadline: Some(Duration::ZERO), ..test_config() },
    )
    .unwrap();
    let addr = server.addr();
    let d = &serve_designs()[2];
    let (status, body) = post_json(addr, "/predict", &predict_body(d));
    assert_eq!(status, 504, "{}", body.print());
    assert_eq!(body.get("kind").unwrap().as_str().unwrap(), "deadline");
    // The server is still healthy afterwards.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body.get("status").unwrap().as_str().unwrap(), "ok");
    let (_, m) = get(addr, "/metrics");
    assert_eq!(m.get("deadline_504").unwrap().as_u64().unwrap(), 1);
    server.join();
}

#[test]
fn full_queue_sheds_with_503_and_retry_after() {
    // One worker, queue depth one: hold the worker with a deliberately
    // slow request (debug sleep hook), fill the queue slot, and every
    // further request must be rejected immediately — deterministically,
    // not timing-luck. Under the reactor a *stalled* request can no
    // longer occupy anything (framing costs no worker), so occupancy is
    // created where it now lives: inside a handler.
    let server = Server::start_shared(
        model(),
        ServeConfig { workers: 1, queue_cap: 1, debug_hooks: true, ..test_config() },
    )
    .unwrap();
    let addr = server.addr();
    let d = &serve_designs()[0];

    // Connection A: the lone worker dequeues it and sleeps in-handler.
    let body = predict_body(d);
    let raw = format!(
        "POST /predict HTTP/1.1\r\nhost: t\r\nx-sns-sleep-ms: 1500\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    let mut a = TcpStream::connect(addr).unwrap();
    a.write_all(raw.as_bytes()).unwrap();
    std::thread::sleep(Duration::from_millis(400)); // worker has dequeued A

    // Connection B takes the single queue slot.
    let mut b = TcpStream::connect(addr).unwrap();
    b.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(300)); // reactor has queued B

    // C and D find the queue full → shed by the reactor, immediately —
    // the sleeping worker never touches them.
    for _ in 0..2 {
        let raw = b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n";
        let t = Instant::now();
        let (status, headers, body) = http_raw(addr, raw);
        assert_eq!(status, 503, "{body}");
        assert!(t.elapsed() < Duration::from_millis(700), "shed was not immediate");
        assert_eq!(parse_json(&body).unwrap().get("kind").unwrap().as_str().unwrap(), "overload");
        let retry = headers.iter().find(|(k, _)| k == "retry-after");
        assert_eq!(retry.map(|(_, v)| v.as_str()), Some("1"));
    }

    // A's sleep ends → its prediction completes; the worker moves on to B.
    let mut response = String::new();
    a.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    let mut response = String::new();
    b.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");

    let (_, m) = get(addr, "/metrics");
    assert_eq!(m.get("rejected_503").unwrap().as_u64().unwrap(), 2);
    assert_eq!(m.get("panics_total").unwrap().as_u64().unwrap(), 0);
    server.join();
}

#[test]
fn slow_loris_headers_get_408_without_stalling_the_reactor() {
    let server = Server::start_shared(
        model(),
        ServeConfig { read_timeout: Duration::from_millis(500), ..test_config() },
    )
    .unwrap();
    let addr = server.addr();

    // A peer trickling one header byte at a time. The framing deadline
    // is fixed at accept — diligent trickling must not extend it.
    let mut loris = TcpStream::connect(addr).unwrap();
    let mut writer = loris.try_clone().unwrap();
    let trickler = std::thread::spawn(move || {
        for byte in b"GET /healthz HTTP/1.1\r\nhost: tttttttttttttttttttttttttttt" {
            if writer.write_all(&[*byte]).is_err() {
                break; // the server gave up on us, as it should
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    });

    // While the loris trickles, an honest request on another connection
    // answers immediately: framing costs no worker under the reactor.
    let t = Instant::now();
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{}", body.print());
    assert!(t.elapsed() < Duration::from_secs(2), "reactor stalled by a slow-loris peer");

    // The loris itself gets a structured 408 once the deadline passes,
    // well before its trickle would have completed the request.
    let t = Instant::now();
    let mut response = String::new();
    loris.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 408"), "{response}");
    assert!(t.elapsed() < Duration::from_secs(3), "408 did not arrive at the deadline");
    let payload = response.split_once("\r\n\r\n").unwrap().1;
    assert_eq!(parse_json(payload).unwrap().get("kind").unwrap().as_str().unwrap(), "timeout");
    trickler.join().unwrap();

    let (_, m) = get(addr, "/metrics");
    assert!(m.get("read_timeouts").unwrap().as_u64().unwrap() >= 1);
    assert_eq!(m.get("panics_total").unwrap().as_u64().unwrap(), 0);
    server.join();
}

#[test]
fn half_closed_connections_are_answered_or_dropped_cleanly() {
    let server = Server::start_shared(model(), test_config()).unwrap();
    let addr = server.addr();

    // Half-close after a complete request: the response still arrives.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").unwrap();
    s.shutdown(Shutdown::Write).unwrap();
    let mut response = String::new();
    s.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");

    // Half-close mid-headers: a structured 400, not a hang.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\nho").unwrap();
    s.shutdown(Shutdown::Write).unwrap();
    let mut response = String::new();
    s.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(response.contains("mid-headers"), "{response}");

    // Half-close mid-body (headers promised more than was sent).
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"POST /predict HTTP/1.1\r\nhost: t\r\ncontent-length: 50\r\n\r\nshort").unwrap();
    s.shutdown(Shutdown::Write).unwrap();
    let mut response = String::new();
    s.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    assert!(response.contains("mid-body"), "{response}");

    // A connection that half-closes without sending a byte disappears
    // silently: no response, and no error counted.
    let mut s = TcpStream::connect(addr).unwrap();
    s.shutdown(Shutdown::Write).unwrap();
    let mut sink = Vec::new();
    assert_eq!(s.read_to_end(&mut sink).unwrap(), 0, "idle probe gets a silent close");

    let (_, m) = get(addr, "/metrics");
    assert_eq!(m.get("conn_errors").unwrap().as_u64().unwrap(), 0);
    assert_eq!(m.get("panics_total").unwrap().as_u64().unwrap(), 0);
    server.join();
}

#[test]
fn oversized_and_pipelined_requests_are_rejected_at_the_framing_layer() {
    let server =
        Server::start_shared(model(), ServeConfig { max_body: 1 << 16, ..test_config() }).unwrap();
    let addr = server.addr();

    // A declared body beyond the limit draws 413 from the headers alone —
    // the body itself is never read, let alone buffered.
    let raw = format!("POST /predict HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n", 1 << 20);
    let (status, _, body) = http_raw(addr, raw.as_bytes());
    assert_eq!(status, 413, "{body}");
    assert_eq!(parse_json(&body).unwrap().get("kind").unwrap().as_str().unwrap(), "http");

    // A request head that never ends: 400 once it crosses the head cap,
    // long before the framing deadline would fire.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    let filler = format!("x-filler: {}\r\n", "y".repeat(1024));
    for _ in 0..17 {
        if s.write_all(filler.as_bytes()).is_err() {
            break;
        }
    }
    let mut response = String::new();
    s.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");

    // Pipelining a second request behind the first is rejected: this
    // server is strictly one-request-per-connection.
    let one: &[u8] = b"GET /healthz HTTP/1.1\r\nhost: t\r\ncontent-length: 0\r\n\r\n";
    let (status, _, body) = http_raw(addr, &[one, one].concat());
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("longer than Content-Length"), "{body}");

    // The daemon is unfazed by all of it.
    let (status, _) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let (_, m) = get(addr, "/metrics");
    assert_eq!(m.get("panics_total").unwrap().as_u64().unwrap(), 0);
    server.join();
}

#[test]
fn partial_writes_backpressure_without_blocking_other_connections() {
    let server =
        Server::start_shared(model(), ServeConfig { debug_hooks: true, ..test_config() }).unwrap();
    let addr = server.addr();

    // An 8 MiB response cannot fit any socket buffer: the reactor must
    // drain it across many POLLOUT rounds while this client reads
    // nothing at all for a while.
    let mut slow = TcpStream::connect(addr).unwrap();
    slow.write_all(b"GET /debug/blob?kb=8192 HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(200)); // response is stuck mid-write

    // Meanwhile an honest request is served immediately: a stuffed
    // connection costs a table entry, never the reactor loop.
    let t = Instant::now();
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{}", body.print());
    assert!(t.elapsed() < Duration::from_secs(2), "reactor blocked on a partial write");

    // Dribble-read the blob — deliberately tiny reads first, then the
    // rest. Every byte must arrive intact.
    let mut response = Vec::new();
    let mut tiny = [0u8; 1024];
    for _ in 0..16 {
        let n = slow.read(&mut tiny).unwrap();
        if n == 0 {
            break;
        }
        response.extend_from_slice(&tiny[..n]);
        std::thread::sleep(Duration::from_millis(10));
    }
    slow.read_to_end(&mut response).unwrap();
    let text = String::from_utf8(response).unwrap();
    assert!(text.starts_with("HTTP/1.1 200"), "{}", &text[..text.len().min(64)]);
    let payload = text.split_once("\r\n\r\n").unwrap().1;
    let blob = parse_json(payload).unwrap();
    assert_eq!(blob.get("blob").unwrap().as_str().unwrap().len(), 8192 * 1024);

    let (_, m) = get(addr, "/metrics");
    assert_eq!(m.get("conn_errors").unwrap().as_u64().unwrap(), 0);
    assert_eq!(m.get("panics_total").unwrap().as_u64().unwrap(), 0);
    server.join();
}

#[test]
fn killed_replica_fails_over_and_rejoins_with_reconciled_metrics() {
    let model = model();
    let server = Server::start_shared(
        Arc::clone(&model),
        ServeConfig { replicas: 4, debug_hooks: true, ..test_config() },
    )
    .unwrap();
    let addr = server.addr();
    assert_eq!(server.replica_count(), 4);

    let d = serve_designs()[0].clone();
    let home = server.replica_for(&d.verilog, &d.top);
    let direct = model.predict_verilog(&d.verilog, &d.top).unwrap();

    // A request held in-flight on its home replica (debug sleep hook)…
    let body = predict_body(&d);
    let raw = format!(
        "POST /predict HTTP/1.1\r\nhost: t\r\nx-sns-sleep-ms: 1000\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    let mut inflight = TcpStream::connect(addr).unwrap();
    inflight.write_all(raw.as_bytes()).unwrap();
    std::thread::sleep(Duration::from_millis(300)); // handler is sleeping on `home`

    // …ends as a complete, parseable 503 when the replica dies under it —
    // never a truncated or wrong-valued body.
    assert!(server.kill_replica(home));
    let mut response = String::new();
    inflight.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 503"), "{response}");
    assert!(response.to_ascii_lowercase().contains("retry-after: 1"), "{response}");
    let payload = response.split_once("\r\n\r\n").unwrap().1;
    assert_eq!(parse_json(payload).unwrap().get("kind").unwrap().as_str().unwrap(), "replica");

    // New requests for the same design fail over along the ring and
    // still answer bit-identically (the replicas are exact model clones).
    let (status, resp) = post_json(addr, "/predict", &predict_body(&d));
    assert_eq!(status, 200, "{}", resp.print());
    assert_eq!(
        resp.get("timing_ps").unwrap().as_f64().unwrap().to_bits(),
        direct.timing_ps.to_bits()
    );

    // The revived replica resumes its old key range and keeps answering.
    assert!(server.revive_replica(home));
    let (status, resp) = post_json(addr, "/predict", &predict_body(&d));
    assert_eq!(status, 200, "{}", resp.print());
    assert_eq!(
        resp.get("area_um2").unwrap().as_f64().unwrap().to_bits(),
        direct.area_um2.to_bits()
    );

    // /metrics reconciles after the chaos: per-replica routed ==
    // completed + shed, exactly one shed and one failover in total,
    // everyone alive again, nothing left in flight, no panics.
    let (_, m) = get(addr, "/metrics");
    let replicas = m.get("replicas").unwrap().as_arr().unwrap();
    assert_eq!(replicas.len(), 4);
    let (mut routed, mut completed, mut shed) = (0, 0, 0);
    for r in replicas {
        let rr = r.get("routed").unwrap().as_u64().unwrap();
        let rc = r.get("completed").unwrap().as_u64().unwrap();
        let rs = r.get("shed").unwrap().as_u64().unwrap();
        assert_eq!(rr, rc + rs, "replica ledger: routed == completed + shed");
        assert_eq!(r.get("in_flight").unwrap().as_u64().unwrap(), 0);
        assert!(r.get("alive").unwrap().as_bool().unwrap());
        routed += rr;
        completed += rc;
        shed += rs;
    }
    assert_eq!((routed, completed, shed), (3, 2, 1));
    assert_eq!(m.get("router").unwrap().get("failovers").unwrap().as_u64().unwrap(), 1);
    assert_eq!(m.get("panics_total").unwrap().as_u64().unwrap(), 0);
    server.join();
}

#[test]
fn shard_mode_is_bit_identical_with_reconciled_replica_metrics() {
    let model = model();
    let config = ServeConfig { replicas: 4, ..test_config() };
    let server = Server::start_shared(Arc::clone(&model), config.clone()).unwrap();
    let addr = server.addr();
    let designs = serve_designs();

    // Placement is pure content hashing: an independently started server
    // (fresh ring, fresh process state) homes every design identically.
    let twin = Server::start_shared(Arc::clone(&model), config).unwrap();
    for d in &designs {
        assert_eq!(
            server.replica_for(&d.verilog, &d.top),
            twin.replica_for(&d.verilog, &d.top),
            "routing must be deterministic across restarts ({})",
            d.name
        );
    }
    twin.join();

    // The same 8-way concurrent mix as the single-replica test — shard
    // mode must not change a single bit of any answer.
    let mut handles = Vec::new();
    for client in 0..8 {
        let designs = designs.clone();
        handles.push(std::thread::spawn(move || {
            (0..3)
                .map(|i| {
                    let d = &designs[(client + i * 3) % designs.len()];
                    let (status, body) = post_json(addr, "/predict", &predict_body(d));
                    assert_eq!(status, 200, "{}: {}", d.name, body.print());
                    (d.name.clone(), body)
                })
                .collect::<Vec<_>>()
        }));
    }
    let responses: Vec<(String, Json)> =
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect();
    assert_eq!(responses.len(), 24);
    for d in &designs {
        let direct = model.predict_verilog(&d.verilog, &d.top).unwrap();
        for (name, body) in responses.iter().filter(|(n, _)| n == &d.name) {
            for (field, want) in [
                ("timing_ps", direct.timing_ps),
                ("area_um2", direct.area_um2),
                ("power_mw", direct.power_mw),
            ] {
                let got = body.get(field).unwrap().as_f64().unwrap();
                assert_eq!(got.to_bits(), want.to_bits(), "{name} {field}");
            }
        }
    }

    // The request ledger reconciles in shard mode exactly as it does
    // single-replica, plus the per-replica ledger sums to the total.
    let (status, m) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(m.get("requests_total").unwrap().as_u64().unwrap(), 25);
    assert_eq!(m.get("predict_requests").unwrap().as_u64().unwrap(), 24);
    assert_eq!(m.get("predict_ok").unwrap().as_u64().unwrap(), 24);
    assert_eq!(m.get("router").unwrap().get("replicas").unwrap().as_u64().unwrap(), 4);
    let replicas = m.get("replicas").unwrap().as_arr().unwrap();
    assert_eq!(replicas.len(), 4);
    let (mut routed, mut completed) = (0, 0);
    for r in replicas {
        assert!(r.get("alive").unwrap().as_bool().unwrap());
        assert_eq!(r.get("shed").unwrap().as_u64().unwrap(), 0);
        assert_eq!(r.get("in_flight").unwrap().as_u64().unwrap(), 0);
        routed += r.get("routed").unwrap().as_u64().unwrap();
        completed += r.get("completed").unwrap().as_u64().unwrap();
    }
    assert_eq!(routed, 24);
    assert_eq!(completed, 24);
    assert_eq!(m.get("panics_total").unwrap().as_u64().unwrap(), 0);
    server.join();
}

#[test]
fn adversarial_batch_leaves_the_daemon_alive_and_bit_identical() {
    let model = model();
    let server = Server::start_shared(Arc::clone(&model), test_config()).unwrap();
    let addr = server.addr();
    let d = &serve_designs()[4];
    let direct = model.predict_verilog(&d.verilog, &d.top).unwrap();

    // A batch of hostile requests: each must produce a structured error
    // response — never a hangup, never a dead worker.

    // Deep nesting: the pre-fix reproducer stack-overflowed and aborted
    // the whole daemon. Now it is a 400 mentioning the depth bound.
    let deep = format!(
        "module m (input a, output y); assign y = {}a{}; endmodule",
        "(".repeat(50_000),
        ")".repeat(50_000)
    );
    let body =
        Json::obj(vec![("verilog", Json::Str(deep)), ("top", Json::Str("m".into()))]).print();
    let (status, resp) = post_json(addr, "/predict", &body);
    assert_eq!(status, 400, "{}", resp.print());
    assert_eq!(resp.get("kind").unwrap().as_str().unwrap(), "verilog");
    assert!(resp.get("error").unwrap().as_str().unwrap().contains("depth"));

    // Resource amplification: legal Verilog that exceeds the deployment's
    // elaboration budgets → 422, kind "budget".
    for verilog in [
        "module m (input x, output [7:0] y); assign y = {100000000{x}}; endmodule",
        "module m (input x, output y); wire [100000000:0] w; assign y = x; endmodule",
    ] {
        let body = Json::obj(vec![
            ("verilog", Json::Str(verilog.into())),
            ("top", Json::Str("m".into())),
        ])
        .print();
        let (status, resp) = post_json(addr, "/predict", &body);
        assert_eq!(status, 422, "{}", resp.print());
        assert_eq!(resp.get("kind").unwrap().as_str().unwrap(), "budget");
    }

    // Truncations and token soup of the design we are about to predict.
    for cut in [d.verilog.len() / 3, d.verilog.len() / 2, 2 * d.verilog.len() / 3] {
        let mut prefix = &d.verilog[..cut];
        while !d.verilog.is_char_boundary(prefix.len()) {
            prefix = &prefix[..prefix.len() - 1];
        }
        let body = Json::obj(vec![
            ("verilog", Json::Str(prefix.to_string())),
            ("top", Json::Str(d.top.clone())),
        ])
        .print();
        let (status, resp) = post_json(addr, "/predict", &body);
        assert_eq!(status, 400, "{}", resp.print());
        assert_eq!(resp.get("kind").unwrap().as_str().unwrap(), "verilog");
    }

    // Immediately after absorbing the corpus, a valid request answers
    // bit-identically to the direct model call on the same process.
    let (status, resp) = post_json(addr, "/predict", &predict_body(d));
    assert_eq!(status, 200, "{}", resp.print());
    let timing = resp.get("timing_ps").unwrap().as_f64().unwrap();
    let area = resp.get("area_um2").unwrap().as_f64().unwrap();
    let power = resp.get("power_mw").unwrap().as_f64().unwrap();
    assert_eq!(timing.to_bits(), direct.timing_ps.to_bits());
    assert_eq!(area.to_bits(), direct.area_um2.to_bits());
    assert_eq!(power.to_bits(), direct.power_mw.to_bits());

    // Nothing panicked behind the catch_unwind net, and the status
    // classes reconcile: 4 × 400, 2 × 422, 1 × 200.
    let (_, m) = get(addr, "/metrics");
    assert_eq!(m.get("panics_total").unwrap().as_u64().unwrap(), 0);
    assert_eq!(m.get("responses").unwrap().get("4xx").unwrap().as_u64().unwrap(), 6);
    assert_eq!(m.get("responses").unwrap().get("5xx").unwrap().as_u64().unwrap(), 0);
    assert_eq!(m.get("predict_ok").unwrap().as_u64().unwrap(), 1);
    server.join();
}

#[test]
fn eco_session_and_patch_are_bit_identical_and_metered() {
    let model = model();
    let server = Server::start_shared(Arc::clone(&model), test_config()).unwrap();
    let addr = server.addr();

    // A small hierarchy: one shared leaf instantiated twice by the top.
    let leaf = "module leaf #(parameter W = 8) (input [W-1:0] a, input [W-1:0] b, \
                output [W-1:0] y);\n    assign y = (a & b) + 8'd3;\nendmodule\n";
    let top = "module top (input [7:0] a, input [7:0] b, output [7:0] y);\n    \
               wire [7:0] t0;\n    wire [7:0] t1;\n    \
               leaf #(.W(8)) u0 (.a(a), .b(b), .y(t0));\n    \
               leaf #(.W(8)) u1 (.a(t0), .b(a), .y(t1));\n    \
               assign y = t0 ^ t1;\nendmodule\n";
    let base_src = format!("{leaf}{top}");

    // Register the base design as an ECO session.
    let body = Json::obj(vec![
        ("verilog", Json::Str(base_src.clone())),
        ("top", Json::Str("top".into())),
        ("session", Json::Bool(true)),
    ])
    .print();
    let (status, resp) = post_json(addr, "/predict", &body);
    assert_eq!(status, 200, "{}", resp.print());
    let token = resp.get("base").unwrap().as_str().unwrap().to_string();
    let reelab: Vec<String> = resp
        .get("reelaborated")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|v| v.as_str().unwrap().to_string())
        .collect();
    assert!(reelab.iter().any(|m| m == "leaf"), "first session elaborates leaf: {reelab:?}");
    assert!(reelab.iter().any(|m| m == "top"), "first session elaborates top: {reelab:?}");

    // Patch the shared leaf: the top is transitively invalidated too.
    let leaf2 = leaf.replace("8'd3", "8'd7");
    let body = Json::obj(vec![
        ("base", Json::Str(token.clone())),
        ("patch", Json::Str(leaf2.clone())),
    ])
    .print();
    let (status, patched) = post_json(addr, "/predict", &body);
    assert_eq!(status, 200, "{}", patched.print());
    let reelab: Vec<String> = patched
        .get("reelaborated")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|v| v.as_str().unwrap().to_string())
        .collect();
    assert!(reelab.iter().any(|m| m == "leaf"), "patched leaf re-elaborates: {reelab:?}");
    assert!(reelab.iter().any(|m| m == "top"), "transitive invalidation hits top: {reelab:?}");

    // The HTTP patch answer is bit-identical to a from-scratch session
    // prediction of the merged source on the very same model.
    let merged = format!("{leaf2}{top}");
    let direct = model.predict_session(&SessionStore::default(), &merged, "top").unwrap();
    assert_eq!(patched.get("base").unwrap().as_str().unwrap(), direct.token, "patched token");
    for (field, want) in [
        ("timing_ps", direct.prediction.timing_ps),
        ("area_um2", direct.prediction.area_um2),
        ("power_mw", direct.prediction.power_mw),
    ] {
        let got = patched.get(field).unwrap().as_f64().unwrap();
        assert_eq!(got.to_bits(), want.to_bits(), "{field}");
    }
    assert_eq!(
        patched.get("path_count").unwrap().as_u64().unwrap(),
        direct.prediction.path_count as u64
    );

    // A forgotten/garbage base token is a structured 404, not a hangup.
    let body = Json::obj(vec![
        ("base", Json::Str("not-a-token".into())),
        ("patch", Json::Str(leaf.to_string())),
    ])
    .print();
    let (status, resp) = post_json(addr, "/predict", &body);
    assert_eq!(status, 404, "{}", resp.print());
    assert_eq!(resp.get("kind").unwrap().as_str().unwrap(), "session");

    // Metrics reconcile: two successful session-pipeline predictions, two
    // ECO attempts (one 404), two live sessions (base + patched), and an
    // elaboration cache whose entry count equals misses minus evictions
    // with at least one invalidation from the leaf patch.
    let (_, m) = get(addr, "/metrics");
    assert_eq!(m.get("session_predicts").unwrap().as_u64().unwrap(), 2);
    assert_eq!(m.get("eco_requests").unwrap().as_u64().unwrap(), 2);
    assert_eq!(m.get("sessions").unwrap().as_u64().unwrap(), 2);
    let elab = m.get("elab_cache").unwrap();
    let entries = elab.get("entries").unwrap().as_u64().unwrap();
    let misses = elab.get("misses").unwrap().as_u64().unwrap();
    let evictions = elab.get("evictions").unwrap().as_u64().unwrap();
    assert_eq!(entries, misses - evictions, "elab cache entry/miss reconciliation");
    assert!(elab.get("hits").unwrap().as_u64().unwrap() >= 1, "shared leaf unit hits");
    assert!(elab.get("invalidations").unwrap().as_u64().unwrap() >= 1, "leaf patch invalidates");

    // The daemon serves from prepacked kernels: the kernels section
    // reports exactly the model's resident panel bytes, in f32 mode.
    let kernels = m.get("kernels").unwrap();
    assert!(model.prepack_bytes() > 0, "trained model must be prepacked");
    assert_eq!(
        kernels.get("prepack_bytes").unwrap().as_u64().unwrap(),
        model.prepack_bytes() as u64,
        "kernels.prepack_bytes reconciles with the model"
    );
    assert!(!kernels.get("int8").unwrap().as_bool().unwrap(), "f32 mode by default");

    // Warm repeat: the same patch against the same base — elaboration
    // cache hot, every GEMM on prepacked panels — answers bit-identically
    // to the cold patch above.
    let body = Json::obj(vec![
        ("base", Json::Str(token.clone())),
        ("patch", Json::Str(leaf2.clone())),
    ])
    .print();
    let (status, warm) = post_json(addr, "/predict", &body);
    assert_eq!(status, 200, "{}", warm.print());
    for field in ["timing_ps", "area_um2", "power_mw"] {
        let cold = patched.get(field).unwrap().as_f64().unwrap();
        let hot = warm.get(field).unwrap().as_f64().unwrap();
        assert_eq!(hot.to_bits(), cold.to_bits(), "warm ECO patch {field}");
    }
    server.join();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let server = Server::start_shared(model(), test_config()).unwrap();
    let addr = server.addr();
    let d = &serve_designs()[3];

    // Get a request in flight, then immediately request shutdown.
    let body = predict_body(d);
    let raw = format!(
        "POST /predict HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    std::thread::sleep(Duration::from_millis(100)); // request accepted
    server.request_shutdown();

    // The in-flight request still completes with a full answer.
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    let payload = response.split_once("\r\n\r\n").unwrap().1;
    assert!(parse_json(payload).unwrap().get("timing_ps").unwrap().as_f64().unwrap() > 0.0);

    // join() returns (all threads drained)...
    server.join();
    // ...and the listener is gone: new connections are refused.
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
}

// ----------------------------------------------------------- hot swap --

/// A second model with different weights (smaller training set), so a
/// hot-swap between the two changes every prediction — trained once and
/// shared, like [`model`].
fn alt_model() -> Arc<SnsModel> {
    static ALT: OnceLock<Arc<SnsModel>> = OnceLock::new();
    Arc::clone(ALT.get_or_init(|| {
        let train = vec![
            vector::simd_alu(2, 8),
            nonlinear::piecewise(4, 8),
            dsp::fir(4, 8),
            sort::radix_sort_stage(4, 8),
        ];
        Arc::new(train_sns(&train, &tiny_config()).0)
    }))
}

/// Writes a two-checkpoint zoo (`gen-a` = [`model`], `gen-b` =
/// [`alt_model`]) under a unique temp dir.
fn two_model_zoo(tag: &str) -> std::path::PathBuf {
    let zoo = std::env::temp_dir().join(format!("sns-e2e-zoo-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&zoo);
    for (id, m) in [("gen-a", model()), ("gen-b", alt_model())] {
        save_to_zoo(
            &m,
            &zoo,
            &ZooCheckpointMeta {
                id: id.to_string(),
                tech: TechNode::N15,
                train_steps: 0,
                labeled_designs: 0,
                seed: 7,
            },
        )
        .expect("zoo checkpoint");
    }
    zoo
}

/// POST returning status, headers, and parsed JSON body.
fn post_json_full(addr: SocketAddr, path: &str, body: &str) -> (u16, Vec<(String, String)>, Json) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    let (status, headers, body) = http_raw(addr, raw.as_bytes());
    (status, headers, parse_json(&body).expect("response body is JSON"))
}

fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
}

/// The hot-swap race: clients hammer `/predict` while the main thread
/// swaps the model back and forth through `/admin/reload`. Every
/// response must be a 200 whose numbers are bit-identical to a direct
/// call on the model generation its `x-sns-model-id` header names —
/// never an error, never a cross-generation mix, never a panic.
fn run_hot_swap_race(replicas: usize, tag: &str) {
    let zoo = two_model_zoo(tag);
    let direct: std::collections::HashMap<(String, String), sns::core::DesignPrediction> = {
        let mut map = std::collections::HashMap::new();
        for d in serve_designs() {
            for (id, m) in [("gen-a", model()), ("gen-b", alt_model())] {
                map.insert(
                    (id.to_string(), d.name.clone()),
                    m.predict_verilog(&d.verilog, &d.top).unwrap(),
                );
            }
        }
        map
    };

    let server = Server::start_named(
        model(),
        "gen-a",
        ServeConfig { replicas, zoo_dir: Some(zoo.clone()), ..test_config() },
    )
    .unwrap();
    let addr = server.addr();
    let designs = serve_designs();

    // 8 clients × 12 requests, in flight across the swap loop below.
    let mut handles = Vec::new();
    for client in 0..8 {
        let designs = designs.clone();
        handles.push(std::thread::spawn(move || {
            (0..12)
                .map(|i| {
                    let d = &designs[(client + i) % designs.len()];
                    let (status, headers, body) =
                        post_json_full(addr, "/predict", &predict_body(d));
                    let model_id =
                        header(&headers, "x-sns-model-id").expect("model id header").to_string();
                    (d.name.clone(), status, model_id, body)
                })
                .collect::<Vec<_>>()
        }));
    }

    // Swap loop: 6 alternating hot-swaps while the clients run.
    let mut swaps = 0;
    for target in ["gen-b", "gen-a", "gen-b", "gen-a", "gen-b", "gen-b"] {
        let body = Json::obj(vec![("model", Json::Str(target.to_string()))]).print();
        let (status, headers, reply) = post_json_full(addr, "/admin/reload", &body);
        assert_eq!(status, 200, "{}", reply.print());
        assert_eq!(header(&headers, "x-sns-model-id"), Some(target));
        assert_eq!(reply.get("model_id").unwrap().as_str().unwrap(), target);
        if reply.get("swapped").unwrap().as_bool().unwrap() {
            swaps += 1;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(swaps, 5, "the double gen-b reload at the end must be the only no-op");

    let responses: Vec<(String, u16, String, Json)> =
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect();
    assert_eq!(responses.len(), 96);

    // A request issued after the last swap must serve gen-b.
    let d = &designs[0];
    let (status, headers, _) = post_json_full(addr, "/predict", &predict_body(d));
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-sns-model-id"), Some("gen-b"));

    for (name, status, model_id, body) in &responses {
        assert_eq!(*status, 200, "{name} via {model_id}: {}", body.print());
        let expect = &direct[&(model_id.clone(), name.clone())];
        for (field, want) in [
            ("timing_ps", expect.timing_ps),
            ("area_um2", expect.area_um2),
            ("power_mw", expect.power_mw),
        ] {
            let got = body.get(field).unwrap().as_f64().unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "{name} {field} via {model_id}");
        }
    }

    // No panic was caught anywhere, every swap is accounted for, and the
    // per-model ledger covers every request.
    let (status, m) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(m.get("panics_total").unwrap().as_u64().unwrap(), 0);
    assert_eq!(m.get("model_swaps").unwrap().as_u64().unwrap(), 5);
    assert_eq!(m.get("reload_errors").unwrap().as_u64().unwrap(), 0);
    let models = m.get("models").unwrap().as_arr().unwrap();
    assert_eq!(models.len(), 2);
    let mut tallied = 0;
    for info in models {
        let id = info.get("id").unwrap().as_str().unwrap();
        assert!(id == "gen-a" || id == "gen-b", "{id}");
        let requests = info.get("requests").unwrap().as_u64().unwrap();
        assert_eq!(info.get("ok").unwrap().as_u64().unwrap(), requests, "{id} all-200");
        tallied += requests;
    }
    assert_eq!(tallied, 97, "every /predict tallied against exactly one model");
    server.join();

    let _ = std::fs::remove_dir_all(&zoo);
}

#[test]
fn hot_swap_race_single_replica_is_atomic_and_bit_identical() {
    run_hot_swap_race(1, "single");
}

#[test]
fn hot_swap_race_in_shard_mode_is_atomic_and_bit_identical() {
    run_hot_swap_race(3, "shard");
}

#[test]
fn admin_reload_guards_cover_missing_zoo_and_unknown_models() {
    // No zoo configured: reload is a structured 409, not a panic.
    let server = Server::start_shared(model(), test_config()).unwrap();
    let (status, _, reply) = post_json_full(server.addr(), "/admin/reload", "");
    assert_eq!(status, 409, "{}", reply.print());
    assert_eq!(reply.get("kind").unwrap().as_str().unwrap(), "reload");
    server.join();

    // Zoo configured: unknown ids 404, bad bodies 400, wrong method 405,
    // and the state they leave behind is still the boot model.
    let zoo = two_model_zoo("guards");
    let server = Server::start_named(
        model(),
        "gen-a",
        ServeConfig { zoo_dir: Some(zoo.clone()), ..test_config() },
    )
    .unwrap();
    let addr = server.addr();
    let (status, _, reply) =
        post_json_full(addr, "/admin/reload", r#"{"model": "gen-z"}"#);
    assert_eq!(status, 404, "{}", reply.print());
    assert_eq!(reply.get("kind").unwrap().as_str().unwrap(), "zoo");
    let (status, _, reply) = post_json_full(addr, "/admin/reload", r#"{"model": 7}"#);
    assert_eq!(status, 400, "{}", reply.print());
    let (status, _) = get(addr, "/admin/reload");
    assert_eq!(status, 405);
    assert_eq!(server.current_model().0, "gen-a");

    // Reloading the already-serving weights is an explicit no-op.
    let (status, _, reply) =
        post_json_full(addr, "/admin/reload", r#"{"model": "gen-a"}"#);
    assert_eq!(status, 200, "{}", reply.print());
    assert!(!reply.get("swapped").unwrap().as_bool().unwrap());
    server.join();
    let _ = std::fs::remove_dir_all(&zoo);
}
