//! End-to-end integration tests spanning the whole workspace: Verilog
//! text → front-end → GraphIR → sampling → training → prediction →
//! persistence.

use sns::circuitformer::{CircuitformerConfig, TrainConfig};
use sns::core::dataset::AugmentConfig;
use sns::core::{load_model, save_model, train_sns, SnsTrainConfig};
use sns::designs::{catalog, dsp, nonlinear, sort, vector};
use sns::graphir::GraphIr;
use sns::netlist::parse_and_elaborate;
use sns::sampler::SampleConfig;
use sns::vsynth::{SynthOptions, VirtualSynthesizer};

fn tiny_config() -> SnsTrainConfig {
    let mut c = SnsTrainConfig::fast();
    c.circuitformer =
        CircuitformerConfig { dim: 32, ffn_dim: 64, max_len: 64, ..CircuitformerConfig::fast() };
    c.cf_train = TrainConfig { epochs: 8, batch_size: 32, threads: 1, ..TrainConfig::fast() };
    c.mlp_train = sns::core::aggmlp::MlpTrainConfig {
        epochs: 400,
        ..sns::core::aggmlp::MlpTrainConfig::fast()
    };
    c.augment = AugmentConfig::none();
    c.sample = SampleConfig::paper_default().with_max_paths(250);
    c
}

#[test]
fn every_catalog_design_flows_through_the_front_end() {
    for d in catalog() {
        let nl = parse_and_elaborate(&d.verilog, &d.top)
            .unwrap_or_else(|e| panic!("{}: {e}", d.name));
        nl.validate().unwrap_or_else(|e| panic!("{}: {e}", d.name));
        let g = GraphIr::from_netlist(&nl);
        assert!(g.vertex_count() > 0, "{} has an empty graph", d.name);
        assert!(!g.terminals().is_empty(), "{} has no path endpoints", d.name);
    }
}

#[test]
fn trained_model_predictions_track_design_size() {
    // Train on a small mixed set, then check that a clearly larger design
    // is predicted to be larger (the ordering matters for DSE, §5.5).
    let train: Vec<_> = vec![
        vector::simd_alu(2, 8),
        vector::simd_alu(16, 32),
        nonlinear::piecewise(4, 8),
        dsp::fir(4, 8),
        dsp::fir(16, 16),
        sort::radix_sort_stage(4, 8),
        nonlinear::lut(32, 8),
        dsp::conv2d(2, 8),
    ];
    let (model, _) = train_sns(&train, &tiny_config());
    // Both test designs are unseen but inside the trained size range.
    let small = vector::simd_alu(4, 8);
    let large = vector::simd_alu(8, 16);
    let ps = model.predict_verilog(&small.verilog, &small.top).unwrap();
    let pl = model.predict_verilog(&large.verilog, &large.top).unwrap();
    assert!(
        pl.area_um2 > ps.area_um2,
        "8x16 SIMD ({:.1}) should out-area 4x8 SIMD ({:.1})",
        pl.area_um2,
        ps.area_um2
    );
    // Power involves a frequency trade-off per path; at this tiny training
    // scale only positivity is guaranteed (accuracy is measured by the
    // Table 7 benchmark, not here).
    assert!(pl.power_mw > 0.0 && ps.power_mw > 0.0);
}

#[test]
fn prediction_is_deterministic() {
    let train = vec![vector::simd_alu(2, 8), dsp::fir(4, 8), nonlinear::piecewise(4, 8)];
    let (model, _) = train_sns(&train, &tiny_config());
    let d = nonlinear::lut(16, 8);
    let a = model.predict_verilog(&d.verilog, &d.top).unwrap();
    let b = model.predict_verilog(&d.verilog, &d.top).unwrap();
    assert_eq!(a.timing_ps, b.timing_ps);
    assert_eq!(a.area_um2, b.area_um2);
    assert_eq!(a.power_mw, b.power_mw);
    assert_eq!(a.critical_path, b.critical_path);
}

#[test]
fn persisted_model_survives_the_round_trip() {
    let train = vec![vector::simd_alu(2, 8), dsp::fir(4, 8), nonlinear::piecewise(4, 8)];
    let (model, _) = train_sns(&train, &tiny_config());
    let path = std::env::temp_dir().join("sns_integration_model.json");
    save_model(&model, &path).unwrap();
    let loaded = load_model(&path).unwrap();
    let d = nonlinear::lut(16, 8);
    assert_eq!(
        model.predict_verilog(&d.verilog, &d.top).unwrap().area_um2,
        loaded.predict_verilog(&d.verilog, &d.top).unwrap().area_um2
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn virtual_synthesizer_and_sns_agree_on_ordering() {
    // Ground-truth areas across three sizes must be monotone, and the
    // runtime of SNS must not explode with design size (it works on
    // sampled paths, §2.2).
    let synth = VirtualSynthesizer::new(SynthOptions::default());
    let sizes = [
        vector::simd_alu(2, 8),
        vector::simd_alu(8, 16),
        vector::simd_alu(16, 32),
    ];
    let mut last_area = 0.0;
    for d in &sizes {
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        let r = synth.synthesize(&nl);
        assert!(r.area_um2 > last_area, "{}", d.name);
        last_area = r.area_um2;
    }
}
