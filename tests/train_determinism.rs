//! Determinism of the self-training label factory across runtime knobs.
//!
//! The daemon's contract (see `sns-train`): same [`DaemonConfig`] + same
//! step count ⇒ **bit-identical model**, at any `SNS_THREADS` /
//! `SNS_BATCH` / `SNS_SYNTH_THREADS`. This test runs the full loop —
//! bootstrap, generate, vsynth-label, active-learning filter, Markov
//! arm, fine-tune, refit, checkpoint — under different knob settings and
//! compares the zoo manifests: every checkpoint's FNV-128 weight hash
//! must match exactly, and a rerun of the first setting must reproduce
//! itself.
//!
//! This test mutates process-global environment variables, so it lives
//! in its own test binary (integration test binaries run sequentially;
//! in-binary parallelism is irrelevant because this is the only test).

use std::path::{Path, PathBuf};

use sns::conformance::GenConfig;
use sns::core::ZooManifest;
use sns::train::{DaemonConfig, TrainDaemon};

fn tiny_daemon_config(zoo: PathBuf) -> DaemonConfig {
    let mut cfg = DaemonConfig::fast();
    cfg.bootstrap_designs = 6;
    cfg.designs_per_step = 4;
    cfg.markov_per_step = 8;
    cfg.max_paths_per_design = 32;
    cfg.refit_every = 2;
    cfg.checkpoint_every = 2;
    cfg.gen = GenConfig { max_items: 8, ..GenConfig::default() };
    cfg.bootstrap.cf_train.epochs = 4;
    cfg.bootstrap.mlp_train.epochs = 60;
    cfg.zoo_dir = Some(zoo);
    cfg
}

/// Runs the daemon for 4 steps under the given env knobs and returns the
/// zoo manifest as (id, weight hash, train steps) rows.
fn run_daemon(tag: &str, threads: &str, batch: &str, synth_threads: &str) -> Vec<(String, String, u64)> {
    std::env::set_var("SNS_THREADS", threads);
    std::env::set_var("SNS_BATCH", batch);
    std::env::set_var("SNS_SYNTH_THREADS", synth_threads);
    let zoo = std::env::temp_dir().join(format!("sns_train_det_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&zoo);

    let mut daemon = TrainDaemon::new(tiny_daemon_config(zoo.clone())).expect("bootstrap");
    daemon.run(4).expect("train loop");
    let rows = manifest_rows(&zoo);
    let _ = std::fs::remove_dir_all(&zoo);
    rows
}

fn manifest_rows(zoo: &Path) -> Vec<(String, String, u64)> {
    ZooManifest::load(zoo)
        .expect("zoo manifest")
        .entries
        .iter()
        .map(|e| (e.id.clone(), e.weight_hash.clone(), e.train_steps))
        .collect()
}

#[test]
fn daemon_checkpoints_are_bit_identical_across_thread_and_batch_knobs() {
    let baseline = run_daemon("t1", "1", "2", "1");
    // checkpoint_every=2 over 4 steps: periodic at steps 2 and 4; the
    // final checkpoint coincides with the step-4 one (idempotent).
    assert_eq!(baseline.len(), 2, "{baseline:?}");
    assert!(baseline.iter().any(|(_, _, steps)| *steps == 4));

    let wide = run_daemon("t4", "4", "5", "3");
    assert_eq!(
        baseline, wide,
        "weight hashes must not depend on SNS_THREADS/SNS_BATCH/SNS_SYNTH_THREADS"
    );

    let replay = run_daemon("t1b", "1", "2", "1");
    assert_eq!(baseline, replay, "same seed + same steps must replay bit-identically");
}
