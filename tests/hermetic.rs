//! The workspace must stay hermetic: every dependency of every crate is
//! a path dependency inside this repository, so `cargo build` never
//! touches a registry. (The `[workspace.dependencies]` table in the root
//! manifest is the single source of truth; this test walks every
//! manifest and rejects anything version- or registry-shaped.)

use std::fs;
use std::path::PathBuf;

/// Every Cargo.toml in the workspace (root + crates/*).
fn manifests() -> Vec<PathBuf> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut out = vec![root.join("Cargo.toml")];
    for entry in fs::read_dir(root.join("crates")).expect("crates dir") {
        let path = entry.expect("dir entry").path().join("Cargo.toml");
        if path.is_file() {
            out.push(path);
        }
    }
    out
}

/// Whether a `[... dependencies]` section header is active.
fn is_dependency_section(header: &str) -> bool {
    let h = header.trim_matches(|c| c == '[' || c == ']');
    h == "dependencies"
        || h == "dev-dependencies"
        || h == "build-dependencies"
        || h == "workspace.dependencies"
        || h.starts_with("target.") && h.ends_with("dependencies")
}

#[test]
fn every_dependency_is_a_path_dependency() {
    let mut manifest_count = 0;
    for path in manifests() {
        manifest_count += 1;
        let text = fs::read_to_string(&path).expect("read manifest");
        let mut in_deps = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_deps = is_dependency_section(line);
                continue;
            }
            if !in_deps {
                continue;
            }
            let (name, value) = match line.split_once('=') {
                Some(pair) => pair,
                None => continue,
            };
            let name = name.trim();
            let value = value.trim();
            let at = format!("{}:{} ({name})", path.display(), lineno + 1);
            assert!(
                !value.starts_with('"'),
                "{at}: `name = \"version\"` is a registry dependency"
            );
            assert!(
                !value.contains("version"),
                "{at}: version requirements imply a registry fetch"
            );
            assert!(
                !value.contains("git"),
                "{at}: git dependencies are not hermetic"
            );
            let is_path = value.contains("path");
            let is_workspace_ref =
                name.ends_with(".workspace") || value.contains("workspace = true");
            assert!(
                is_path || is_workspace_ref,
                "{at}: dependency is neither a path nor a workspace reference: {line}"
            );
        }
    }
    // Root + the 12 member crates; fails loudly if the walk goes wrong.
    assert!(manifest_count >= 13, "only found {manifest_count} manifests");
}
