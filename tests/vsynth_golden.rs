//! Golden snapshot tests for the virtual synthesizer's labels.
//!
//! The Circuitformer is trained on `sns-vsynth` outputs, so any drift in
//! those labels silently invalidates every trained model and benchmark
//! number in the repo. This test pins the exact (bit-for-bit, via the
//! shortest-round-trip JSON printer) area/timing/power labels of a
//! design suite to `tests/golden/vsynth_labels.json`.
//!
//! After an *intentional* label change, regenerate the snapshot with:
//!
//! ```text
//! SNS_BLESS=1 cargo test --test vsynth_golden
//! ```
//!
//! and commit the diff — the point is that label changes show up in
//! review as data, never as silent drift.

use std::path::PathBuf;

use sns::designs::{dsp, nonlinear, sort, vector, Design};
use sns::netlist::parse_and_elaborate;
use sns::rt::json::{parse as parse_json, Json};
use sns::vsynth::{SynthOptions, VirtualSynthesizer};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/vsynth_labels.json")
}

/// The pinned suite: small, fast, and spanning every design family the
/// catalog exercises (vector, DSP, nonlinear, sort).
fn suite() -> Vec<Design> {
    vec![
        vector::simd_alu(2, 8),
        vector::simd_alu(4, 16),
        dsp::fir(8, 8),
        dsp::conv2d(2, 8),
        nonlinear::piecewise(4, 8),
        nonlinear::lut(32, 8),
        sort::radix_sort_stage(4, 8),
    ]
}

/// Synthesizes one design into its label object. Every field that feeds
/// training or evaluation is pinned; runtime (wall-clock) is not.
fn labels(d: &Design) -> Json {
    let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap_or_else(|e| panic!("{}: {e}", d.name));
    let r = VirtualSynthesizer::new(SynthOptions::default()).synthesize(&nl);
    Json::obj(vec![
        ("area_um2", Json::Num(r.area_um2)),
        ("timing_ps", Json::Num(r.timing_ps)),
        ("power_mw", Json::Num(r.power_mw)),
        ("dynamic_mw", Json::Num(r.dynamic_mw)),
        ("leakage_mw", Json::Num(r.leakage_mw)),
        ("gate_count", Json::UInt(r.gate_count)),
        ("transistor_count", Json::UInt(r.transistor_count)),
    ])
}

fn current_snapshot() -> Json {
    Json::Obj(suite().iter().map(|d| (d.name.clone(), labels(d))).collect())
}

#[test]
fn vsynth_labels_match_the_golden_snapshot() {
    let current = current_snapshot();
    let path = golden_path();

    if std::env::var("SNS_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, current.pretty()).unwrap();
        eprintln!("blessed {} designs into {}", suite().len(), path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\n(first run? bless it: SNS_BLESS=1 cargo test --test vsynth_golden)",
            path.display()
        )
    });
    let golden = parse_json(&text).expect("golden snapshot is valid JSON");

    // Compare per design and per field so a drift names exactly what
    // moved instead of dumping two opaque blobs.
    let golden_names: Vec<&String> = match &golden {
        Json::Obj(fields) => fields.iter().map(|(k, _)| k).collect(),
        other => panic!("golden snapshot must be an object, got {}", other.print()),
    };
    let suite = suite();
    assert_eq!(
        golden_names,
        suite.iter().map(|d| &d.name).collect::<Vec<_>>(),
        "design suite changed — rebless the snapshot (SNS_BLESS=1) and review the diff"
    );
    for d in &suite {
        let got = current.get(&d.name).unwrap();
        let want = golden.get(&d.name).unwrap();
        for field in [
            "area_um2",
            "timing_ps",
            "power_mw",
            "dynamic_mw",
            "leakage_mw",
            "gate_count",
            "transistor_count",
        ] {
            let g = got.get(field).unwrap();
            let w = want.get(field).unwrap();
            assert_eq!(
                g.print(),
                w.print(),
                "{}.{field} drifted from the golden label — if intentional, \
                 rebless with SNS_BLESS=1 and commit the diff",
                d.name
            );
        }
    }
}

#[test]
fn labels_are_reproducible_within_a_run() {
    // The snapshot is only meaningful if synthesis is deterministic.
    let d = vector::simd_alu(2, 8);
    assert_eq!(labels(&d).print(), labels(&d).print());
}
