//! Invariants lifted directly from the paper's text, tables and figures.

use sns::designs::boomlike::BoomParams;
use sns::designs::diannao::{DataType, DianNaoParams};
use sns::graphir::{GraphIr, Vocab, VocabType};
use sns::netlist::parse_and_elaborate;
use sns::sampler::{PathSampler, SampleConfig};
use sns::vsynth::{scale_area, scale_delay, scale_power, TechNode};

/// §3.1 / Table 2: the rounded vocabulary has exactly 79 entries.
#[test]
fn table_1_vocabulary_is_79_entries() {
    assert_eq!(Vocab::new().len(), 79);
}

/// Table 2: Circuitformer has 2 layers, 2 heads, 128-dim embeddings,
/// 512 max input, ~1.4 M parameters.
#[test]
fn table_2_circuitformer_hyperparameters() {
    let cfg = sns::circuitformer::CircuitformerConfig::paper();
    assert_eq!((cfg.layers, cfg.heads, cfg.dim, cfg.max_len), (2, 2, 128, 512));
    let mut rng = sns_rt::rng::StdRng::seed_from_u64(0);
    let m = sns::circuitformer::Circuitformer::new(cfg, &mut rng);
    let params = m.parameter_count();
    assert!((1_300_000..1_500_000).contains(&params), "{params}");
}

/// Figure 2: the 8-bit MAC produces the exact GraphIR and the exact four
/// complete circuit paths shown in the figure.
#[test]
fn figure_2_mac_walkthrough() {
    let nl = parse_and_elaborate(
        "module mac (input clk, input [7:0] a, b, output [15:0] y);
             reg [15:0] acc;
             always @(posedge clk) acc <= acc + a * b;
             assign y = acc;
         endmodule",
        "mac",
    )
    .unwrap();
    let g = GraphIr::from_netlist(&nl);
    let mut tokens: Vec<String> = g.vertices().map(|v| v.vertex.token_name()).collect();
    tokens.sort();
    assert_eq!(tokens, vec!["add16", "dff16", "io16", "io4", "io8", "io8", "mul16"]);

    let paths = PathSampler::new(SampleConfig::exhaustive()).sample(&g);
    let mut named: Vec<String> =
        paths.iter().map(|p| p.token_names(&g).join(",")).collect();
    named.sort();
    assert_eq!(
        named,
        vec![
            "dff16,add16,dff16",
            "dff16,io16",
            "io8,mul16,add16,dff16",
            "io8,mul16,add16,dff16",
        ]
    );
}

/// §3.1: width rounding maps 12–23-bit dividers to div16 and reduces the
/// vocabulary; Table 1 gives arithmetic units a minimum width of 8.
#[test]
fn width_rounding_examples() {
    for w in 12..=23 {
        assert_eq!(VocabType::Div.round_width(w), 16);
    }
    assert_eq!(VocabType::Add.round_width(3), 8);
    assert_eq!(VocabType::Io.round_width(3), 4);
    assert_eq!(VocabType::Mul.round_width(999), 64);
}

/// §3.2 / Algorithm 1: k = 1 samples exhaustively; larger k samples a
/// subset; every path is terminal-to-terminal.
#[test]
fn algorithm_1_k_parameter() {
    let d = sns::designs::vector::simd_alu(4, 8);
    let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
    let g = GraphIr::from_netlist(&nl);
    let all = PathSampler::new(SampleConfig::exhaustive()).sample(&g);
    let sparse = PathSampler::new(SampleConfig::paper_default().with_k(5)).sample(&g);
    assert!(!all.is_empty());
    assert!(sparse.len() <= all.len());
    for p in all.iter().chain(sparse.iter()) {
        assert!(g.vertex(p.vertices()[0]).is_terminal());
        assert!(g.vertex(*p.vertices().last().unwrap()).is_terminal());
    }
}

/// Table 10: the BOOM grid enumerates exactly 2592 configurations.
#[test]
fn table_10_grid_size() {
    assert_eq!(BoomParams::grid().len(), 2592);
}

/// Table 13: the DianNao grid enumerates exactly 576 configurations.
#[test]
fn table_13_grid_size() {
    let mut count = 0;
    for _tn in [4u32, 8, 16, 32] {
        for _dt in DataType::ALL {
            for _stages in [3u32, 8] {
                for _red in [4u32, 8, 16] {
                    for _act in [2u32, 4, 8, 16] {
                        count += 1;
                    }
                }
            }
        }
    }
    assert_eq!(count, 576);
}

/// Table 12: the published 65 nm DianNao numbers scale to the paper's
/// 15 nm row.
#[test]
fn table_12_technology_scaling() {
    let area = scale_area(0.846563, TechNode::N65, TechNode::N15);
    let delay = scale_delay(1.02, TechNode::N65, TechNode::N15);
    let power = scale_power(132.0, TechNode::N65, TechNode::N15);
    assert!((area - 0.097302).abs() < 5e-4);
    assert!((delay - 0.33).abs() < 5e-3);
    assert!((power - 65.90).abs() < 0.5);
}

/// §2 footnote: gate and transistor counts are reported by the
/// gate-level expansion, with a plausible transistors-per-gate ratio.
#[test]
fn gate_and_transistor_statistics() {
    let d = sns::designs::mlaccel::systolic_array(4, 8);
    let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
    let r = sns::vsynth::VirtualSynthesizer::new(Default::default()).synthesize(&nl);
    let ratio = r.transistor_count as f64 / r.gate_count as f64;
    // The paper's 18M gates ≈ 67.8M transistors gives ratio ≈ 3.77.
    assert!((2.0..8.0).contains(&ratio), "ratio {ratio}");
}

/// §3.3: the Circuitformer input is token order-sensitive, unlike a
/// linear model over vertex counts (the MAC example).
#[test]
fn section_3_3_order_sensitivity_of_labels() {
    use sns::vsynth::{path_physical, CellLibrary, UnitCache};
    let lib = CellLibrary::freepdk15();
    let mut cache = UnitCache::new();
    let mac = path_physical(
        &[(VocabType::Io, 8), (VocabType::Mul, 16), (VocabType::Add, 16), (VocabType::Dff, 16)],
        &lib,
        &mut cache,
    );
    let swapped = path_physical(
        &[(VocabType::Io, 8), (VocabType::Add, 16), (VocabType::Mul, 16), (VocabType::Dff, 16)],
        &lib,
        &mut cache,
    );
    assert!(mac.timing_ps < swapped.timing_ps, "MAC fusion must be cheaper");
    assert!(mac.area_um2 < swapped.area_um2);
}

/// The DianNao generator supports every Table 13 datatype, with hardware
/// cost ordered by arithmetic complexity (int8 < int16 < fp32).
#[test]
fn diannao_datatype_cost_ordering() {
    let cells = |dt: DataType| {
        let p = DianNaoParams { tn: 4, datatype: dt, ..Default::default() };
        let d = sns::designs::diannao::diannao(&p);
        let nl = parse_and_elaborate(&d.verilog, &d.top).unwrap();
        sns::vsynth::VirtualSynthesizer::new(Default::default())
            .synthesize(&nl)
            .area_um2
    };
    let int8 = cells(DataType::Int8);
    let int16 = cells(DataType::Int16);
    let fp32 = cells(DataType::Fp32);
    assert!(int8 < int16, "int8 {int8} < int16 {int16}");
    assert!(int16 < fp32, "int16 {int16} < fp32 {fp32}");
}
