//! Property-based tests over the core data structures and the front-end:
//! randomized inputs must uphold the structural invariants.
//!
//! Each test is a seeded loop over randomized cases (driven by
//! `sns_rt::rng`), preserving the properties the earlier proptest suite
//! checked while keeping the build hermetic.

use sns::graphir::{GraphIr, Vocab, VocabType};
use sns::netlist::parse_and_elaborate;
use sns::sampler::{PathSampler, SampleConfig};
use sns_rt::rng::StdRng;

/// A random combinational expression over two 8-bit inputs, recursing to
/// at most `depth` operator levels (mirrors the old proptest strategy).
fn expr(rng: &mut StdRng, depth: u32) -> String {
    let leaf = |rng: &mut StdRng| match rng.gen_range(0..3u32) {
        0 => "a".to_string(),
        1 => "b".to_string(),
        _ => format!("8'd{}", rng.gen_range(0u64..256)),
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.gen_range(0..4u32) {
        0 => leaf(rng),
        1 => {
            let op = ["+", "-", "*", "&", "|", "^"][rng.gen_range(0..6usize)];
            let l = expr(rng, depth - 1);
            let r = expr(rng, depth - 1);
            format!("({l} {op} {r})")
        }
        2 => {
            let l = expr(rng, depth - 1);
            let r = expr(rng, depth - 1);
            format!("(({l} < {r}) ? {l} : {r})")
        }
        _ => format!("(~{})", expr(rng, depth - 1)),
    }
}

/// Any generated expression parses, elaborates, validates, and builds a
/// GraphIR whose every sampled path is terminal-to-terminal.
#[test]
fn random_expressions_flow_through_the_pipeline() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = expr(&mut rng, 3);
        let src = format!(
            "module m (input clk, input [7:0] a, b, output [7:0] y);
                 reg [7:0] r;
                 always @(posedge clk) r <= {e};
                 assign y = r;
             endmodule"
        );
        let nl = parse_and_elaborate(&src, "m").unwrap_or_else(|err| panic!("{e}: {err}"));
        assert!(nl.validate().is_ok(), "seed {seed}: {e}");
        let g = GraphIr::from_netlist(&nl);
        let paths = PathSampler::new(SampleConfig::paper_default().with_max_paths(500)).sample(&g);
        for p in &paths {
            assert!(g.vertex(p.vertices()[0]).is_terminal(), "seed {seed}");
            assert!(g.vertex(*p.vertices().last().unwrap()).is_terminal(), "seed {seed}");
            for &v in &p.vertices()[1..p.len() - 1] {
                assert!(!g.vertex(v).is_terminal(), "seed {seed}");
            }
        }
    }
}

/// Width rounding always lands in the type's allowed set and is monotone
/// in the raw width.
#[test]
fn width_rounding_invariants() {
    let mut rng = StdRng::seed_from_u64(0xA11);
    for _ in 0..256 {
        let w1 = rng.gen_range(1u32..200);
        let w2 = rng.gen_range(1u32..200);
        for t in VocabType::ALL {
            let r1 = t.round_width(w1);
            let r2 = t.round_width(w2);
            assert!(t.allowed_widths().contains(&r1));
            if w1 <= w2 {
                assert!(r1 <= r2, "{t}: {w1}->{r1} but {w2}->{r2}");
            }
        }
    }
}

/// Every vocabulary round trip is stable: vertex -> token id -> vertex.
#[test]
fn vocab_round_trip() {
    let vocab = Vocab::new();
    for idx in 0..79 {
        let v = vocab.vertex(idx);
        assert_eq!(vocab.token_id(v), Some(idx));
    }
}

/// RRSE and MAEP are non-negative; RRSE of the truth itself is zero.
#[test]
fn metric_properties() {
    use sns::core::{maep, rrse};
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(700 + seed);
        let n = rng.gen_range(3..40usize);
        let values: Vec<f64> =
            (0..n).map(|_| (rng.gen_range(0.0f64..6.0)).exp2() * rng.gen_range(1.0f64..1e3)).collect();
        assert_eq!(rrse(&values, &values), 0.0, "seed {seed}");
        assert_eq!(maep(&values, &values), 0.0, "seed {seed}");
        let shifted: Vec<f64> = values.iter().map(|v| v * 1.1).collect();
        assert!(rrse(&shifted, &values) >= 0.0, "seed {seed}");
        assert!((maep(&shifted, &values) - 10.0).abs() < 1e-6, "seed {seed}");
    }
}

/// The Markov chain only ever emits tokens it was trained on (no
/// smoothing), and rows stay normalized with smoothing.
#[test]
fn markov_properties() {
    use sns::genmodel::MarkovChain;
    let paths = vec![vec![0usize, 1, 2], vec![2, 1, 0], vec![1, 1, 2]];
    let mc = MarkovChain::fit(4, &paths, 0.0);
    for seed in 0..1000u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let out = mc.generate(&mut rng, 32);
        for &t in &out {
            assert!(t <= 2, "seed {seed}: token 3 never appears in training data");
        }
    }
    let smoothed = MarkovChain::fit(4, &paths, 0.5);
    for from in 0..=4usize {
        let total: f64 = (0..=4).map(|to| smoothed.prob(from, to)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}

/// The label scaler inverts its own transform for any positive labels.
#[test]
fn scaler_round_trip() {
    use sns::circuitformer::LabelScaler;
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(900 + seed);
        let big = |rng: &mut StdRng| rng.gen_range(1.0f64..1e5);
        let small = |rng: &mut StdRng| rng.gen_range(1e-4f64..10.0);
        let rows = [
            [big(&mut rng), big(&mut rng), small(&mut rng)],
            [big(&mut rng), big(&mut rng), small(&mut rng)],
        ];
        let s = LabelScaler::fit(&rows);
        for raw in rows {
            let back = s.inverse(s.transform(raw));
            for dim in 0..3 {
                let rel = (back[dim] - raw[dim]).abs() / raw[dim];
                assert!(rel < 1e-2, "seed {seed} dim {dim}: {} vs {}", back[dim], raw[dim]);
            }
        }
    }
}

/// Unit physical characteristics are monotone in width for datapath
/// operators.
#[test]
fn unit_cost_monotonicity() {
    use sns::vsynth::{unit_physical, CellLibrary};
    let lib = CellLibrary::freepdk15();
    for (t, w_small, w_large) in [
        (VocabType::Add, 8u32, 32u32),
        (VocabType::Mul, 8, 32),
        (VocabType::Mux, 4, 64),
        (VocabType::Sh, 8, 64),
        (VocabType::Eq, 8, 64),
    ] {
        let small = unit_physical(t, w_small, &lib);
        let large = unit_physical(t, w_large, &lib);
        assert!(large.area_um2 > small.area_um2);
        assert!(large.delay_ps >= small.delay_ps);
        assert!(large.leakage_nw > small.leakage_nw);
    }
}
