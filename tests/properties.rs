//! Property-based tests (proptest) over the core data structures and the
//! front-end: randomized inputs must uphold the structural invariants.

use proptest::prelude::*;

use sns::graphir::{GraphIr, Vocab, VocabType};
use sns::netlist::parse_and_elaborate;
use sns::sampler::{PathSampler, SampleConfig};

/// Strategy: a random combinational expression over two 8-bit inputs.
fn expr(depth: u32) -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        (0u64..256).prop_map(|v| format!("8'd{v}")),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just("+"), Just("-"), Just("*"), Just("&"), Just("|"), Just("^")
            ])
                .prop_map(|(l, r, op)| format!("({l} {op} {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("(({l} < {r}) ? {l} : {r})")),
            inner.prop_map(|e| format!("(~{e})")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any generated expression parses, elaborates, validates, and builds
    /// a GraphIR whose every sampled path is terminal-to-terminal.
    #[test]
    fn random_expressions_flow_through_the_pipeline(e in expr(3)) {
        let src = format!(
            "module m (input clk, input [7:0] a, b, output [7:0] y);
                 reg [7:0] r;
                 always @(posedge clk) r <= {e};
                 assign y = r;
             endmodule"
        );
        let nl = parse_and_elaborate(&src, "m").unwrap();
        prop_assert!(nl.validate().is_ok());
        let g = GraphIr::from_netlist(&nl);
        let paths = PathSampler::new(SampleConfig::paper_default().with_max_paths(500)).sample(&g);
        for p in &paths {
            prop_assert!(g.vertex(p.vertices()[0]).is_terminal());
            prop_assert!(g.vertex(*p.vertices().last().unwrap()).is_terminal());
            for &v in &p.vertices()[1..p.len() - 1] {
                prop_assert!(!g.vertex(v).is_terminal());
            }
        }
    }

    /// Width rounding always lands in the type's allowed set and is
    /// monotone in the raw width.
    #[test]
    fn width_rounding_invariants(w1 in 1u32..200, w2 in 1u32..200) {
        for t in VocabType::ALL {
            let r1 = t.round_width(w1);
            let r2 = t.round_width(w2);
            prop_assert!(t.allowed_widths().contains(&r1));
            if w1 <= w2 {
                prop_assert!(r1 <= r2, "{t}: {w1}->{r1} but {w2}->{r2}");
            }
        }
    }

    /// Every vocabulary round trip is stable: vertex -> token id -> vertex.
    #[test]
    fn vocab_round_trip(idx in 0usize..79) {
        let vocab = Vocab::new();
        let v = vocab.vertex(idx);
        prop_assert_eq!(vocab.token_id(v), Some(idx));
    }

    /// RRSE and MAEP are non-negative; RRSE of the truth itself is zero.
    #[test]
    fn metric_properties(values in proptest::collection::vec(1.0f64..1e6, 3..40)) {
        use sns::core::{maep, rrse};
        prop_assert_eq!(rrse(&values, &values), 0.0);
        prop_assert_eq!(maep(&values, &values), 0.0);
        let shifted: Vec<f64> = values.iter().map(|v| v * 1.1).collect();
        prop_assert!(rrse(&shifted, &values) >= 0.0);
        prop_assert!((maep(&shifted, &values) - 10.0).abs() < 1e-6);
    }

    /// The Markov chain only ever emits tokens it was trained on (no
    /// smoothing), and rows stay normalized with smoothing.
    #[test]
    fn markov_properties(seed in 0u64..1000) {
        use rand::SeedableRng;
        use sns::genmodel::MarkovChain;
        let paths = vec![vec![0usize, 1, 2], vec![2, 1, 0], vec![1, 1, 2]];
        let mc = MarkovChain::fit(4, &paths, 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let out = mc.generate(&mut rng, 32);
        for &t in &out {
            prop_assert!(t <= 2, "token 3 never appears in training data");
        }
        let smoothed = MarkovChain::fit(4, &paths, 0.5);
        for from in 0..=4usize {
            let total: f64 = (0..=4).map(|to| smoothed.prob(from, to)).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
    }

    /// The label scaler inverts its own transform for any positive labels.
    #[test]
    fn scaler_round_trip(
        a in 1.0f64..1e5, b in 1.0f64..1e5, c in 1e-4f64..10.0,
        d in 1.0f64..1e5, e in 1.0f64..1e5, f in 1e-4f64..10.0,
    ) {
        use sns::circuitformer::LabelScaler;
        let s = LabelScaler::fit(&[[a, b, c], [d, e, f]]);
        for raw in [[a, b, c], [d, e, f]] {
            let back = s.inverse(s.transform(raw));
            for dim in 0..3 {
                let rel = (back[dim] - raw[dim]).abs() / raw[dim];
                prop_assert!(rel < 1e-2, "dim {dim}: {} vs {}", back[dim], raw[dim]);
            }
        }
    }

    /// Unit physical characteristics are monotone in width for datapath
    /// operators.
    #[test]
    fn unit_cost_monotonicity(pair in prop_oneof![
        Just((VocabType::Add, 8u32, 32u32)),
        Just((VocabType::Mul, 8, 32)),
        Just((VocabType::Mux, 4, 64)),
        Just((VocabType::Sh, 8, 64)),
        Just((VocabType::Eq, 8, 64)),
    ]) {
        use sns::vsynth::{unit_physical, CellLibrary};
        let (t, w_small, w_large) = pair;
        let lib = CellLibrary::freepdk15();
        let small = unit_physical(t, w_small, &lib);
        let large = unit_physical(t, w_large, &lib);
        prop_assert!(large.area_um2 > small.area_um2);
        prop_assert!(large.delay_ps >= small.delay_ps);
        prop_assert!(large.leakage_nw > small.leakage_nw);
    }
}
