// Pure wiring: replication, bit-select, and a constant-driven product.
// Synthesizes to zero (or constant-only) gates — labels must stay finite
// and non-negative, with dynamic power legitimately zero.
module top (input clk, input [5:0] i0, input [2:0] i1, output [0:0] o0, output [4:0] o1, output [9:0] o2);
    wire [0:0] s0;
    assign s0 = {3{i1}};
    wire [4:0] s1;
    assign s1 = i0[3];
    wire [3:0] s2;
    assign s2 = 8'd232;
    wire [9:0] s3;
    assign s3 = ((8'd1 != (1'd0 == s2)) * s2[0]);
    assign o0 = s0;
    assign o1 = s1;
    assign o2 = s3;
endmodule
