// Coverage: concatenation, replication, reductions, and shifts feeding a
// case-based combinational mux.
module top (input [3:0] i0, input [1:0] i1, output [7:0] o0, output [3:0] o1);
    wire [7:0] s0;
    assign s0 = {i1, i0, i1};
    wire [0:0] s1;
    assign s1 = (^i0);
    wire [3:0] s2;
    assign s2 = {4{s1}};
    reg [3:0] s3;
    always @(*) begin
        s3 = 4'd0;
        case (i1)
            2'd0: s3 = (i0 << 1);
            2'd1: s3 = (i0 >> i1);
            2'd2: s3 = s2;
            2'd3: s3 = (i0 ^ s2);
        endcase
    end
    assign o0 = s0;
    assign o1 = s3;
endmodule
