// Coverage: a write-enabled memory read combinationally through a wire
// address, plus a register updated by a nested always-block if/else tree.
module top (input clk, input [2:0] i0, input [3:0] i1, output [3:0] o0, output [3:0] o1);
    wire [2:0] sa;
    assign sa = (i1[2:0] ^ i0);
    reg [3:0] m0 [0:7];
    wire [3:0] s0;
    always @(posedge clk) begin
        if (i0[0]) m0[i0] <= i1;
    end
    assign s0 = m0[sa];
    reg [3:0] s1;
    always @(posedge clk) begin
        if (i0[1]) begin
            if (i0[2]) s1 <= (s0 + i1);
            else s1 <= (s0 - i1);
        end else s1 <= s0;
    end
    assign o0 = s0;
    assign o1 = s1;
endmodule
