// Regression: a combinational cell reading a register net that expanded
// before the Dff cell got dangling fresh-input bits instead of the Q bank,
// so the gate-level feedback path read constant zero while the netlist
// simulator accumulated. Fixed by the register-bank prepass in
// elaborate_gates.
module top (input clk, input [3:0] i0, output [3:0] o0);
    reg [3:0] s0;
    always @(posedge clk) s0 <= s0 + i0;
    assign o0 = s0;
endmodule
