// Regression: division/modulo by zero. The vsynth restoring-array divider
// never borrows on a zero divisor, yielding an all-ones quotient and the
// dividend as remainder; the netlist simulator used to return 0 for both.
module top (input [3:0] i0, input [3:0] i1, output [3:0] o0, output [3:0] o1);
    wire [3:0] s0;
    assign s0 = i0 / i1;
    wire [3:0] s1;
    assign s1 = i0 % i1;
    assign o0 = s0;
    assign o1 = s1;
endmodule
