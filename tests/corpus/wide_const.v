// Regression: a constant adapted to a context wider than 64 bits (here a
// 72-bit concat equality) used to shift its 64-bit payload out of range in
// the gate expander; the high bits must read as zero-extension.
module top (input [35:0] i0, input [35:0] i1, output [0:0] o0);
    wire [71:0] s0;
    assign s0 = {i0, i1};
    wire [0:0] s1;
    assign s1 = (s0 == 5'd9);
    assign o0 = s1;
endmodule
