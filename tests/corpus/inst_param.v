// Coverage: a parameterized helper instance next to arithmetic comparisons
// and a 2:1 mux, the generator's instance vocabulary.
module cfm_unit #(parameter W = 4) (input [W-1:0] a, input [W-1:0] b, output [W-1:0] y);
    assign y = (a & b) + (a ^ b);
endmodule
module top (input [5:0] i0, input [5:0] i1, output [5:0] o0, output [5:0] o1);
    wire [5:0] s0;
    cfm_unit #(.W(6)) u0 (.a(i0), .b(i1), .y(s0));
    wire [5:0] s1;
    assign s1 = ((i0 < i1) ? (s0 * i0) : (s0 - i1));
    assign o0 = s0;
    assign o1 = s1;
endmodule
