// Parallel-elaboration region-stitch regression (generator seed 1786):
// a non-wiring cell that expands to pure rewiring, with inputs defined in
// an earlier chunk, must not leave an empty region span after stitching.
module top (input clk, input [11:0] i0, output [8:0] o0, output [10:0] o1, output [3:0] o2, output [2:0] o3);
    reg [8:0] s0;
    always @(posedge clk) s0 <= (1'd0 % (1'd0 | 1'd0));
    wire [10:0] s1;
    assign s1 = (1'd0 % {3{i0}});
    reg [3:0] s2;
    always @(*) begin
        s2 = s1;
        case (s0[1:0])
            2'd0: s2 = (1'd0 / {s1, s0, i0});
            2'd1: s2 = (s1 >> 1'd0);
            2'd2: s2 = ((s1 < 1'd0) * s0);
            2'd3: s2 = ({s1, s1} >= 1'd0);
        endcase
    end
    wire [2:0] s3;
    assign s3 = ((|(s1 <= 1'd0)) & (1'd0 ? 1'd0 : {s0, i0, s1}));
    assign o0 = s0;
    assign o1 = s1;
    assign o2 = s2;
    assign o3 = s3;
endmodule
