//! Scheduling determinism: the parallel path-inference stage must give
//! bit-identical predictions at any `SNS_THREADS` × `SNS_BATCH` setting.
//! Only pure Circuitformer calls run in parallel, the packed batched
//! forward is per-path exact (row-wise layers + per-span attention), and
//! the aggregation reduction stays serial in path order — so neither the
//! thread count nor the batch size may change a single output bit.

use sns::circuitformer::{CircuitformerConfig, TrainConfig};
use sns::core::aggmlp::MlpTrainConfig;
use sns::core::dataset::AugmentConfig;
use sns::core::{train_sns, SnsTrainConfig};
use sns::designs::{nonlinear, vector};
use sns::netlist::parse_and_elaborate;
use sns::sampler::SampleConfig;

/// One test (not several) so the `SNS_THREADS` / `SNS_BATCH` environment
/// variables are never mutated concurrently.
#[test]
fn predictions_are_identical_across_thread_counts_and_batch_sizes() {
    let designs = vec![vector::simd_alu(2, 8), nonlinear::piecewise(4, 8)];
    let mut cfg = SnsTrainConfig::fast();
    cfg.circuitformer = CircuitformerConfig {
        dim: 32,
        ffn_dim: 64,
        max_len: 64,
        ..CircuitformerConfig::fast()
    };
    cfg.cf_train = TrainConfig { epochs: 2, batch_size: 32, threads: 1, ..TrainConfig::fast() };
    cfg.mlp_train = MlpTrainConfig { epochs: 20, ..MlpTrainConfig::fast() };
    cfg.augment = AugmentConfig::none();
    cfg.sample = SampleConfig::paper_default().with_max_paths(300);
    let (model, _) = train_sns(&designs, &cfg);

    let nl = parse_and_elaborate(&designs[0].verilog, &designs[0].top).unwrap();
    let mut baseline = None;
    for threads in ["1", "2", "8"] {
        for batch in ["1", "4", "32"] {
            std::env::set_var("SNS_THREADS", threads);
            std::env::set_var("SNS_BATCH", batch);
            // Start cold each time so the batched fan-out actually runs.
            model.clear_cache();
            let pred = model.predict_netlist(&nl, None);
            assert!(model.cached_paths() > 0, "prediction should fill the cache");
            match &baseline {
                None => baseline = Some(pred),
                Some(base) => {
                    // Everything except the wall-clock runtime must match
                    // exactly (not approximately).
                    assert_eq!(base.timing_ps, pred.timing_ps, "threads={threads} batch={batch}");
                    assert_eq!(base.area_um2, pred.area_um2, "threads={threads} batch={batch}");
                    assert_eq!(base.power_mw, pred.power_mw, "threads={threads} batch={batch}");
                    assert_eq!(base.path_count, pred.path_count, "threads={threads} batch={batch}");
                    assert_eq!(
                        base.critical_path, pred.critical_path,
                        "threads={threads} batch={batch}"
                    );
                }
            }
        }
    }
    // A warm cache must give the same answer without recomputing.
    let warm = model.predict_netlist(&nl, None);
    let base = baseline.unwrap();
    assert_eq!(base.timing_ps, warm.timing_ps);
    assert_eq!(base.area_um2, warm.area_um2);
    assert_eq!(base.power_mw, warm.power_mw);
    std::env::remove_var("SNS_THREADS");
    std::env::remove_var("SNS_BATCH");
}
