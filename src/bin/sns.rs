//! The `sns` command-line tool: train, predict, and synthesize from the
//! shell.
//!
//! ```text
//! sns train --out model.json [--designs N] [--paper]
//! sns predict --model model.json --verilog design.v --top mymod [--activity act.csv]
//! sns synth --verilog design.v --top mymod
//! sns catalog
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use sns::core::{load_model, save_model, train_sns, SnsTrainConfig};
use sns::designs::catalog;
use sns::netlist::parse_and_elaborate;
use sns::vsynth::{SynthOptions, VirtualSynthesizer};

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  sns train --out <model.json> [--designs <n>] [--paper]
  sns predict --model <model.json> --verilog <file.v> --top <module> [--activity <act.csv>]
  sns synth --verilog <file.v> --top <module> [--effort <iterations>]
  sns catalog"
    );
    ExitCode::from(2)
}

fn arg(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args),
        Some("predict") => cmd_predict(&args),
        Some("synth") => cmd_synth(&args),
        Some("catalog") => cmd_catalog(),
        _ => usage(),
    }
}

fn cmd_train(args: &[String]) -> ExitCode {
    let Some(out) = arg(args, "--out") else { return usage() };
    let n: usize = arg(args, "--designs").and_then(|v| v.parse().ok()).unwrap_or(41);
    let config = if flag(args, "--paper") { SnsTrainConfig::paper() } else { SnsTrainConfig::fast() };
    let designs: Vec<_> = catalog().into_iter().take(n.max(2)).collect();
    eprintln!("training on {} designs ({} schedule)...", designs.len(), if flag(args, "--paper") { "paper" } else { "fast" });
    let (model, report) = train_sns(&designs, &config);
    eprintln!(
        "trained: {} paths ({} direct / {} markov / {} seqgan), final val loss {:.4}",
        report.path_dataset_size,
        report.direct_paths,
        report.markov_paths,
        report.seqgan_paths,
        report.cf_history.last().map(|e| e.val_loss).unwrap_or(f32::NAN)
    );
    match save_model(&model, &out) {
        Ok(()) => {
            eprintln!("model written to {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn read_activity(path: &str) -> Result<HashMap<String, f32>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut map = HashMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(',')
            .ok_or_else(|| format!("line {}: expected `register,coefficient`", i + 1))?;
        let v: f32 = value.trim().parse().map_err(|e| format!("line {}: {e}", i + 1))?;
        map.insert(name.trim().to_string(), v);
    }
    Ok(map)
}

fn cmd_predict(args: &[String]) -> ExitCode {
    let (Some(model_path), Some(verilog), Some(top)) =
        (arg(args, "--model"), arg(args, "--verilog"), arg(args, "--top"))
    else {
        return usage();
    };
    let model = match load_model(&model_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error loading model: {e}");
            return ExitCode::FAILURE;
        }
    };
    let source = match std::fs::read_to_string(&verilog) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error reading {verilog}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let activity = match arg(args, "--activity") {
        None => None,
        Some(p) => match read_activity(&p) {
            Ok(m) => Some(m),
            Err(e) => {
                eprintln!("error reading activity file: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let nl = match parse_and_elaborate(&source, &top) {
        Ok(nl) => nl,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let pred = model.predict_netlist(&nl, activity.as_ref());
    println!("design:        {top}");
    println!("timing_ps:     {:.2}", pred.timing_ps);
    println!("area_um2:      {:.2}", pred.area_um2);
    println!("power_mw:      {:.5}", pred.power_mw);
    println!("paths_sampled: {}", pred.path_count);
    println!("runtime_ms:    {:.2}", pred.runtime.as_secs_f64() * 1e3);
    println!("critical_path: {}", pred.critical_path.join(" -> "));
    ExitCode::SUCCESS
}

fn cmd_synth(args: &[String]) -> ExitCode {
    let (Some(verilog), Some(top)) = (arg(args, "--verilog"), arg(args, "--top")) else {
        return usage();
    };
    let effort: u32 = arg(args, "--effort").and_then(|v| v.parse().ok()).unwrap_or(8);
    let source = match std::fs::read_to_string(&verilog) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error reading {verilog}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let nl = match parse_and_elaborate(&source, &top) {
        Ok(nl) => nl,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = VirtualSynthesizer::new(SynthOptions { sizing_iterations: effort, ..Default::default() })
        .synthesize(&nl);
    println!("design:      {top}");
    println!("gates:       {}", report.gate_count);
    println!("transistors: {}", report.transistor_count);
    println!("timing_ps:   {:.2}", report.timing_ps);
    println!("area_um2:    {:.2}", report.area_um2);
    println!("power_mw:    {:.5} (dynamic {:.5} + leakage {:.5})", report.power_mw, report.dynamic_mw, report.leakage_mw);
    println!("runtime_ms:  {:.2}", report.runtime.as_secs_f64() * 1e3);
    ExitCode::SUCCESS
}

fn cmd_catalog() -> ExitCode {
    println!("{:<26} {:<18} {:<22}", "name", "family", "base");
    for d in catalog() {
        println!("{:<26} {:<18} {:<22}", d.name, d.family.to_string(), d.base);
    }
    ExitCode::SUCCESS
}
