//! # SNS — *SNS's not a Synthesizer*
//!
//! A from-scratch Rust reproduction of the ISCA 2022 paper
//! *"SNS's not a Synthesizer: A Deep-Learning-Based Synthesis Predictor"*
//! (Xu, Kjellqvist, Wills).
//!
//! SNS predicts the **area, power and timing** of an RTL design orders of
//! magnitude faster than running synthesis, by sampling *complete circuit
//! paths* from a typed circuit graph and regressing their physical
//! characteristics with a lightweight Transformer (the *Circuitformer*),
//! then aggregating path predictions into design-level numbers.
//!
//! This umbrella crate re-exports the workspace:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`rt`] | `sns-rt` | runtime substrate: JSON, RNG, thread pool, GEMM |
//! | [`netlist`] | `sns-netlist` | Verilog-subset front-end (the Yosys stand-in) |
//! | [`graphir`] | `sns-graphir` | the GraphIR circuit graph + Table 1 vocabulary |
//! | [`sampler`] | `sns-sampler` | Algorithm 1 complete-circuit-path sampling |
//! | [`vsynth`] | `sns-vsynth` | the virtual synthesizer (labels + runtime baseline) |
//! | [`nn`] | `sns-nn` | the from-scratch neural-network substrate |
//! | [`circuitformer`] | `sns-circuitformer` | the path regressor (Table 2) |
//! | [`genmodel`] | `sns-genmodel` | Markov chain + SeqGAN path augmentation |
//! | [`designs`] | `sns-designs` | the 41-design hardware dataset (Table 3) |
//! | [`core`] | `sns-core` | the end-to-end predictor and training flow |
//! | [`casestudies`] | `sns-casestudies` | BOOM DSE (§5.6) and DianNao (§5.7) |
//! | [`serve`] | `sns-serve` | HTTP inference daemon with cross-request micro-batching |
//! | [`conformance`] | `sns-conformance` | differential conformance harness (random RTL + oracles) |
//! | [`train`] | `sns-train` | self-training label factory + versioned model zoo |
//!
//! # Quickstart
//!
//! ```rust,no_run
//! use sns::core::{train_sns, SnsTrainConfig};
//!
//! // Train on a slice of the 41-design dataset...
//! let designs = sns::designs::catalog();
//! let (model, _report) = train_sns(&designs[..20], &SnsTrainConfig::fast());
//!
//! // ...then predict any Verilog design in milliseconds-to-seconds.
//! let pred = model
//!     .predict_verilog(
//!         "module mac (input clk, input [7:0] a, b, output [15:0] y);
//!              reg [15:0] acc;
//!              always @(posedge clk) acc <= acc + a * b;
//!              assign y = acc;
//!          endmodule",
//!         "mac",
//!     )
//!     .expect("valid Verilog");
//! println!(
//!     "timing {:.0} ps, area {:.1} um2, power {:.3} mW (critical path: {:?})",
//!     pred.timing_ps, pred.area_um2, pred.power_mw, pred.critical_path
//! );
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the per-table/figure reproduction harnesses.

pub use sns_casestudies as casestudies;
pub use sns_circuitformer as circuitformer;
pub use sns_conformance as conformance;
pub use sns_core as core;
pub use sns_designs as designs;
pub use sns_genmodel as genmodel;
pub use sns_graphir as graphir;
pub use sns_netlist as netlist;
pub use sns_nn as nn;
pub use sns_rt as rt;
pub use sns_sampler as sampler;
pub use sns_serve as serve;
pub use sns_train as train;
pub use sns_vsynth as vsynth;
